//! Project ATTNChecker's overhead onto large-scale training runs with the
//! analytic A100 cluster model (the paper's Fig 12 methodology), sweeping
//! cluster size and model size.
//!
//! Run: `cargo run --release --example scale_projection`

use attn_gpusim::scale::{simulate_step, BigModel, ClusterConfig};
use attn_gpusim::GpuModel;

fn main() {
    let gpu = GpuModel::a100_80gb();
    println!("per-step ABFT overhead projections ({})\n", gpu.name);

    println!("model size sweep at 1,024 GPUs:");
    let cluster = ClusterConfig::paper_1024();
    for m in BigModel::fig12_sizes() {
        let b = simulate_step(&gpu, &m, &cluster);
        println!(
            "  {:>4}: step {:6.2} s   attention-fwd share {:4.1}%   ABFT overhead {:.2}%",
            m.label,
            b.base_step,
            100.0 * b.attention_fwd / b.base_step,
            100.0 * b.abft_overhead()
        );
    }

    println!("\ncluster size sweep for the 30B model:");
    for gpus in [64usize, 256, 1024, 4096] {
        let cluster = ClusterConfig {
            gpus,
            ..ClusterConfig::paper_1024()
        };
        let b = simulate_step(&gpu, &BigModel::b30(), &cluster);
        println!(
            "  {gpus:>5} GPUs: step {:6.2} s  (allreduce {:5.2} s)   ABFT overhead {:.2}%",
            b.base_step,
            b.allreduce,
            100.0 * b.abft_overhead()
        );
    }

    println!("\nThe ratio barely moves in either sweep: ABFT work scales with the");
    println!("attention GEMMs it protects, which is the paper's Fig 12 conclusion.");
}
