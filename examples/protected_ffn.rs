//! Protected FFN: the guarded-section API extended beyond attention.
//!
//! Builds a tiny BERT-style classifier whose FFN GEMMs run inside an
//! `S_FFN` guarded section, strikes the expansion GEMM with an INF during a
//! real training step, and shows the fault corrected in place — the
//! injected step lands on the *same* loss as the fault-free step, no
//! rollback.
//!
//! Run: `cargo run --release --example protected_ffn`

use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attn_model::{SyntheticMrpc, Trainer};
use attn_tensor::rng::TensorRng;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::SectionId;

fn trainer(protection: ProtectionConfig) -> Trainer {
    let mut cfg = ModelConfig::bert_small();
    cfg.hidden = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    let mut rng = TensorRng::seed_from(9);
    Trainer::new(TransformerModel::new(cfg, protection, &mut rng), 1e-3)
}

fn main() {
    let ds = SyntheticMrpc::generate(8, 256, 16, 5);
    let batch: Vec<_> = ds.examples.iter().take(4).collect();

    // Twin trainers from the same seed: one never sees a fault.
    let mut clean = trainer(ProtectionConfig::full());
    let mut protected = trainer(ProtectionConfig::full());

    let spec = InjectionSpec {
        layer: 0,
        op: AttnOp::Ffn1,
        head: 0,
        row: 3,
        col: 17,
        kind: FaultKind::Inf,
    };
    println!("injecting +INF into the FFN expansion GEMM (layer 0) ...");
    let co = clean.train_step(&batch);
    let po = protected.train_step_injected(&batch, Some((1, spec)));

    let ffn_fixes = po
        .report
        .corrections
        .iter()
        .filter(|c| c.section == SectionId::FeedForward)
        .count();
    println!("faulty step report: {}", po.report);
    println!(
        "S_FFN corrections: {ffn_fixes}   loss clean {:.6} vs corrected {:.6}",
        co.loss, po.loss
    );
    assert!(!po.non_trainable);
    assert!(ffn_fixes > 0);
    assert_eq!(po.report.unrecovered, 0);
    assert!((co.loss - po.loss).abs() <= 1e-6);

    // Control: the paper's attention-only scope misses the same fault.
    let mut unguarded = trainer(ProtectionConfig::attention_only());
    let uo = unguarded.train_step_injected(&batch, Some((1, spec)));
    println!(
        "without S_FFN the same fault is fatal: non_trainable = {}",
        uo.non_trainable
    );
    assert!(uo.non_trainable);
    println!("ok: FFN faults corrected in place, end to end through training");
}
