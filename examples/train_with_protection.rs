//! Fine-tune a miniature BERT on the synthetic MRPC task while a fault
//! injector strikes the attention GEMMs every step — the end-to-end
//! scenario behind the paper's Fig 6.
//!
//! Run: `cargo run --release --example train_with_protection`

use attn_bench_free::build; // see helper module below
use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attn_model::{SyntheticMrpc, Trainer};
use attn_tensor::rng::TensorRng;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;

/// Minimal local stand-ins so the example depends only on library crates.
mod attn_bench_free {
    use super::*;

    pub fn build(config: &ModelConfig, protection: ProtectionConfig, seed: u64) -> Trainer {
        let mut rng = TensorRng::seed_from(seed);
        Trainer::new(
            TransformerModel::new(config.clone(), protection, &mut rng),
            1e-3,
        )
    }
}

fn main() {
    let config = ModelConfig::bert_base();
    let ds = SyntheticMrpc::generate(48, config.vocab, 32, 5);
    println!(
        "fine-tuning {} ({} examples, batch 8, 3 epochs) with one fault per step…\n",
        config.name,
        ds.len()
    );

    let mut clean = build(&config, ProtectionConfig::off(), 99);
    let mut protected = build(&config, ProtectionConfig::full(), 99);

    let sites = [AttnOp::Q, AttnOp::K, AttnOp::V, AttnOp::AS, AttnOp::CL];
    let kinds = [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf];
    let mut fault_rng = TensorRng::seed_from(31337);
    let mut shuffle_a = TensorRng::seed_from(7);
    let mut shuffle_b = TensorRng::seed_from(7);

    println!("epoch  fault-free  protected+faults  corrections");
    for epoch in 1..=3 {
        let clean_loss = clean.train_epoch(&ds, 8, &mut shuffle_a);

        let mut sum = 0.0;
        let mut n = 0;
        let mut corrections = 0;
        for batch in ds.batches(8, &mut shuffle_b) {
            let spec = InjectionSpec {
                layer: fault_rng.index(config.layers),
                op: sites[fault_rng.index(sites.len())],
                head: fault_rng.index(config.heads),
                row: fault_rng.index(1 << 16),
                col: fault_rng.index(1 << 16),
                kind: kinds[fault_rng.index(kinds.len())],
            };
            let out =
                protected.train_step_injected(&batch, Some((fault_rng.index(batch.len()), spec)));
            assert!(!out.non_trainable, "protection must hold");
            sum += out.loss;
            n += 1;
            corrections += out.report.correction_count();
        }
        println!(
            "{epoch}      {clean_loss:.4}      {:.4}            {corrections}",
            sum / n as f32
        );
    }
    println!("\nLoss curves coincide: every injected extreme value was corrected");
    println!("before it could reach the loss (the paper's Fig 6 property).");
}
