//! Tune ABFT detection frequencies to a reliability target with the
//! paper's Algorithm 1 (§4.5), then apply them to a trainer.
//!
//! Run: `cargo run --release --example adaptive_tuning`

use attn_model::model::{ModelConfig, TransformerModel};
use attn_model::{SyntheticMrpc, Trainer};
use attn_tensor::rng::TensorRng;
use attnchecker::adaptive::{
    attention_sections, fault_coverage_attention, optimize_frequencies, ErrorRates,
    VulnerabilityProfile,
};
use attnchecker::config::ProtectionConfig;

fn main() {
    // 1. Describe the workload: per-step GEMM flop exposure of the
    //    attention sections and the measured ABFT time shares.
    let (seq, hidden) = (512.0f64, 2048.0f64);
    let exposure = 16.0 * 24.0; // batch × layers
    let proj = 2.0 * seq * hidden * hidden * exposure;
    let score = 2.0 * seq * seq * hidden * exposure;
    let sections = attention_sections(
        [proj, proj, score, proj, score, proj],
        &VulnerabilityProfile::bert_table4(),
        [0.035, 0.021, 0.014], // T_S as step-time fractions
    );

    // 2. Optimize against a mid-range error rate and a 1-in-1e11 coverage
    //    target.
    let rates = ErrorRates::uniform_per_1e25(17.0);
    let target = 1.0 - 1e-11;
    let plan = optimize_frequencies(&sections, &rates, target);
    println!("optimized detection frequencies:");
    for (s, f) in sections.iter().zip(&plan.freqs) {
        println!("  {:<5} f = {f:.3}", s.name);
    }
    println!(
        "expected ABFT overhead: {:.2}% (vs 7.0% non-adaptive)",
        100.0 * plan.expected_time
    );
    println!(
        "coverage achieved: 1 - {:.2e} (target 1 - 1.00e-11)",
        1.0 - plan.achieved_fc
    );
    let full = fault_coverage_attention(&sections, &rates, &[1.0, 1.0, 1.0]);
    println!("coverage at f = 1 everywhere: 1 - {:.2e}\n", 1.0 - full);

    // 3. Run a few protected training steps at the optimized frequencies.
    let config = ModelConfig::bert_base();
    let protection =
        ProtectionConfig::with_frequencies(plan.freqs[0], plan.freqs[1], plan.freqs[2]);
    let mut rng = TensorRng::seed_from(1);
    let mut trainer = Trainer::new(
        TransformerModel::new(config.clone(), protection, &mut rng),
        1e-3,
    );
    let ds = SyntheticMrpc::generate(16, config.vocab, 32, 2);
    let batch: Vec<_> = ds.examples.iter().take(8).collect();
    let mut checked = 0;
    let mut skipped = 0;
    for _ in 0..10 {
        let out = trainer.train_step(&batch);
        checked += out.report.sections_checked;
        skipped += out.report.sections_skipped;
    }
    println!(
        "over 10 steps the frequency gates checked {checked} section executions \
         and skipped {skipped} — detection cost now tracks the system's real error rate."
    );
}
