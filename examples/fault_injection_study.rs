//! Interactive-scale version of the paper's §3 fault-propagation study:
//! inject each error type at each attention site of an *unprotected* block
//! and print how the corruption spreads (the Table 2 methodology).
//!
//! Run: `cargo run --release --example fault_injection_study`

use attn_fault::pattern::classify;
use attn_fault::FaultKind;
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use attnchecker::attention::{
    AttentionWeights, AttnOp, FaultSite, ForwardOptions, ProtectedAttention, SectionToggles,
};
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;

fn forward(
    attn: &ProtectedAttention,
    x: &Matrix,
    inject: Option<(AttnOp, FaultKind)>,
) -> (Matrix, Matrix, Matrix) {
    let mut hook = move |site: FaultSite, m: &mut CheckedMatrix| {
        let Some((op, kind)) = inject else { return };
        if site.op == op && site.head.unwrap_or(0) == 0 {
            let old = m.get(2, 3);
            m.set(2, 3, kind.apply(old));
        }
    };
    let mut report = AbftReport::default();
    let out = attn.forward(
        x,
        ForwardOptions {
            mask: None,
            toggles: SectionToggles::none(),
            hook: inject.is_some().then_some(&mut hook as _),
        },
        &mut report,
    );
    (
        out.cache.scores[0].clone(),
        out.cache.cl.clone(),
        out.output,
    )
}

fn main() {
    let mut rng = TensorRng::seed_from(11);
    let weights = AttentionWeights::random(32, 4, &mut rng);
    let attn = ProtectedAttention::new(weights, ProtectionConfig::off());
    let x = rng.normal_matrix(16, 32, 0.5);
    let (as_ref, cl_ref, o_ref) = forward(&attn, &x, None);

    println!("error propagation in an unprotected attention block");
    println!("(single fault at element (2,3) of the named matrix)\n");
    println!(
        "{:<10} {:<8} {:>8} {:>8} {:>8}",
        "inject at", "kind", "AS", "CL", "O"
    );
    println!("{}", "-".repeat(48));
    for op in [AttnOp::Q, AttnOp::K, AttnOp::V, AttnOp::AS, AttnOp::CL] {
        for kind in [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf] {
            let (as_f, cl_f, o_f) = forward(&attn, &x, Some((op, kind)));
            println!(
                "{:<10} {:<8} {:>8} {:>8} {:>8}",
                op.label(),
                kind.glyph(),
                classify(&as_ref, &as_f, 1e-3).cell(),
                classify(&cl_ref, &cl_f, 1e-3).cell(),
                classify(&o_ref, &o_f, 1e-3).cell(),
            );
        }
    }
    println!("\nReading: 0D = single element, 1R/1C = one row/column, 2D = sub-matrix;");
    println!("∞/Θ/N/M = INF / NaN / near-INF / mixed. Compare with the paper's Table 2.");
}
