//! ABFT-protected autoregressive decoding in a few lines: open a session
//! (prefill), generate with the KV cache, take a soft error mid-decode,
//! and show the checksums catching and exactly correcting it.
//!
//! Run: `cargo run --release --example protected_decode`

use attnchecker_repro::abft::attention::AttnOp;
use attnchecker_repro::abft::config::ProtectionConfig;
use attnchecker_repro::fault::FaultKind;
use attnchecker_repro::infer::{DecodeEngine, Sampling};
use attnchecker_repro::model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attnchecker_repro::tensor::rng::TensorRng;

fn main() {
    // An LM-shaped GPT-2: the classifier head spans the vocabulary, so
    // sampled ids feed straight back in as the next input token.
    let mut cfg = ModelConfig::gpt2();
    cfg.vocab = 64;
    cfg.num_classes = 64;
    cfg.hidden = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.max_seq = 48;
    let mut rng = TensorRng::seed_from(7);
    let model = TransformerModel::new(cfg, ProtectionConfig::full(), &mut rng);
    let mut engine = DecodeEngine::new(model);

    // Prefill a prompt; every prompt GEMM runs through the guarded
    // sections, and the KV caches are seeded from the healed activations.
    let prompt = [3usize, 17, 42, 8];
    let mut session = engine.open_session(&prompt, 1234);
    println!("prompt: {:?}", prompt);

    // Clean reference generation (greedy is deterministic).
    let mut clean = engine.open_session(&prompt, 1234);
    let clean_tokens = engine.generate(&mut clean, 10, Sampling::Greedy);
    println!("clean decode:    {clean_tokens:?}");

    // Same generation, but a soft error strikes the appended q·Kᵀ score
    // row on the fourth decoded token. The section detects the INF via the
    // riding checksums, reconstructs, and replays the producing dot
    // product to the exact original bits — so generation is unperturbed.
    let spec = InjectionSpec {
        layer: 1,
        op: AttnOp::AS,
        head: 0,
        row: 0,
        col: 2,
        kind: FaultKind::Inf,
    };
    let mut tokens = Vec::new();
    for step in 0..10 {
        let inject = (step == 3).then_some(&spec);
        tokens.push(engine.step_injected(&mut session, Sampling::Greedy, inject));
    }
    println!("faulted decode:  {tokens:?}");
    assert_eq!(tokens, clean_tokens, "correction must be exact");

    let report = &session.report;
    println!(
        "ABFT: {} detection(s), {} correction(s), {} unrecovered over {} checked sections",
        report.detections,
        report.correction_count(),
        report.unrecovered,
        report.sections_checked,
    );
    for c in &report.corrections {
        println!(
            "  corrected {:?} head {} at ({}, {}): {} -> {}",
            c.section, c.head, c.row, c.col, c.old_value, c.new_value
        );
    }
    assert!(report.correction_count() > 0);
    assert_eq!(report.unrecovered, 0);
    println!(
        "decoded {} tokens with exact fault correction",
        tokens.len()
    );
}
