//! Quickstart: protect one attention block, strike it with a fault, watch
//! ATTNChecker detect and correct it in place.
//!
//! Run: `cargo run --release --example quickstart`

use attn_tensor::rng::TensorRng;
use attnchecker::attention::{
    AttentionWeights, AttnOp, FaultSite, ForwardOptions, ProtectedAttention, SectionToggles,
};
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;

fn main() {
    // 1. Build an attention block (seq 16, hidden 64, 4 heads) and wrap it
    //    with full ATTNChecker protection.
    let mut rng = TensorRng::seed_from(7);
    let weights = AttentionWeights::random(64, 4, &mut rng);
    let attn = ProtectedAttention::new(weights, ProtectionConfig::full());
    let x = rng.normal_matrix(16, 64, 0.5);

    // 2. A clean forward pass for reference.
    let mut quiet = AbftReport::default();
    let clean = attn.forward_simple(&x, &mut quiet);
    println!("clean run:  {quiet}");

    // 3. The same pass, but a bit flip strikes the Q projection mid-flight
    //    (simulated via the fault hook). +INF lands in Q[3][17].
    let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
        if site.op == AttnOp::Q {
            println!(
                "  !! injecting +INF into Q[3][17] (was {:.4})",
                m.get(3, 17)
            );
            m.set(3, 17, f32::INFINITY);
        }
    };
    let mut report = AbftReport::default();
    let recovered = attn.forward(
        &x,
        ForwardOptions {
            mask: None,
            toggles: SectionToggles::all(),
            hook: Some(&mut hook),
        },
        &mut report,
    );
    println!("faulty run: {report}");

    // 4. The delayed detection at the attention-score section caught the
    //    propagated 1R pattern and reconstructed every element.
    assert!(recovered.output.all_finite());
    assert!(recovered.output.approx_eq(&clean.output, 1e-3, 1e-3));
    assert!(report.correction_count() > 0);
    assert_eq!(report.unrecovered, 0);
    let max_diff = recovered.output.sub(&clean.output).max_abs();
    println!(
        "recovered output matches clean output (max |Δ| = {max_diff:.2e}) \
         after {} corrections",
        report.correction_count()
    );
}
