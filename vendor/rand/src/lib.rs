//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods the workspace uses (`gen`, `gen_range`,
//! `gen_bool`). The generator is xoshiro256\*\* seeded through SplitMix64 —
//! the streams differ from upstream rand's ChaCha-based `StdRng`, but every
//! consumer in this workspace only relies on *seed-determinism*, which
//! holds: the same seed always reproduces the same stream.

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry points (only the `u64` convenience is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly "from all bits" (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types accepted by `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, n)` via rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// Extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_below_covers_full_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
