//! Offline stand-in for the `bytes` crate.
//!
//! Implements [`Bytes`], [`BytesMut`], and the little-endian [`Buf`] /
//! [`BufMut`] accessors the checkpoint wire format uses. `Bytes` is a
//! cheaply-clonable `Arc<[u8]>` that derefs to a slice, so indexing,
//! slicing, equality, and `to_vec` all come from `[u8]`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply-clonable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Self {
            inner: Arc::from(&[][..]),
        }
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Self {
            inner: Arc::from(data),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            inner: Arc::from(data),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            inner: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&&self[..], f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&&self[..], f)
    }
}

/// Little-endian write accessors.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Little-endian read accessors over an advancing cursor.
///
/// Like upstream `bytes`, the getters panic when the buffer is too short;
/// callers are expected to bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"HDR!");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f32_le(-1.5);
        let frozen = buf.freeze();

        let mut rd: &[u8] = &frozen;
        let mut hdr = [0u8; 4];
        rd.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), 42);
        assert_eq!(rd.get_f32_le(), -1.5);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn bytes_equality_and_slicing() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[1..3], &[2, 3]);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut rd: &[u8] = &[1, 2];
        rd.get_u32_le();
    }
}
