//! Case runner and its RNG.

use crate::strategy::Strategy;

/// Runner configuration (only the case count is modelled).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// SplitMix64 stream for case generation. Deterministic: the seed comes
/// from `PROPTEST_SEED` when set, otherwise a fixed constant, so failures
/// reproduce run-to-run.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, n)`; `n` must be non-zero.
    pub fn below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below_u64(0)");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.below_u64(n as u64) as usize
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got `{v}`")),
        Err(_) => 0x5EED_CA5E_D00D_F00D,
    }
}

/// Drives a strategy through `config.cases` generated inputs.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        Self {
            config,
            rng: TestRng::new(base_seed()),
        }
    }

    /// Run `test` on `cases` freshly generated values. A failing case
    /// panics immediately (via the `prop_assert*` macros or any other
    /// panic), which fails the surrounding `#[test]`.
    pub fn run<S: Strategy>(&mut self, strategy: &S, test: impl Fn(S::Value)) {
        for _ in 0..self.config.cases {
            test(strategy.generate(&mut self.rng));
        }
    }
}
