//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset used by this workspace's property tests:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating one `#[test]` per property,
//! * [`Strategy`](strategy::Strategy) implemented for numeric ranges and
//!   tuples, with
//!   `prop_map` / `prop_flat_map` combinators,
//! * [`collection::vec`] with a `Range<usize>` length strategy,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the assertion message but is not minimised), and the case
//! stream is derived from a fixed seed (overridable via `PROPTEST_SEED`)
//! so CI runs are reproducible.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies, mirroring
    /// upstream's `SizeRange` conversions.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.min + rng.below(self.len.max - self.len.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Like `assert!`, but namespaced for property bodies. Reports the failing
/// condition (and any formatted context) by panicking; no shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, concat!("proptest assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Upstream `prop_assume!` rejects the case; here a rejected case is simply
/// skipped by returning early from the closure body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Generate `#[test]` functions from property definitions:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr); ) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(&strategy, |($($arg,)+)| $body);
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}
