//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects —
    /// the dependent-generation combinator.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below_u64(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f32()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
}
