//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking subset the `attn_bench` benches use:
//! benchmark groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, `BenchmarkId`, and `Throughput`. Timing is wall-clock
//! with a short warm-up and a time-boxed measurement window; results print
//! as one line per benchmark (median ns/iter plus derived throughput).
//! No statistical analysis, plots, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Label for one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Input volume per iteration, used to derive a throughput figure.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batching hint for `iter_batched`; the shim treats all variants alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measurement settings shared by a run.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: these benches exist to print comparable numbers,
        // not publishable statistics. CRITERION_MEASURE_MS overrides.
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Self {
            warm_up: Duration::from_millis(ms / 4),
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.warm_up, self.measure);
        f(&mut b);
        b.report(&id.id, None);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.measure);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.measure);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Runs the measured closure and records per-iteration time.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    mean_ns: Option<f64>,
    iters: u64,
}

impl Bencher {
    fn new(warm_up: Duration, measure: Duration) -> Self {
        Self {
            warm_up,
            measure,
            mean_ns: None,
            iters: 0,
        }
    }

    /// Benchmark `routine` back-to-back.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until the warm-up window elapses.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
        }
        // Measure in growing batches until the measurement window elapses.
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut batch = 1u64;
        while total < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += t.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.mean_ns = Some(total.as_nanos() as f64 / iters as f64);
        self.iters = iters;
    }

    /// Benchmark `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measure {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.mean_ns = Some(total.as_nanos() as f64 / iters as f64);
        self.iters = iters;
    }

    fn report(self, label: &str, throughput: Option<Throughput>) {
        let Some(ns) = self.mean_ns else {
            println!("  {label:<48} (no measurement)");
            return;
        };
        let tp = match throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:>10.3} GiB/s", b as f64 / ns / 1.073_741_824)
            }
            Some(Throughput::Elements(e)) => {
                format!("  {:>10.3} Melem/s", e as f64 / ns * 1e3)
            }
            None => String::new(),
        };
        println!(
            "  {label:<48} {:>12.1} ns/iter  ({} iters){tp}",
            ns, self.iters
        );
    }
}

/// Declare a benchmark group runner (only the simple
/// `criterion_group!(name, target, ...)` form is supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
