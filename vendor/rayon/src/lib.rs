//! Offline stand-in for the `rayon` crate.
//!
//! Implements the parallel-iterator subset this workspace uses —
//! `par_chunks_mut(..).enumerate().for_each(..)`, `par_iter().map(..)
//! .collect()`, and `(a..b).into_par_iter().map(..).collect()` — with real
//! OS threads (`std::thread::scope` over an atomic work queue), so the
//! parallel code paths in `attn_tensor::gemm`, `Batch3`, the batched
//! encoder, and the fault campaigns genuinely fan out across cores.
//!
//! Results are always reassembled in input order, matching rayon's
//! `collect` semantics; combined with the per-trial seed derivation in
//! `attn_fault::campaign`, outputs are independent of scheduling order.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// duration of its closure (the shim's analogue of running inside a
    /// sized pool).
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker count: one per logical CPU, overridable via `RAYON_NUM_THREADS`,
/// and further overridden inside a [`ThreadPool::install`] scope.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(|c| c.get()) {
        return n;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for a sized [`ThreadPool`] (API-compatible subset of rayon's).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building a pool with the default (auto) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the pool's worker count (rayon convention: 0 means auto).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool. The shim spawns workers per parallel call rather
    /// than up front, so building never fails; the `Result` mirrors
    /// rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads.unwrap_or_else(current_num_threads).max(1),
        })
    }
}

/// Error type mirroring rayon's (the shim never produces it).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A sized worker pool. The shim holds no threads of its own: `install`
/// scopes a worker-count override that the parallel iterators read when
/// they fan out, so nested pools compose and the override cannot leak.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with every parallel iterator inside it fanning out over
    /// this pool's worker count.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        // Restore on unwind too, so a panicking closure cannot leave the
        // override stuck on this thread.
        let _restore = Restore(POOL_THREADS.with(|c| c.replace(Some(self.threads))));
        f()
    }
}

/// Run `f(index, item)` for every item, fanning out over a scoped thread
/// pool fed from an atomic cursor. Items are consumed exactly once.
fn for_each_indexed<I: Send>(items: Vec<I>, f: impl Fn(usize, I) + Sync) {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("rayon shim: poisoned work slot")
                    .take()
                    .expect("rayon shim: slot consumed twice");
                f(i, item);
            });
        }
    });
}

/// Parallel map preserving input order.
fn map_indexed<I: Send, R: Send>(items: Vec<I>, f: impl Fn(usize, I) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    for_each_indexed(items, |i, item| {
        *out[i].lock().expect("rayon shim: poisoned result slot") = Some(f(i, item));
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("rayon shim: poisoned result slot")
                .expect("rayon shim: missing result")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Owned parallel iterator: `into_par_iter()` / `par_iter()` → map → collect.
// ---------------------------------------------------------------------------

/// Eager parallel iterator over an owned item list.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        for_each_indexed(self.items, |_, item| f(item));
    }

    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }
}

/// A mapped parallel iterator awaiting `collect`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, R, F> ParMap<I, F>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(map_indexed(self.items, |_, item| (self.f)(item)))
    }
}

/// `into_par_iter()` entry point (ranges and vectors).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter()` on slices/vecs by shared reference.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Slice chunking: `par_chunks_mut(..)` (+ `.enumerate()`) `.for_each(..)`.
// ---------------------------------------------------------------------------

/// `par_chunks(..)` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn enumerate(self) -> EnumerateParChunks<'a, T> {
        EnumerateParChunks(self)
    }

    pub fn for_each<F: Fn(&'a [T]) + Sync>(self, f: F) {
        for_each_indexed(self.slice.chunks(self.chunk_size).collect(), |_, c| f(c));
    }

    pub fn map<R, F>(self, f: F) -> ParMap<&'a [T], F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParMap {
            items: self.slice.chunks(self.chunk_size).collect(),
            f,
        }
    }
}

pub struct EnumerateParChunks<'a, T>(ParChunks<'a, T>);

impl<'a, T: Sync> EnumerateParChunks<'a, T> {
    pub fn for_each<F: Fn((usize, &'a [T])) + Sync>(self, f: F) {
        for_each_indexed(self.0.slice.chunks(self.0.chunk_size).collect(), |i, c| {
            f((i, c))
        });
    }
}

/// `par_chunks_mut(..)` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut(self)
    }

    pub fn for_each<F: Fn(&'a mut [T]) + Sync>(self, f: F) {
        for_each_indexed(self.slice.chunks_mut(self.chunk_size).collect(), |_, c| {
            f(c)
        });
    }
}

pub struct EnumerateParChunksMut<'a, T>(ParChunksMut<'a, T>);

impl<'a, T: Send> EnumerateParChunksMut<'a, T> {
    pub fn for_each<F: Fn((usize, &'a mut [T])) + Sync>(self, f: F) {
        for_each_indexed(
            self.0.slice.chunks_mut(self.0.chunk_size).collect(),
            |i, c| f((i, c)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 64];
        data.par_chunks_mut(8).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        for (i, c) in data.chunks(8).enumerate() {
            assert!(c.iter().all(|&x| x == i as u32 + 1));
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_on_slice() {
        let xs = vec![1i64, 2, 3, 4];
        let out: Vec<i64> = xs.par_iter().map(|&x| -x).collect();
        assert_eq!(out, vec![-1, -2, -3, -4]);
    }

    #[test]
    fn ragged_tail_chunk_is_processed() {
        let mut data = [0u8; 10];
        data.par_chunks_mut(4).for_each(|c| c.fill(7));
        assert!(data.iter().all(|&x| x == 7));
    }

    #[test]
    fn thread_pool_install_scopes_worker_count() {
        let outer = crate::current_num_threads();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(crate::current_num_threads(), 3);
            let inner = crate::ThreadPoolBuilder::new()
                .num_threads(2)
                .build()
                .unwrap();
            inner.install(|| assert_eq!(crate::current_num_threads(), 2));
            assert_eq!(crate::current_num_threads(), 3);
        });
        assert_eq!(crate::current_num_threads(), outer);
    }

    #[test]
    fn thread_pool_zero_means_auto() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build()
            .unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn install_restores_override_on_panic() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(99_999)
            .build()
            .unwrap();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(caught.is_err());
        assert_ne!(crate::current_num_threads(), 99_999);
    }
}
