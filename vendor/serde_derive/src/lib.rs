//! Offline stand-in for `serde_derive`.
//!
//! The companion vendored `serde` defines `Serialize`/`Deserialize` as
//! marker traits (nothing in this workspace serialises through serde's
//! data model — the checkpoint format is hand-rolled). These derives
//! therefore only need to emit empty marker impls for the deriving type.
//! No `syn`/`quote`: the type name is scanned straight out of the token
//! stream.

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the type a derive is attached to: the identifier
/// following the `struct`/`enum`/`union` keyword. Generic types are not
/// supported (no consumer in this workspace derives on a generic type).
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        let name = name.to_string();
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "vendored serde_derive does not support generic type `{name}`"
                            );
                        }
                        return name;
                    }
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("no struct/enum/union found in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl must parse")
}
