//! Offline stand-in for the `serde` crate.
//!
//! Nothing in this workspace drives serde's data model — the only use is
//! `#[derive(Serialize, Deserialize)]` on plain-old-data configuration
//! structs (e.g. `attn_gpusim::GpuModel`), kept so the types stay
//! wire-ready for when the real serde is swapped back in. The traits are
//! therefore empty markers, and the derives (re-exported from the vendored
//! `serde_derive`) emit empty impls.

/// Marker for serialisable types.
pub trait Serialize {}

/// Marker for deserialisable types.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
