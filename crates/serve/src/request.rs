//! Request/response vocabulary of the serving gateway.

use attnchecker::report::AbftReport;

/// Gateway-assigned request identifier (dense, in submission order).
pub type RequestId = u64;

/// One generation request: a prompt, a cap on generated tokens, and the
/// seed for the session's private sampling RNG. Two requests with the
/// same fields produce the same tokens regardless of what else the
/// gateway is serving — sessions share nothing but the read-only model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Prompt token ids (must be non-empty and fit the position table).
    pub prompt: Vec<usize>,
    /// Maximum number of generated tokens (0 completes right after
    /// prefill).
    pub max_new: usize,
    /// Seed for the session's sampling RNG.
    pub seed: u64,
}

/// Typed admission rejection — the gateway's load-shedding contract.
/// Overload and malformed requests are reported to the caller, never
/// panics inside the serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The admission queue is at its configured depth; retry later
    /// (backpressure).
    QueueFull {
        /// The configured bound that was hit.
        depth: usize,
    },
    /// Prompts must contain at least one token.
    EmptyPrompt,
    /// The prompt alone cannot fit the model's position table, so the
    /// session could never prefill.
    PromptTooLong {
        /// Tokens in the rejected prompt.
        prompt: usize,
        /// Position-table capacity of the served model.
        capacity: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { depth } => {
                write!(f, "admission queue full (depth {depth})")
            }
            AdmitError::EmptyPrompt => write!(f, "empty prompt"),
            AdmitError::PromptTooLong { prompt, capacity } => {
                write!(f, "prompt of {prompt} tokens exceeds capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// Why a request left the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// Generated the configured end-of-sequence token (included in
    /// `tokens`).
    Eos,
    /// Generated `max_new` tokens.
    TokenBudget,
    /// The model's position table ran out before EOS or budget.
    CapacityExhausted,
    /// Waited in the admission queue past the configured TTL and was
    /// shed without ever running.
    ExpiredInQueue,
}

/// A finished request: its full token stream, why it finished, the
/// logical ticks it entered and left the system, and the ABFT activity
/// accumulated while it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The id `Gateway::submit` returned.
    pub id: RequestId,
    /// Why the request finished.
    pub reason: FinishReason,
    /// Prompt + generated tokens (prompt only when shed from the queue).
    pub tokens: Vec<usize>,
    /// How many of `tokens` were the prompt.
    pub prompt_len: usize,
    /// Logical tick the request was submitted.
    pub submitted_at: u64,
    /// Logical tick the request finished (or was shed).
    pub finished_at: u64,
    /// ABFT report over the request's prefill and every decode step
    /// (default/quiet when shed).
    pub report: AbftReport,
}

impl Completion {
    /// The generated tokens (excluding the prompt).
    pub fn generated(&self) -> &[usize] {
        self.tokens.get(self.prompt_len..).unwrap_or(&[])
    }
}

/// One arrival in a synthetic traffic trace: submit `request` at logical
/// tick `at_tick`. Traces must be sorted by `at_tick`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical tick of the arrival.
    pub at_tick: u64,
    /// The request to submit.
    pub request: Request,
}

/// Everything a replayed trace produced: completions in finish order and
/// the arrivals the admission queue shed at submit time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutcome {
    /// Completions in the order they finished.
    pub completions: Vec<Completion>,
    /// `(trace index, why)` for arrivals rejected at submission.
    pub rejected: Vec<(usize, AdmitError)>,
}
