//! # attn-serve
//!
//! A continuous-batching serving gateway over the ABFT-protected
//! [`attn_infer::DecodeEngine`]: the layer that turns per-session decode
//! steps into a served system with bounded admission, load-shedding, and
//! memory pressure handling — while keeping the stack's determinism and
//! fault-tolerance contracts intact.
//!
//! * **Admission** — a bounded FIFO queue with typed rejects
//!   ([`AdmitError`]): overload is backpressure, never a panic. Queued
//!   requests carry a TTL and are shed ([`FinishReason::ExpiredInQueue`])
//!   when starved.
//! * **Iteration-level scheduling** — each [`Gateway::tick`] runs **one**
//!   protected engine step that mixes chunked-prefill feeds and decode
//!   steps across sessions ([`attn_infer::StepOp`]); sessions drain at
//!   EOS, token budget, or position-table exhaustion.
//! * **Paged, checksummed KV** — sessions store K/V in fixed-size arena
//!   blocks with per-block checksum tails (`attn_tensor::PagedKv`); a hot
//!   KV-row budget parks the overflow into verified cold storage
//!   (`attnchecker::ColdKvCache`) and restores it verify-on-move.
//! * **Determinism** — a fixed arrival trace yields bit-identical token
//!   streams at any worker count and any admission interleaving.
//!
//! ```
//! use attn_model::model::{ModelConfig, TransformerModel};
//! use attn_serve::{Gateway, GatewayConfig, Request, TraceEvent};
//! use attn_tensor::rng::TensorRng;
//! use attnchecker::config::ProtectionConfig;
//!
//! let mut rng = TensorRng::seed_from(0);
//! let mut cfg = ModelConfig::gpt2();
//! cfg.hidden = 32;
//! cfg.heads = 2;
//! cfg.layers = 1;
//! cfg.vocab = 48;
//! cfg.num_classes = 48;
//! cfg.max_seq = 32;
//! let model = TransformerModel::new(cfg, ProtectionConfig::full(), &mut rng);
//!
//! let mut gw = Gateway::new(model, GatewayConfig::default());
//! let out = gw.run_trace(&[TraceEvent {
//!     at_tick: 0,
//!     request: Request { prompt: vec![3, 11, 7], max_new: 4, seed: 1 },
//! }]);
//! assert_eq!(out.completions[0].generated().len(), 4);
//! assert!(out.completions[0].report.is_quiet());
//! ```

pub mod gateway;
pub mod request;

pub use gateway::{Gateway, GatewayConfig, GatewayStats};
pub use request::{
    AdmitError, Completion, FinishReason, Request, RequestId, TraceEvent, TraceOutcome,
};
