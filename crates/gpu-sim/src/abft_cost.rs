//! A100-side cost model of the two ABFT implementation strategies
//! (the GPU half of the paper's Fig 8 ablation).
//!
//! On the GPU, the optimized and non-optimized variants differ mainly in
//! *kernel count* and *redundant traffic*:
//!
//! * **OPT (fused)** — checksums ride inside the operands, so updates are
//!   free GEMM rows; one fused encoder per encode site; one
//!   divergence-free detection kernel per section. ~6 extra launches per
//!   layer, one memory sweep each.
//! * **Non-OPT (separate)** — every checksum is produced by composed
//!   cuBLAS GEMV calls (two per matrix side, each re-reading the operand at
//!   poor tall-skinny efficiency), plus separate update products and a
//!   detection kernel after *every* GEMM (no delayed detection). ~30
//!   launches per layer and ~3× the checksum traffic.

use crate::device::GpuModel;
use crate::encoding::CUBLAS_GEMV_UTILIZATION;

/// Attention workload shape for the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbftWorkload {
    /// Batch size.
    pub batch: usize,
    /// Heads.
    pub heads: usize,
    /// Sequence length.
    pub seq: usize,
    /// Model width.
    pub hidden: usize,
}

impl AbftWorkload {
    /// The paper's Fig 8 setting: batch 16 at BERT-base-like dims.
    pub fn fig8_default() -> Self {
        Self {
            batch: 16,
            heads: 12,
            seq: 128,
            hidden: 768,
        }
    }

    /// Forward flops of the six attention GEMMs for the whole batch.
    pub fn attention_flops(&self) -> f64 {
        let (s, h, b) = (self.seq as f64, self.hidden as f64, self.batch as f64);
        b * (8.0 * s * h * h + 4.0 * s * s * h)
    }

    /// Bytes of the matrices the ABFT machinery touches once
    /// (X, Q, K, V, AS, AP, CL, O) for the whole batch.
    pub fn abft_sweep_bytes(&self) -> f64 {
        let (s, h, b) = (self.seq as f64, self.hidden as f64, self.batch as f64);
        let heads = self.heads as f64;
        b * (5.0 * s * h + 3.0 * heads * s * s) * 4.0
    }
}

/// Fraction of peak tensor throughput the moderately-sized attention GEMMs
/// of the Fig 8 workload sustain (seq-128 shapes do not saturate an A100
/// the way the large-model GEMMs of [`crate::scale`] do).
pub const ATTN_GEMM_EFFICIENCY: f64 = 0.2;

/// Attention-block forward time for the ablation workload.
pub fn attention_block_time(gpu: &GpuModel, w: &AbftWorkload) -> f64 {
    w.attention_flops() / (gpu.tensor_tflops * 1e12 * ATTN_GEMM_EFFICIENCY)
}

/// Cost (seconds) of one layer's ABFT work under the fused strategy.
pub fn opt_abft_time(gpu: &GpuModel, w: &AbftWorkload) -> f64 {
    // Fused checksum rows inside the GEMMs: +2/s of the GEMM flops.
    let update = w.attention_flops() * 2.0
        / w.seq as f64
        / (gpu.tensor_tflops * 1e12 * ATTN_GEMM_EFFICIENCY);
    // Fused encode+detect sweeps share passes over the protected matrices
    // (only AS needs both sides), at the custom kernel's high utilization.
    let sweep = gpu.mem_time(0.6 * w.abft_sweep_bytes(), 0.9);
    // A handful of batched launches per layer (encoders + detectors are
    // batched across heads and sections).
    update + sweep + 4.0 * gpu.launch()
}

/// Cost (seconds) of one layer's ABFT work under the separate strategy.
pub fn non_opt_abft_time(gpu: &GpuModel, w: &AbftWorkload) -> f64 {
    // Separate cuBLAS-composed checksum updates re-read each operand
    // (two weight projections per side) at tall-skinny GEMV efficiency.
    let updates = gpu.mem_time(2.0 * w.abft_sweep_bytes(), 3.0 * CUBLAS_GEMV_UTILIZATION);
    // Immediate detection after every GEMM: another full sweep.
    let detects = gpu.mem_time(w.abft_sweep_bytes(), 0.8);
    // Launch storm: 6 GEMMs × (encode + update + detect) = 18.
    updates + detects + 18.0 * gpu.launch()
}

/// `(non_opt_overhead, opt_overhead)` as fractions of the attention-block
/// forward time.
pub fn fig8_projection(gpu: &GpuModel, w: &AbftWorkload) -> (f64, f64) {
    let attn = attention_block_time(gpu, w);
    (
        non_opt_abft_time(gpu, w) / attn,
        opt_abft_time(gpu, w) / attn,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuModel {
        GpuModel::a100_80gb()
    }

    #[test]
    fn non_opt_is_several_times_costlier() {
        let w = AbftWorkload::fig8_default();
        let (non_opt, opt) = fig8_projection(&gpu(), &w);
        assert!(
            non_opt / opt > 3.0 && non_opt / opt < 15.0,
            "ratio {}",
            non_opt / opt
        );
    }

    #[test]
    fn overheads_bracket_paper_ranges() {
        // Paper: Non-OPT 62–93%, OPT 7–13% on the attention block.
        let w = AbftWorkload::fig8_default();
        let (non_opt, opt) = fig8_projection(&gpu(), &w);
        assert!(non_opt > 0.3 && non_opt < 1.5, "non-opt {non_opt}");
        assert!(opt > 0.02 && opt < 0.25, "opt {opt}");
    }

    #[test]
    fn larger_batches_amortize_launch_overhead() {
        let small = AbftWorkload {
            batch: 2,
            ..AbftWorkload::fig8_default()
        };
        let big = AbftWorkload {
            batch: 64,
            ..AbftWorkload::fig8_default()
        };
        let (ns, _) = fig8_projection(&gpu(), &small);
        let (nb, _) = fig8_projection(&gpu(), &big);
        assert!(nb < ns, "launch overhead must amortize: {ns} -> {nb}");
    }
}
