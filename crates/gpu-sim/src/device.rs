//! GPU machine constants.

use serde::{Deserialize, Serialize};

/// Analytic model of one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Marketing name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// Peak FP32 throughput in TFLOP/s (CUDA cores; TF32 tensor cores are
    /// modelled through `tensor_tflops`).
    pub fp32_tflops: f64,
    /// Peak tensor-core throughput in TFLOP/s (TF32, as used by training
    /// GEMMs).
    pub tensor_tflops: f64,
    /// Peak HBM bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Kernel launch latency in microseconds.
    pub launch_overhead_us: f64,
    /// Fraction of peak GEMM throughput large training GEMMs sustain.
    pub gemm_efficiency: f64,
}

impl GpuModel {
    /// NVIDIA A100-SXM4-80GB — the paper's evaluation GPU. The 2 TB/s
    /// figure matches the "Peak Memory Bandwidth (A100): 2 TB/s" line drawn
    /// in the paper's Fig 9.
    pub fn a100_80gb() -> Self {
        Self {
            name: "A100-80GB",
            sm_count: 108,
            fp32_tflops: 19.5,
            tensor_tflops: 156.0,
            mem_bw_gbs: 2039.0,
            launch_overhead_us: 5.0,
            gemm_efficiency: 0.45,
        }
    }

    /// Seconds to move `bytes` at a given fraction of peak bandwidth.
    pub fn mem_time(&self, bytes: f64, utilization: f64) -> f64 {
        bytes / (self.mem_bw_gbs * 1e9 * utilization.clamp(1e-3, 1.0))
    }

    /// Seconds to execute `flops` of dense GEMM work on tensor cores.
    pub fn gemm_time(&self, flops: f64) -> f64 {
        flops / (self.tensor_tflops * 1e12 * self.gemm_efficiency)
    }

    /// Launch latency in seconds.
    pub fn launch(&self) -> f64 {
        self.launch_overhead_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_constants() {
        let g = GpuModel::a100_80gb();
        assert_eq!(g.sm_count, 108);
        assert!((g.mem_bw_gbs - 2039.0).abs() < 1.0);
    }

    #[test]
    fn mem_time_scales_linearly() {
        let g = GpuModel::a100_80gb();
        let t1 = g.mem_time(1e9, 1.0);
        let t2 = g.mem_time(2e9, 1.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // Half utilization doubles the time.
        assert!((g.mem_time(1e9, 0.5) / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gemm_time_sane() {
        let g = GpuModel::a100_80gb();
        // 1 TFLOP at 45% of 156 TF/s ≈ 14 ms.
        let t = g.gemm_time(1e12);
        assert!(t > 0.01 && t < 0.02, "{t}");
    }
}
