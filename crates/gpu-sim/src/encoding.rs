//! Checksum-encoding kernel models (paper Fig 9).
//!
//! Encoding computes, for every `(batch, head)` slot of shape
//! `seq × head_dim`, two weighted column sums. It is purely bandwidth-bound
//! (each element is read once, the output is negligible), so throughput is
//! decided by how well the kernel streams HBM:
//!
//! * **ATTNChecker's fused encoder** parallelises across
//!   `batch × heads` blocks, stages slots in shared memory with decoupled
//!   load/compute thread mappings (fully coalesced loads, bank-conflict-free
//!   compute), and produces both the unweighted and weighted sums in one
//!   pass. The paper measures up to **91.4%** of peak bandwidth.
//! * **cuBLAS composition** (`cublasSgemvStridedBatched` × 2): two separate
//!   launches, each re-reading the operand, with tall-skinny GEMV shapes
//!   that occupy the machine poorly — the paper measures **<10%** of peak.
//!
//! [`encoding_throughput_curve`] reproduces the figure's x-axis sweep
//! (batch 24 → 1536 at GPT-2-ish dimensions).

use crate::device::GpuModel;
use crate::kernel::{simulate, KernelSpec};

/// Dimensions of one encoding workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingWorkload {
    /// Batch size.
    pub batch: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq: usize,
    /// Per-head width.
    pub head_dim: usize,
}

impl EncodingWorkload {
    /// GPT-2-like dimensions used for the Fig 9 sweep.
    pub fn gpt2_like(batch: usize) -> Self {
        Self {
            batch,
            heads: 12,
            seq: 128,
            head_dim: 64,
        }
    }

    /// Bytes of operand data one encoding pass must read.
    pub fn bytes(&self) -> f64 {
        (self.batch * self.heads * self.seq * self.head_dim * 4) as f64
    }

    /// Flops of one dual-checksum encoding (2 multiply-accumulate streams).
    pub fn flops(&self) -> f64 {
        4.0 * (self.batch * self.heads * self.seq * self.head_dim) as f64
    }

    /// Thread blocks the fused kernel launches (one per slot — the paper's
    /// "parallelize the encoding process along the SMs by number of heads ×
    /// number of batches").
    pub fn blocks(&self) -> usize {
        self.batch * self.heads
    }
}

/// Peak bandwidth fraction of the paper's fused encoder at full occupancy.
pub const FUSED_MAX_UTILIZATION: f64 = 0.914;

/// Effective bandwidth fraction of one cuBLAS strided-batched GEMV on the
/// tall-skinny encoding shapes (per launch, at full occupancy).
pub const CUBLAS_GEMV_UTILIZATION: f64 = 0.15;

/// Simulated time (seconds) of the fused ATTNChecker encoder.
pub fn fused_encode_time(gpu: &GpuModel, w: &EncodingWorkload) -> f64 {
    simulate(
        gpu,
        &KernelSpec {
            flops: w.flops(),
            bytes: w.bytes(),
            blocks: w.blocks(),
            max_bw_utilization: FUSED_MAX_UTILIZATION,
        },
    )
    .time
}

/// Simulated time (seconds) of the cuBLAS composition: two strided-batched
/// GEMV launches, each re-reading the operand.
pub fn cublas_encode_time(gpu: &GpuModel, w: &EncodingWorkload) -> f64 {
    let one_pass = simulate(
        gpu,
        &KernelSpec {
            flops: w.flops() / 2.0,
            bytes: w.bytes(), // each pass reads all of A again
            blocks: w.blocks(),
            max_bw_utilization: CUBLAS_GEMV_UTILIZATION,
        },
    );
    2.0 * one_pass.time
}

/// Effective *useful* throughput in TB/s: operand bytes (counted once)
/// divided by wall time — the quantity Fig 9 plots.
pub fn throughput_tbs(bytes: f64, time: f64) -> f64 {
    bytes / time / 1e12
}

/// One row of the Fig 9 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodingPoint {
    /// Batch size (x-axis).
    pub batch: usize,
    /// cuBLAS composition throughput, TB/s.
    pub cublas_tbs: f64,
    /// ATTNChecker fused-encoder throughput, TB/s.
    pub fused_tbs: f64,
}

/// Sweep the paper's batch sizes (24 → 1536) on the A100 model.
pub fn encoding_throughput_curve(gpu: &GpuModel, batches: &[usize]) -> Vec<EncodingPoint> {
    batches
        .iter()
        .map(|&batch| {
            let w = EncodingWorkload::gpt2_like(batch);
            let fused = fused_encode_time(gpu, &w);
            let cublas = cublas_encode_time(gpu, &w);
            EncodingPoint {
                batch,
                cublas_tbs: throughput_tbs(w.bytes(), cublas),
                fused_tbs: throughput_tbs(w.bytes(), fused),
            }
        })
        .collect()
}

/// The batch sizes on the paper's Fig 9 x-axis.
pub const FIG9_BATCHES: [usize; 7] = [24, 48, 96, 192, 384, 768, 1536];

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuModel {
        GpuModel::a100_80gb()
    }

    #[test]
    fn fused_beats_cublas_everywhere() {
        for p in encoding_throughput_curve(&gpu(), &FIG9_BATCHES) {
            assert!(
                p.fused_tbs > p.cublas_tbs,
                "batch {}: fused {} vs cublas {}",
                p.batch,
                p.fused_tbs,
                p.cublas_tbs
            );
        }
    }

    #[test]
    fn fused_approaches_91_percent_of_peak() {
        let p = encoding_throughput_curve(&gpu(), &[1536])[0];
        let peak = gpu().mem_bw_gbs / 1000.0; // TB/s
        let frac = p.fused_tbs / peak;
        assert!(frac > 0.80 && frac <= 0.92, "fraction {frac}");
    }

    #[test]
    fn cublas_stays_below_10_percent_of_peak() {
        for p in encoding_throughput_curve(&gpu(), &FIG9_BATCHES) {
            let frac = p.cublas_tbs / (gpu().mem_bw_gbs / 1000.0);
            assert!(frac < 0.10, "batch {}: {frac}", p.batch);
        }
    }

    #[test]
    fn speedup_is_on_the_order_of_13x() {
        // Paper: "Our optimized kernel outperforms cuBLAS by 13×".
        let p = encoding_throughput_curve(&gpu(), &[768])[0];
        let speedup = p.fused_tbs / p.cublas_tbs;
        assert!(speedup > 8.0 && speedup < 20.0, "speedup {speedup}");
    }

    #[test]
    fn throughput_grows_with_batch() {
        let pts = encoding_throughput_curve(&gpu(), &FIG9_BATCHES);
        for w in pts.windows(2) {
            assert!(w[1].fused_tbs >= w[0].fused_tbs);
        }
    }

    #[test]
    fn workload_accounting() {
        let w = EncodingWorkload::gpt2_like(24);
        assert_eq!(w.blocks(), 288);
        assert_eq!(w.bytes(), (24 * 12 * 128 * 64 * 4) as f64);
    }
}
