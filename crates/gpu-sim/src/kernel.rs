//! Roofline kernel cost model with occupancy.

use crate::device::GpuModel;

/// Static description of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpec {
    /// Arithmetic work.
    pub flops: f64,
    /// Bytes moved to/from HBM.
    pub bytes: f64,
    /// Thread blocks launched (drives occupancy).
    pub blocks: usize,
    /// Peak bandwidth fraction this kernel can reach at full occupancy
    /// (e.g. 0.914 for the paper's fused encoder, <0.1 for the cuBLAS
    /// composition).
    pub max_bw_utilization: f64,
}

/// Cost breakdown of a simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Total seconds including launch.
    pub time: f64,
    /// Memory-bound component.
    pub mem_time: f64,
    /// Compute-bound component.
    pub compute_time: f64,
    /// Achieved fraction of peak HBM bandwidth.
    pub bw_utilization: f64,
}

/// Occupancy ramp: a grid needs a few waves of blocks across the SMs before
/// the memory system saturates. `blocks/(blocks + sm_count)` rises from
/// ~0.5 at one wave toward 1.0 — matching how the paper's encoder
/// throughput grows with `batch × heads`.
pub fn occupancy_factor(blocks: usize, sm_count: usize) -> f64 {
    if blocks == 0 {
        return 0.0;
    }
    blocks as f64 / (blocks as f64 + sm_count as f64)
}

/// Simulate one kernel launch on `gpu`.
pub fn simulate(gpu: &GpuModel, spec: &KernelSpec) -> KernelCost {
    let occ = occupancy_factor(spec.blocks, gpu.sm_count);
    let util = (spec.max_bw_utilization * occ).clamp(1e-4, 1.0);
    let mem_time = gpu.mem_time(spec.bytes, util);
    let compute_time = spec.flops / (gpu.fp32_tflops * 1e12);
    let busy = mem_time.max(compute_time);
    let time = busy + gpu.launch();
    KernelCost {
        time,
        mem_time,
        compute_time,
        bw_utilization: spec.bytes / (gpu.mem_bw_gbs * 1e9) / time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuModel {
        GpuModel::a100_80gb()
    }

    #[test]
    fn occupancy_monotone() {
        let sm = 108;
        let mut last = 0.0;
        for blocks in [1, 54, 108, 432, 4096] {
            let o = occupancy_factor(blocks, sm);
            assert!(o > last);
            last = o;
        }
        assert!(occupancy_factor(100_000, sm) > 0.99);
        assert_eq!(occupancy_factor(0, sm), 0.0);
    }

    #[test]
    fn memory_bound_kernel_time_tracks_bytes() {
        let spec = KernelSpec {
            flops: 1e6,
            bytes: 1e9,
            blocks: 100_000,
            max_bw_utilization: 0.9,
        };
        let c = simulate(&gpu(), &spec);
        assert!(c.mem_time > c.compute_time);
        // ~1 GB at ~0.9 × 2 TB/s ≈ 0.55 ms.
        assert!(c.time > 4e-4 && c.time < 8e-4, "{}", c.time);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let spec = KernelSpec {
            flops: 1e3,
            bytes: 1e3,
            blocks: 1,
            max_bw_utilization: 0.9,
        };
        let c = simulate(&gpu(), &spec);
        assert!(c.time >= gpu().launch());
        assert!(c.time < 2.0 * gpu().launch());
    }

    #[test]
    fn utilization_never_exceeds_peak() {
        for blocks in [1, 10, 1000, 100_000] {
            let spec = KernelSpec {
                flops: 0.0,
                bytes: 1e8,
                blocks,
                max_bw_utilization: 0.95,
            };
            let c = simulate(&gpu(), &spec);
            assert!(c.bw_utilization <= 1.0);
            assert!(c.bw_utilization >= 0.0);
        }
    }
}
