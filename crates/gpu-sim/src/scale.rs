//! Multi-billion-parameter data-parallel training-step model (paper
//! Fig 12).
//!
//! The paper projects ATTNChecker's overhead when training 30B/60B/100B-
//! parameter models on 1,024 GPUs "using the same simulation methodology as
//! existing work". This module is our equivalent: an analytic step model
//! (compute + ring allreduce) with an explicit account of the ABFT work —
//! fused checksum-update flops in the six attention GEMMs plus the
//! encode/detect memory passes.
//!
//! The headline property reproduced is *scale invariance*: the ABFT cost
//! and the attention cost both grow with the same model terms, so the
//! overhead percentage stays flat from 30B to 100B.

use crate::device::GpuModel;

/// A large decoder-only transformer in the Fig 12 style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BigModel {
    /// Display label ("30B" …).
    pub label: &'static str,
    /// Transformer layers.
    pub layers: usize,
    /// Model width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Training sequence length.
    pub seq: usize,
}

impl BigModel {
    /// ≈30B parameters (GPT-3-30B-like shape).
    pub fn b30() -> Self {
        Self {
            label: "30B",
            layers: 48,
            hidden: 7168,
            heads: 56,
            seq: 2048,
        }
    }

    /// ≈60B parameters.
    pub fn b60() -> Self {
        Self {
            label: "60B",
            layers: 64,
            hidden: 8832,
            heads: 69,
            seq: 2048,
        }
    }

    /// ≈100B parameters.
    pub fn b100() -> Self {
        Self {
            label: "100B",
            layers: 80,
            hidden: 10240,
            heads: 80,
            seq: 2048,
        }
    }

    /// The three Fig 12 sizes.
    pub fn fig12_sizes() -> [BigModel; 3] {
        [Self::b30(), Self::b60(), Self::b100()]
    }

    /// Approximate parameter count (`12·L·h²` transformer accounting).
    pub fn params(&self) -> f64 {
        12.0 * self.layers as f64 * (self.hidden as f64) * (self.hidden as f64)
    }

    /// Forward flops of one layer's attention GEMMs for one sequence.
    pub fn attn_fwd_flops(&self) -> f64 {
        let s = self.seq as f64;
        let h = self.hidden as f64;
        8.0 * s * h * h + 4.0 * s * s * h
    }

    /// Forward flops of one layer's FFN for one sequence (4× expansion).
    pub fn ffn_fwd_flops(&self) -> f64 {
        let s = self.seq as f64;
        let h = self.hidden as f64;
        16.0 * s * h * h
    }
}

/// Cluster/data-parallel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// GPUs in the data-parallel group.
    pub gpus: usize,
    /// Sequences per GPU per step.
    pub seqs_per_gpu: usize,
    /// Effective per-GPU allreduce bandwidth in GB/s.
    pub allreduce_bw_gbs: f64,
    /// Fraction of the allreduce hidden under backward compute.
    pub overlap: f64,
}

impl ClusterConfig {
    /// The paper's 1,024-GPU data-parallel setup.
    pub fn paper_1024() -> Self {
        Self {
            gpus: 1024,
            seqs_per_gpu: 2,
            allreduce_bw_gbs: 20.0,
            overlap: 0.7,
        }
    }
}

/// Cost breakdown of one simulated training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepBreakdown {
    /// Total step seconds without ABFT.
    pub base_step: f64,
    /// Seconds of attention forward inside the step.
    pub attention_fwd: f64,
    /// Extra seconds ATTNChecker adds.
    pub abft: f64,
    /// Gradient allreduce seconds (post-overlap).
    pub allreduce: f64,
}

impl StepBreakdown {
    /// ABFT overhead as a fraction of the unprotected step.
    pub fn abft_overhead(&self) -> f64 {
        self.abft / self.base_step
    }
}

/// ABFT cost of one layer's attention for one sequence, in seconds:
/// fused checksum rows in the six GEMMs plus encode/detect memory sweeps.
pub fn abft_layer_time(gpu: &GpuModel, m: &BigModel) -> f64 {
    let s = m.seq as f64;
    let h = m.hidden as f64;
    let heads = m.heads as f64;

    // Fused checksum updates: +2 rows/cols on each GEMM.
    // Projections X·W: extra 2·h·(2h) flops each, 4 of them; score GEMMs:
    // extra ≈ 2·(s+2)·(2·d)·heads ≈ 4·s·h each, 2 of them.
    let extra_flops = 4.0 * (4.0 * h * h) + 2.0 * (4.0 * s * h);
    let update = gpu.gemm_time(extra_flops);

    // Encoding sweeps: X once (column checksums for S_AS), W_V per head
    // slice (row checksums), AP per head (column checksums after softmax).
    let encode_bytes = (s * h + h * h / heads * heads + heads * s * s) * 4.0;
    // Detection sweeps: AS both sides, CL both sides, O one side, plus the
    // source heals are error-path-only (free when fault-free).
    let detect_bytes = (2.0 * heads * s * s + 2.0 * s * h + s * h) * 4.0;
    let mem = gpu.mem_time(encode_bytes + detect_bytes, 0.85);

    // Detection/encode kernels per layer (fused path): ~6 launches.
    let launches = 6.0 * gpu.launch();
    update + mem + launches
}

/// Simulate one data-parallel training step of `m` on `cluster`.
pub fn simulate_step(gpu: &GpuModel, m: &BigModel, cluster: &ClusterConfig) -> StepBreakdown {
    let seqs = cluster.seqs_per_gpu as f64;
    let layers = m.layers as f64;

    let attn_fwd = gpu.gemm_time(m.attn_fwd_flops()) * layers * seqs;
    let ffn_fwd = gpu.gemm_time(m.ffn_fwd_flops()) * layers * seqs;
    let fwd = attn_fwd + ffn_fwd;
    let bwd = 2.0 * fwd; // standard 2× forward accounting

    let grad_bytes = m.params() * 4.0;
    let ring = 2.0 * (cluster.gpus as f64 - 1.0) / cluster.gpus as f64;
    let allreduce_raw = ring * grad_bytes / (cluster.allreduce_bw_gbs * 1e9);
    let allreduce = allreduce_raw * (1.0 - cluster.overlap);

    let base_step = fwd + bwd + allreduce;
    let abft = abft_layer_time(gpu, m) * layers * seqs;

    StepBreakdown {
        base_step,
        attention_fwd: attn_fwd,
        abft,
        allreduce,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuModel {
        GpuModel::a100_80gb()
    }

    #[test]
    fn parameter_counts_are_in_range() {
        assert!((BigModel::b30().params() / 1e9 - 30.0).abs() < 3.0);
        assert!((BigModel::b60().params() / 1e9 - 60.0).abs() < 6.0);
        assert!((BigModel::b100().params() / 1e9 - 100.0).abs() < 10.0);
    }

    #[test]
    fn overhead_is_small_and_scale_invariant() {
        // The Fig 12 claim: overhead ≈ constant as parameters grow.
        let cluster = ClusterConfig::paper_1024();
        let overheads: Vec<f64> = BigModel::fig12_sizes()
            .iter()
            .map(|m| simulate_step(&gpu(), m, &cluster).abft_overhead())
            .collect();
        for &o in &overheads {
            assert!(o > 0.001 && o < 0.15, "overhead {o}");
        }
        let spread = overheads.iter().cloned().fold(f64::MIN, f64::max)
            - overheads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread < 0.01,
            "overhead must be near-constant across sizes: {overheads:?}"
        );
    }

    #[test]
    fn attention_is_a_minority_of_the_step() {
        let b = simulate_step(&gpu(), &BigModel::b30(), &ClusterConfig::paper_1024());
        assert!(b.attention_fwd < b.base_step * 0.5);
        assert!(b.attention_fwd > 0.0);
    }

    #[test]
    fn allreduce_shrinks_with_overlap() {
        let mut c = ClusterConfig::paper_1024();
        let b1 = simulate_step(&gpu(), &BigModel::b30(), &c);
        c.overlap = 0.0;
        let b2 = simulate_step(&gpu(), &BigModel::b30(), &c);
        assert!(b2.allreduce > b1.allreduce);
    }

    #[test]
    fn abft_time_grows_with_model_but_slower_than_step() {
        let cluster = ClusterConfig::paper_1024();
        let s30 = simulate_step(&gpu(), &BigModel::b30(), &cluster);
        let s100 = simulate_step(&gpu(), &BigModel::b100(), &cluster);
        assert!(s100.abft > s30.abft);
        assert!(s100.base_step > s30.base_step);
    }
}
