//! # attn-gpusim
//!
//! Analytic performance model of an NVIDIA A100 GPU and of multi-GPU
//! data-parallel training — the substitute for the paper's hardware testbed
//! in the experiments that are *about* the hardware:
//!
//! * **Fig 9** (checksum-encoding throughput, cuBLAS vs the custom fused
//!   kernel) is bandwidth-bound, so a roofline + occupancy + launch-overhead
//!   model reproduces its shape ([`encoding`]).
//! * **Fig 12** (ABFT overhead for 30B/60B/100B-parameter models on 1,024
//!   GPUs) was itself produced by simulation in the paper ("using the same
//!   simulation methodology as existing work \[27]"); [`scale`] implements
//!   an equivalent analytic step model.
//!
//! [`device`] holds the machine constants, [`kernel`] the roofline kernel
//! cost model.

pub mod abft_cost;
pub mod device;
pub mod encoding;
pub mod kernel;
pub mod scale;

pub use device::GpuModel;
pub use kernel::{KernelCost, KernelSpec};
