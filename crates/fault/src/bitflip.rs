//! Raw IEEE-754 bit manipulation.
//!
//! A single-event upset in a register or ALU datapath manifests as one
//! flipped bit of the binary32 representation. Which field the bit lands in
//! decides the outcome (§2.2 of the paper):
//!
//! * exponent MSB (bit 30) set on a typical activation (|x| < 2) multiplies
//!   the magnitude by 2¹²⁸-ish → **near-INF**;
//! * all-ones exponent with zero mantissa → **INF**;
//! * all-ones exponent with non-zero mantissa → **NaN**;
//! * sign/mantissa flips → benign magnitude perturbations (out of scope:
//!   prior work shows training absorbs them).

/// Flip bit `bit` (0 = LSB of the mantissa, 31 = sign) of an `f32`.
///
/// # Panics
/// Panics if `bit > 31`.
pub fn flip_bit(x: f32, bit: u32) -> f32 {
    assert!(bit < 32, "binary32 has bits 0..=31");
    f32::from_bits(x.to_bits() ^ (1u32 << bit))
}

/// The paper's near-INF injection: flip the most significant exponent bit
/// (bit 30).
///
/// For the activations that dominate attention (|x| < 1, biased exponent
/// ≤ 126, bit 30 clear) this *sets* the bit, scaling the value by 2¹²⁸⁻ᵏ
/// into the ~1e31…1.7e38 range while staying finite. Values in [1, 2) flip
/// straight to INF (x = 1.0 exactly) or NaN (non-zero mantissa) — a
/// bit-flip-induced *type transition*. For |x| ≥ 2 the flip instead
/// collapses the value toward zero; campaign code treats that as benign and
/// substitutes a representative near-INF, mirroring the paper's focus on
/// faults that *do* produce extreme values.
pub fn near_inf_flip(x: f32) -> f32 {
    flip_bit(x, 30)
}

/// True when `x` is finite but its magnitude exceeds `threshold`
/// (the "near-INF" predicate).
pub fn is_near_inf(x: f32, threshold: f32) -> bool {
    x.is_finite() && x.abs() > threshold
}

/// Exponent field (biased) of a binary32.
pub fn exponent_field(x: f32) -> u32 {
    (x.to_bits() >> 23) & 0xff
}

/// Mantissa field of a binary32.
pub fn mantissa_field(x: f32) -> u32 {
    x.to_bits() & 0x7f_ffff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NEAR_INF_THRESHOLD;

    #[test]
    fn flip_sign_bit_negates() {
        assert_eq!(flip_bit(1.5, 31), -1.5);
        assert_eq!(flip_bit(-2.0, 31), 2.0);
    }

    #[test]
    fn flip_is_involutive() {
        for bit in 0..32 {
            let x = 0.372_912_5f32;
            assert_eq!(flip_bit(flip_bit(x, bit), bit).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn near_inf_flip_on_small_activation_is_huge_but_finite() {
        for &x in &[0.01f32, 0.5, 0.9, 0.999, -0.3, -0.75] {
            let y = near_inf_flip(x);
            assert!(y.is_finite(), "x={x} -> {y}");
            assert!(
                is_near_inf(y, NEAR_INF_THRESHOLD),
                "x={x} -> {y} not near-INF"
            );
            // Sign is preserved: only the exponent changed.
            assert_eq!(x.is_sign_negative(), y.is_sign_negative());
        }
    }

    #[test]
    fn near_inf_flip_type_transitions_in_unit_band() {
        // Biased exponent 127 (|x| in [1,2)): the flip lands on the all-ones
        // exponent — INF for a zero mantissa, NaN otherwise. This is the
        // bit-level origin of the paper's "one type of exception can transit
        // to another" observation.
        assert_eq!(near_inf_flip(1.0), f32::INFINITY);
        assert_eq!(near_inf_flip(-1.0), f32::NEG_INFINITY);
        assert!(near_inf_flip(1.5).is_nan());
    }

    #[test]
    fn near_inf_flip_on_large_value_collapses() {
        // |x| >= 2 has bit 30 set; clearing it shrinks the value (benign).
        let y = near_inf_flip(4.0);
        assert!(y.abs() < 1.0);
    }

    #[test]
    fn exponent_all_ones_is_inf_or_nan() {
        assert_eq!(exponent_field(f32::INFINITY), 0xff);
        assert_eq!(mantissa_field(f32::INFINITY), 0);
        assert_eq!(exponent_field(f32::NAN), 0xff);
        assert_ne!(mantissa_field(f32::NAN), 0);
    }

    #[test]
    fn is_near_inf_rejects_inf_nan_and_small() {
        assert!(!is_near_inf(f32::INFINITY, NEAR_INF_THRESHOLD));
        assert!(!is_near_inf(f32::NAN, NEAR_INF_THRESHOLD));
        assert!(!is_near_inf(1e9, NEAR_INF_THRESHOLD));
        assert!(is_near_inf(1e11, NEAR_INF_THRESHOLD));
        assert!(is_near_inf(-1e12, NEAR_INF_THRESHOLD));
    }
}
