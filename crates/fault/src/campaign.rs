//! Deterministic parallel campaign runner.
//!
//! The paper's Tables 2 and 4 aggregate thousands of single-fault trials
//! ("we randomly select 10% (~5,000) elements of each output matrix").
//! [`run_campaign`] executes `trials` independent closures in parallel, each
//! with a deterministically forked RNG, so results are reproducible and
//! independent of thread scheduling.

use attn_tensor::rng::TensorRng;
use rayon::prelude::*;

/// Run `trials` independent trials in parallel.
///
/// Each trial receives `(trial_index, its own TensorRng)`; the RNG seed is
/// derived from `base_seed` and the trial index, so results do not depend on
/// rayon's scheduling order.
pub fn run_campaign<T: Send>(
    base_seed: u64,
    trials: usize,
    trial: impl Fn(usize, &mut TensorRng) -> T + Sync,
) -> Vec<T> {
    (0..trials)
        .into_par_iter()
        .map(|i| {
            // SplitMix-style per-trial seed derivation keeps streams apart.
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .rotate_left(17);
            let mut rng = TensorRng::seed_from(seed);
            trial(i, &mut rng)
        })
        .collect()
}

/// Boolean-outcome campaign statistics with a Wilson confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignStats {
    /// Number of trials whose predicate held.
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
}

impl CampaignStats {
    /// Aggregate a slice of boolean outcomes.
    pub fn from_outcomes(outcomes: &[bool]) -> Self {
        Self {
            successes: outcomes.iter().filter(|&&b| b).count(),
            trials: outcomes.len(),
        }
    }

    /// Point estimate of the success probability.
    ///
    /// Returns [`f64::NAN`] for an empty campaign: `0/0` has no point
    /// estimate, and reporting `0.0` would make a campaign that never ran
    /// indistinguishable from one where every trial failed.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            f64::NAN
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// 95% Wilson score interval for the success probability.
    ///
    /// Returns `(NaN, NaN)` for an empty campaign, matching [`Self::rate`]:
    /// a campaign that never ran has no interval, and the old `(0.0, 1.0)`
    /// answer dressed the undefined case up as a maximally-wide-but-valid
    /// bound that downstream floor checks (`lo >= threshold`) silently
    /// passed or failed on. NaN poisons any such comparison loudly.
    pub fn wilson_95(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (f64::NAN, f64::NAN);
        }
        let n = self.trials as f64;
        let p = self.rate();
        let z = 1.959_964; // 97.5 percentile of the standard normal
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }

    /// Formatted percentage, e.g. `"97.3%"`; `"n/a"` for an empty campaign
    /// (visibly distinct from an all-failure `"0.0%"`).
    pub fn percent(&self) -> String {
        if self.trials == 0 {
            "n/a".into()
        } else {
            format!("{:.1}%", 100.0 * self.rate())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_across_runs() {
        let a = run_campaign(42, 64, |_, rng| rng.next_u64());
        let b = run_campaign(42, 64, |_, rng| rng.next_u64());
        assert_eq!(a, b);
    }

    #[test]
    fn campaign_trials_have_distinct_streams() {
        let vals = run_campaign(1, 32, |_, rng| rng.next_u64());
        let mut uniq = vals.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), vals.len());
    }

    #[test]
    fn campaign_indices_cover_range() {
        let mut idx = run_campaign(5, 100, |i, _| i);
        idx.sort();
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stats_rate_and_percent() {
        let s = CampaignStats::from_outcomes(&[true, true, false, true]);
        assert_eq!(s.successes, 3);
        assert!((s.rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.percent(), "75.0%");
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let s = CampaignStats {
            successes: 90,
            trials: 100,
        };
        let (lo, hi) = s.wilson_95();
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(lo > 0.8 && hi < 0.97);
    }

    #[test]
    fn wilson_handles_extremes() {
        let all = CampaignStats {
            successes: 50,
            trials: 50,
        };
        let (lo, hi) = all.wilson_95();
        assert!(hi <= 1.0 && lo > 0.9);
        let none = CampaignStats {
            successes: 0,
            trials: 50,
        };
        let (lo, hi) = none.wilson_95();
        assert!(lo >= 0.0 && hi < 0.1);
    }

    #[test]
    fn empty_stats_are_visibly_distinct_from_all_failure() {
        let empty = CampaignStats::from_outcomes(&[]);
        assert!(empty.rate().is_nan(), "0/0 has no point estimate");
        assert_eq!(empty.percent(), "n/a");

        let all_failed = CampaignStats::from_outcomes(&[false, false]);
        assert_eq!(all_failed.rate(), 0.0);
        assert_eq!(all_failed.percent(), "0.0%");
    }

    #[test]
    fn empty_campaign_interval_is_nan_not_a_vacuous_bound() {
        // Regression: wilson_95 on 0 trials used to answer (0.0, 1.0),
        // which a floor check like `lo >= 0.95` treats as a real (failing)
        // measurement — and `hi >= x` as a passing one. NaN fails every
        // comparison, so a campaign that never ran can't masquerade as one
        // that did.
        let empty = CampaignStats::from_outcomes(&[]);
        let (lo, hi) = empty.wilson_95();
        assert!(lo.is_nan() && hi.is_nan());
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        {
            assert!(!(lo >= 0.0), "NaN must poison floor comparisons");
            assert!(!(hi <= 1.0), "NaN must poison ceiling comparisons");
        }

        // One-trial campaigns still get a real interval.
        let one = CampaignStats::from_outcomes(&[true]);
        let (lo, hi) = one.wilson_95();
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
    }
}
