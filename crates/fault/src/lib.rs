//! # attn-fault
//!
//! Soft-error injection and error-propagation analysis, reproducing the
//! methodology of the paper's §3 (fault injection and error propagation
//! study) and §5.1 (evaluation-time injection).
//!
//! The paper injects three classes of extreme value into GEMM outputs:
//!
//! * **INF** — written directly (`±∞` assignment),
//! * **NaN** — written directly,
//! * **near-INF** — produced by flipping the most-significant *exponent* bit
//!   of the victim element, the dominant hardware mechanism for magnitude
//!   explosions (§2.2).
//!
//! [`bitflip`] implements the raw IEEE-754 manipulation, [`inject`] the
//! campaign-facing injector, [`pattern`] the 0D/1R/1C/2D propagation
//! classifier behind Table 2, and [`campaign`] a deterministic parallel
//! trial runner used by the Table 4 and §5.2 reproductions.

pub mod bitflip;
pub mod campaign;
pub mod inject;
pub mod pattern;

pub use bitflip::{flip_bit, near_inf_flip};
pub use campaign::{run_campaign, CampaignStats};
pub use inject::{FaultInjector, FaultKind, InjectionRecord, RegionRecord};
pub use pattern::{classify, ErrorTypeCensus, PatternClass, PropagationReport, ValueClass};

/// Default magnitude threshold above which a finite value counts as
/// near-INF. Matches the paper's empirical `T_near-INF = 1e10` (§4.2).
pub const NEAR_INF_THRESHOLD: f32 = 1e10;
