//! Propagation-pattern classification (paper §2.2, Table 2).
//!
//! After a fault is injected and the attention pipeline continues executing,
//! the corrupted region of each downstream matrix takes one of four shapes:
//!
//! * **0D** — a single standalone element (the origin of the fault),
//! * **1R** — (part of) one row,
//! * **1C** — (part of) one column,
//! * **2D** — a sub-matrix beyond one row/column.
//!
//! The *value classes* inside the corrupted region also matter because EEC-
//! ABFT dispatches on them: ±INF, NaN, near-INF, or moderate numeric noise.
//! [`classify`] reproduces both the shape and the census, formatted in the
//! paper's glyph notation (`1R-Θ`, `1C-∞*`, `2D-M`, …).

use crate::bitflip::is_near_inf;
use crate::NEAR_INF_THRESHOLD;
use attn_tensor::Matrix;
use std::fmt;

/// Shape of the corrupted region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternClass {
    /// No corrupted elements.
    Clean,
    /// One standalone corrupted element at `(row, col)`.
    ZeroD { row: usize, col: usize },
    /// Corruption confined to a single row.
    OneRow { row: usize },
    /// Corruption confined to a single column.
    OneCol { col: usize },
    /// Corruption spans multiple rows *and* columns.
    TwoD,
}

impl PatternClass {
    /// Paper-style glyph: `-`, `0D`, `1R`, `1C`, `2D`.
    pub fn glyph(self) -> &'static str {
        match self {
            PatternClass::Clean => "-",
            PatternClass::ZeroD { .. } => "0D",
            PatternClass::OneRow { .. } => "1R",
            PatternClass::OneCol { .. } => "1C",
            PatternClass::TwoD => "2D",
        }
    }
}

/// Value class of a single corrupted element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueClass {
    /// `+∞`
    PosInf,
    /// `-∞`
    NegInf,
    /// NaN
    NaN,
    /// Finite with `|x| >` the near-INF threshold.
    NearInf,
    /// Finite, moderate-magnitude deviation from the reference.
    Moderate,
}

/// Census of value classes across the corrupted region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorTypeCensus {
    /// Count of `+∞` elements.
    pub pos_inf: usize,
    /// Count of `-∞` elements.
    pub neg_inf: usize,
    /// Count of NaN elements.
    pub nan: usize,
    /// Count of finite near-INF elements.
    pub near_inf: usize,
    /// Count of moderate numeric deviations.
    pub moderate: usize,
}

impl ErrorTypeCensus {
    /// Total corrupted elements counted.
    pub fn total(&self) -> usize {
        self.pos_inf + self.neg_inf + self.nan + self.near_inf + self.moderate
    }

    /// Number of *extreme* elements (everything except moderate noise).
    pub fn extreme(&self) -> usize {
        self.total() - self.moderate
    }

    /// Paper-style type glyph:
    /// `∞` (single-sign INF), `∞*` (mixed-sign INF), `Θ` (NaN),
    /// `N` (near-INF), `M` (mixture), `ε` (moderate only).
    pub fn glyph(&self) -> &'static str {
        let kinds_present = [
            self.pos_inf + self.neg_inf > 0,
            self.nan > 0,
            self.near_inf > 0,
        ]
        .iter()
        .filter(|&&b| b)
        .count();
        match kinds_present {
            0 => {
                if self.moderate > 0 {
                    "ε"
                } else {
                    "-"
                }
            }
            1 if self.nan > 0 => "Θ",
            1 if self.near_inf > 0 => "N",
            1 => {
                if self.pos_inf > 0 && self.neg_inf > 0 {
                    "∞*"
                } else {
                    "∞"
                }
            }
            _ => "M",
        }
    }
}

/// Full classification result for one downstream matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationReport {
    /// Shape of the corrupted region.
    pub pattern: PatternClass,
    /// Value-class census over the corrupted elements.
    pub census: ErrorTypeCensus,
    /// Every corrupted position `(row, col)`.
    pub positions: Vec<(usize, usize)>,
}

impl PropagationReport {
    /// True when nothing was corrupted.
    pub fn is_clean(&self) -> bool {
        matches!(self.pattern, PatternClass::Clean)
    }

    /// Paper-table cell, e.g. `1R-Θ`, `1C-∞*`, `2D-M`, or `-` for clean.
    pub fn cell(&self) -> String {
        if self.is_clean() {
            "-".to_string()
        } else {
            format!("{}-{}", self.pattern.glyph(), self.census.glyph())
        }
    }
}

impl fmt::Display for PropagationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} elems)", self.cell(), self.census.total())
    }
}

/// Classify the deviation of `corrupted` from `reference`.
///
/// An element counts as corrupted when its finiteness class differs from the
/// reference or its value deviates by more than
/// `rel_tol · max(1, |reference|)`.
///
/// # Panics
/// Panics if shapes differ.
pub fn classify(reference: &Matrix, corrupted: &Matrix, rel_tol: f32) -> PropagationReport {
    assert_eq!(
        (reference.rows(), reference.cols()),
        (corrupted.rows(), corrupted.cols()),
        "classify: shape mismatch"
    );
    let mut positions = Vec::new();
    let mut census = ErrorTypeCensus::default();

    for r in 0..reference.rows() {
        let ref_row = reference.row(r);
        let cor_row = corrupted.row(r);
        for c in 0..reference.cols() {
            let a = ref_row[c];
            let b = cor_row[c];
            let differs = if a.is_nan() || b.is_nan() {
                a.is_nan() != b.is_nan()
            } else if a.is_infinite() || b.is_infinite() {
                a != b
            } else {
                (a - b).abs() > rel_tol * a.abs().max(1.0)
            };
            if !differs {
                continue;
            }
            positions.push((r, c));
            if b.is_nan() {
                census.nan += 1;
            } else if b == f32::INFINITY {
                census.pos_inf += 1;
            } else if b == f32::NEG_INFINITY {
                census.neg_inf += 1;
            } else if is_near_inf(b, NEAR_INF_THRESHOLD) {
                census.near_inf += 1;
            } else {
                census.moderate += 1;
            }
        }
    }

    let pattern = shape_of(&positions);
    PropagationReport {
        pattern,
        census,
        positions,
    }
}

/// Determine the 0D/1R/1C/2D shape of a set of positions.
pub fn shape_of(positions: &[(usize, usize)]) -> PatternClass {
    match positions {
        [] => PatternClass::Clean,
        [(r, c)] => PatternClass::ZeroD { row: *r, col: *c },
        rest => {
            let r0 = rest[0].0;
            let c0 = rest[0].1;
            let same_row = rest.iter().all(|&(r, _)| r == r0);
            let same_col = rest.iter().all(|&(_, c)| c == c0);
            match (same_row, same_col) {
                (true, _) => PatternClass::OneRow { row: r0 },
                (_, true) => PatternClass::OneCol { col: c0 },
                _ => PatternClass::TwoD,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Matrix {
        Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32 * 0.1)
    }

    #[test]
    fn clean_matrices_classify_clean() {
        let m = base();
        let rep = classify(&m, &m.clone(), 1e-4);
        assert!(rep.is_clean());
        assert_eq!(rep.cell(), "-");
    }

    #[test]
    fn single_inf_is_zero_d() {
        let m = base();
        let mut c = m.clone();
        c[(2, 3)] = f32::INFINITY;
        let rep = classify(&m, &c, 1e-4);
        assert_eq!(rep.pattern, PatternClass::ZeroD { row: 2, col: 3 });
        assert_eq!(rep.cell(), "0D-∞");
    }

    #[test]
    fn row_of_nans_is_one_r_theta() {
        let m = base();
        let mut c = m.clone();
        for j in 0..5 {
            c[(1, j)] = f32::NAN;
        }
        let rep = classify(&m, &c, 1e-4);
        assert_eq!(rep.pattern, PatternClass::OneRow { row: 1 });
        assert_eq!(rep.cell(), "1R-Θ");
        assert_eq!(rep.census.nan, 5);
    }

    #[test]
    fn column_of_mixed_sign_infs_is_one_c_inf_star() {
        let m = base();
        let mut c = m.clone();
        c[(0, 2)] = f32::INFINITY;
        c[(1, 2)] = f32::NEG_INFINITY;
        c[(2, 2)] = f32::INFINITY;
        let rep = classify(&m, &c, 1e-4);
        assert_eq!(rep.pattern, PatternClass::OneCol { col: 2 });
        assert_eq!(rep.cell(), "1C-∞*");
    }

    #[test]
    fn submatrix_is_two_d_mixture() {
        let m = base();
        let mut c = m.clone();
        c[(0, 0)] = f32::NAN;
        c[(1, 1)] = f32::INFINITY;
        c[(2, 2)] = 5e12;
        let rep = classify(&m, &c, 1e-4);
        assert_eq!(rep.pattern, PatternClass::TwoD);
        assert_eq!(rep.cell(), "2D-M");
    }

    #[test]
    fn near_inf_census() {
        let m = base();
        let mut c = m.clone();
        c[(3, 0)] = 2e11;
        c[(3, 1)] = -3e12;
        let rep = classify(&m, &c, 1e-4);
        assert_eq!(rep.pattern, PatternClass::OneRow { row: 3 });
        assert_eq!(rep.cell(), "1R-N");
        assert_eq!(rep.census.near_inf, 2);
    }

    #[test]
    fn moderate_noise_uses_epsilon_glyph() {
        let m = base();
        let mut c = m.clone();
        c[(0, 0)] += 10.0;
        c[(0, 1)] += 20.0;
        let rep = classify(&m, &c, 1e-4);
        assert_eq!(rep.cell(), "1R-ε");
    }

    #[test]
    fn tolerance_suppresses_roundoff() {
        let m = base();
        let mut c = m.clone();
        c[(2, 2)] += 1e-6;
        assert!(classify(&m, &c, 1e-4).is_clean());
    }

    #[test]
    fn partial_row_counts_as_one_r() {
        // Paper: "errors accumulate along one row or column (entire or
        // partial)".
        let m = base();
        let mut c = m.clone();
        c[(2, 1)] = f32::NAN;
        c[(2, 4)] = f32::NAN;
        let rep = classify(&m, &c, 1e-4);
        assert_eq!(rep.pattern, PatternClass::OneRow { row: 2 });
    }

    #[test]
    fn shape_of_single_covers_both_row_and_col() {
        // A single element is 0D, not 1R or 1C.
        assert_eq!(shape_of(&[(3, 4)]), PatternClass::ZeroD { row: 3, col: 4 });
    }

    #[test]
    fn census_mixture_of_nan_and_inf() {
        let cen = ErrorTypeCensus {
            nan: 1,
            pos_inf: 1,
            ..ErrorTypeCensus::default()
        };
        assert_eq!(cen.glyph(), "M");
        assert_eq!(cen.extreme(), 2);
    }

    #[test]
    fn inf_to_nan_reference_transition_detected() {
        // Reference finite, corrupted NaN at 2 spots in a column plus INF at
        // a third: still 1C, mixed type.
        let m = base();
        let mut c = m.clone();
        c[(0, 4)] = f32::NAN;
        c[(1, 4)] = f32::NAN;
        c[(3, 4)] = f32::NEG_INFINITY;
        let rep = classify(&m, &c, 1e-4);
        assert_eq!(rep.pattern, PatternClass::OneCol { col: 4 });
        assert_eq!(rep.census.glyph(), "M");
    }
}
