//! Campaign-facing fault injector.
//!
//! Reproduces the injection methodology of §3 and §5.1: one fault per trial,
//! written into the *output* matrix of a GEMM (a 0D origin) at a uniformly
//! random position, with the value determined by the fault class.

use crate::bitflip::{is_near_inf, near_inf_flip};
use crate::NEAR_INF_THRESHOLD;
use attn_tensor::rng::TensorRng;
use attn_tensor::{Batch3, Matrix};
use std::fmt;

/// The three extreme-error classes studied by the paper, with INF split by
/// sign so campaigns can reproduce the `∞*` (mixed-sign) patterns of
/// Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `+∞` written into the victim element.
    Inf,
    /// `-∞` written into the victim element.
    NegInf,
    /// Quiet NaN written into the victim element.
    NaN,
    /// Exponent-MSB bit flip producing a huge-but-finite magnitude.
    NearInf,
}

impl FaultKind {
    /// The three canonical kinds of the paper (positive INF representative).
    pub const STUDY_SET: [FaultKind; 3] = [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf];

    /// Produce the faulty value from the victim's original value.
    ///
    /// For `NearInf` the bit-flip only yields an extreme value when the
    /// original magnitude is below 2; otherwise we synthesise a near-INF of
    /// the same sign (the paper's campaigns resample until the flip lands in
    /// an extreme-producing element; this is the deterministic equivalent).
    pub fn apply(self, original: f32) -> f32 {
        match self {
            FaultKind::Inf => f32::INFINITY,
            FaultKind::NegInf => f32::NEG_INFINITY,
            FaultKind::NaN => f32::NAN,
            FaultKind::NearInf => {
                let flipped = near_inf_flip(original);
                if is_near_inf(flipped, NEAR_INF_THRESHOLD) {
                    flipped
                } else {
                    // |original| >= 2 or zero: bit-flip shrinks instead of
                    // exploding. Substitute a representative near-INF value.
                    1.0e31f32.copysign(if attn_tensor::float::exactly_zero(original) {
                        1.0
                    } else {
                        original
                    })
                }
            }
        }
    }

    /// Short label used in report tables (matches the paper's glyphs).
    pub fn glyph(self) -> &'static str {
        match self {
            FaultKind::Inf => "INF",
            FaultKind::NegInf => "-INF",
            FaultKind::NaN => "NaN",
            FaultKind::NearInf => "nINF",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.glyph())
    }
}

/// Everything needed to reproduce or undo a single injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionRecord {
    /// Batch slot (0 for plain matrices).
    pub slot: usize,
    /// Victim row within the matrix.
    pub row: usize,
    /// Victim column within the matrix.
    pub col: usize,
    /// Value before injection.
    pub original: f32,
    /// Value after injection.
    pub injected: f32,
    /// Fault class injected.
    pub kind: FaultKind,
}

/// Deterministic fault injector.
///
/// Holds its own RNG stream so campaign trials stay independent of model
/// RNG consumption.
pub struct FaultInjector {
    rng: TensorRng,
}

impl FaultInjector {
    /// Create an injector with its own seeded stream.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: TensorRng::seed_from(seed),
        }
    }

    /// Inject `kind` at a uniformly random element of `m`.
    pub fn inject_random(&mut self, m: &mut Matrix, kind: FaultKind) -> InjectionRecord {
        let row = self.rng.index(m.rows());
        let col = self.rng.index(m.cols());
        self.inject_at(m, kind, row, col)
    }

    /// Inject `kind` at a specific `(row, col)`.
    pub fn inject_at(
        &mut self,
        m: &mut Matrix,
        kind: FaultKind,
        row: usize,
        col: usize,
    ) -> InjectionRecord {
        let original = m[(row, col)];
        let injected = kind.apply(original);
        m[(row, col)] = injected;
        InjectionRecord {
            slot: 0,
            row,
            col,
            original,
            injected,
            kind,
        }
    }

    /// Inject `kind` at a uniformly random element of a random slot of `b`.
    pub fn inject_random_batch(&mut self, b: &mut Batch3, kind: FaultKind) -> InjectionRecord {
        let slot = self.rng.index(b.n());
        let row = self.rng.index(b.rows());
        let col = self.rng.index(b.cols());
        self.inject_batch_at(b, kind, slot, row, col)
    }

    /// Inject `kind` at a specific `(slot, row, col)` of a batch.
    pub fn inject_batch_at(
        &mut self,
        b: &mut Batch3,
        kind: FaultKind,
        slot: usize,
        row: usize,
        col: usize,
    ) -> InjectionRecord {
        let mut view = b.slot_mut(slot);
        let original = view.at(row, col);
        let injected = kind.apply(original);
        view.set(row, col, injected);
        InjectionRecord {
            slot,
            row,
            col,
            original,
            injected,
            kind,
        }
    }

    /// Pick a random ±INF with equal probability (for `∞*` campaigns).
    pub fn random_signed_inf(&mut self) -> FaultKind {
        if self.rng.bernoulli(0.5) {
            FaultKind::Inf
        } else {
            FaultKind::NegInf
        }
    }

    /// Access the internal RNG (for trial forking).
    pub fn rng_mut(&mut self) -> &mut TensorRng {
        &mut self.rng
    }
}

/// Undo an injection (restores the recorded original value).
pub fn revert(m: &mut Matrix, rec: &InjectionRecord) {
    m[(rec.row, rec.col)] = rec.original;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_produces_expected_class() {
        assert_eq!(FaultKind::Inf.apply(0.3), f32::INFINITY);
        assert_eq!(FaultKind::NegInf.apply(0.3), f32::NEG_INFINITY);
        assert!(FaultKind::NaN.apply(0.3).is_nan());
        let n = FaultKind::NearInf.apply(0.3);
        assert!(n.is_finite() && n.abs() > NEAR_INF_THRESHOLD);
    }

    #[test]
    fn near_inf_fallback_for_large_and_zero_originals() {
        for &x in &[5.0f32, -8.0, 0.0, 100.0] {
            let n = FaultKind::NearInf.apply(x);
            assert!(n.is_finite() && n.abs() > NEAR_INF_THRESHOLD, "x={x}");
        }
        // Sign preserved for nonzero.
        assert!(FaultKind::NearInf.apply(-5.0) < 0.0);
    }

    #[test]
    fn inject_random_is_reproducible() {
        let base = Matrix::full(8, 8, 0.5);
        let mut m1 = base.clone();
        let mut m2 = base.clone();
        let r1 = FaultInjector::new(99).inject_random(&mut m1, FaultKind::Inf);
        let r2 = FaultInjector::new(99).inject_random(&mut m2, FaultKind::Inf);
        assert_eq!(r1, r2);
        assert_eq!(m1.data(), m2.data());
    }

    #[test]
    fn inject_and_revert_roundtrip() {
        let mut m = Matrix::full(4, 4, 1.25);
        let before = m.clone();
        let mut inj = FaultInjector::new(7);
        let rec = inj.inject_random(&mut m, FaultKind::NaN);
        assert!(!m.all_finite());
        revert(&mut m, &rec);
        assert_eq!(m.data(), before.data());
    }

    #[test]
    fn batch_injection_hits_exactly_one_slot() {
        let mut b = Batch3::zeros(4, 3, 3);
        let mut inj = FaultInjector::new(3);
        let rec = inj.inject_random_batch(&mut b, FaultKind::Inf);
        let mut dirty = 0;
        for i in 0..4 {
            if !b.slot_matrix(i).all_finite() {
                dirty += 1;
                assert_eq!(i, rec.slot);
            }
        }
        assert_eq!(dirty, 1);
    }

    #[test]
    fn random_signed_inf_mixes_signs() {
        let mut inj = FaultInjector::new(1);
        let kinds: Vec<FaultKind> = (0..64).map(|_| inj.random_signed_inf()).collect();
        assert!(kinds.contains(&FaultKind::Inf));
        assert!(kinds.contains(&FaultKind::NegInf));
    }

    #[test]
    fn display_glyphs() {
        assert_eq!(FaultKind::Inf.to_string(), "INF");
        assert_eq!(FaultKind::NaN.to_string(), "NaN");
        assert_eq!(FaultKind::NearInf.to_string(), "nINF");
    }
}
