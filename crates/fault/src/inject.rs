//! Campaign-facing fault injector.
//!
//! Reproduces the injection methodology of §3 and §5.1: one fault per trial,
//! written into the *output* matrix of a GEMM (a 0D origin) at a uniformly
//! random position, with the value determined by the fault class.

use crate::bitflip::{flip_bit, is_near_inf, near_inf_flip};
use crate::NEAR_INF_THRESHOLD;
use attn_tensor::rng::TensorRng;
use attn_tensor::{Batch3, Matrix};
use std::fmt;

/// Mantissa bit a [`FaultKind::SubThreshold`] injection flips. Bit 10 of
/// the 23-bit mantissa changes the value by a relative `2^-13 ≈ 1.2e-4`,
/// below the guards' `5e-4` detection tolerance and far below any
/// magnitude threshold — yet it still changes the bit pattern, so exact
/// (bitwise/digest) guards see it.
pub const SUB_THRESHOLD_BIT: u32 = 10;

/// The extreme-error classes studied by the paper (with INF split by sign
/// so campaigns can reproduce the `∞*` mixed-sign patterns of Table 2),
/// plus the below-threshold and multi-cell classes the guarded-op
/// campaign stresses the two-tier screens with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `+∞` written into the victim element.
    Inf,
    /// `-∞` written into the victim element.
    NegInf,
    /// Quiet NaN written into the victim element.
    NaN,
    /// Exponent-MSB bit flip producing a huge-but-finite magnitude.
    NearInf,
    /// Mantissa flip ([`SUB_THRESHOLD_BIT`]): a perturbation far below
    /// every magnitude threshold — invisible to extreme-value detectors,
    /// caught only by exact (bitwise/digest) guards.
    SubThreshold,
    /// The whole victim row repeats the struck element's value (a stuck
    /// line driver replaying one word). Region fault: use
    /// [`FaultInjector::inject_region_at`].
    StuckRow,
    /// `len` consecutive cells of the victim row take exponent-MSB flips
    /// (a burst along a cache line). Region fault.
    Burst {
        /// Cells corrupted, starting at the victim column.
        len: usize,
    },
}

impl FaultKind {
    /// The three canonical kinds of the paper (positive INF representative).
    pub const STUDY_SET: [FaultKind; 3] = [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf];

    /// The four extreme classes the guarded ops must detect and correct
    /// at 100% (the `BENCH_faults` floor).
    pub const EXTREME_SET: [FaultKind; 4] = [
        FaultKind::Inf,
        FaultKind::NegInf,
        FaultKind::NaN,
        FaultKind::NearInf,
    ];

    /// Does this kind corrupt exactly one cell? Single-cell kinds work
    /// through [`FaultInjector::inject_at`]; region kinds need
    /// [`FaultInjector::inject_region_at`].
    pub fn is_single_cell(self) -> bool {
        !matches!(self, FaultKind::StuckRow | FaultKind::Burst { .. })
    }

    /// Produce the faulty value from the victim's original value.
    ///
    /// For `NearInf` the bit-flip only yields an extreme value when the
    /// original magnitude is below 2; otherwise we synthesise a near-INF of
    /// the same sign (the paper's campaigns resample until the flip lands in
    /// an extreme-producing element; this is the deterministic equivalent).
    ///
    /// Region kinds degrade to their per-cell effect here (`StuckRow` is
    /// the identity on the struck element itself; `Burst` is the exponent
    /// flip) — the full region shape comes from
    /// [`FaultInjector::inject_region_at`].
    pub fn apply(self, original: f32) -> f32 {
        match self {
            FaultKind::Inf => f32::INFINITY,
            FaultKind::NegInf => f32::NEG_INFINITY,
            FaultKind::NaN => f32::NAN,
            FaultKind::NearInf => {
                let flipped = near_inf_flip(original);
                if is_near_inf(flipped, NEAR_INF_THRESHOLD) {
                    flipped
                } else {
                    // |original| >= 2 or zero: bit-flip shrinks instead of
                    // exploding. Substitute a representative near-INF value.
                    1.0e31f32.copysign(if attn_tensor::float::exactly_zero(original) {
                        1.0
                    } else {
                        original
                    })
                }
            }
            FaultKind::SubThreshold => flip_bit(original, SUB_THRESHOLD_BIT),
            FaultKind::StuckRow => original,
            FaultKind::Burst { .. } => near_inf_flip(original),
        }
    }

    /// Stable small integer for seed derivation and table ordering.
    /// (`as usize` casts stopped working once `Burst` gained a field.)
    /// `Burst` folds its length in above the variant space so different
    /// burst widths get distinct seeds.
    pub fn tag(self) -> u64 {
        match self {
            FaultKind::Inf => 0,
            FaultKind::NegInf => 1,
            FaultKind::NaN => 2,
            FaultKind::NearInf => 3,
            FaultKind::SubThreshold => 4,
            FaultKind::StuckRow => 5,
            FaultKind::Burst { len } => 6 + (len as u64) * 7,
        }
    }

    /// Short label used in report tables (matches the paper's glyphs
    /// where the paper has one).
    pub fn glyph(self) -> &'static str {
        match self {
            FaultKind::Inf => "INF",
            FaultKind::NegInf => "-INF",
            FaultKind::NaN => "NaN",
            FaultKind::NearInf => "nINF",
            FaultKind::SubThreshold => "sub",
            FaultKind::StuckRow => "stuck",
            FaultKind::Burst { .. } => "burst",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.glyph())
    }
}

/// Everything needed to reproduce or undo a single injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionRecord {
    /// Batch slot (0 for plain matrices).
    pub slot: usize,
    /// Victim row within the matrix.
    pub row: usize,
    /// Victim column within the matrix.
    pub col: usize,
    /// Value before injection.
    pub original: f32,
    /// Value after injection.
    pub injected: f32,
    /// Fault class injected.
    pub kind: FaultKind,
}

/// Deterministic fault injector.
///
/// Holds its own RNG stream so campaign trials stay independent of model
/// RNG consumption.
pub struct FaultInjector {
    rng: TensorRng,
}

impl FaultInjector {
    /// Create an injector with its own seeded stream.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: TensorRng::seed_from(seed),
        }
    }

    /// Inject `kind` at a uniformly random element of `m`.
    pub fn inject_random(&mut self, m: &mut Matrix, kind: FaultKind) -> InjectionRecord {
        let row = self.rng.index(m.rows());
        let col = self.rng.index(m.cols());
        self.inject_at(m, kind, row, col)
    }

    /// Inject `kind` at a specific `(row, col)`.
    pub fn inject_at(
        &mut self,
        m: &mut Matrix,
        kind: FaultKind,
        row: usize,
        col: usize,
    ) -> InjectionRecord {
        let original = m[(row, col)];
        let injected = kind.apply(original);
        m[(row, col)] = injected;
        InjectionRecord {
            slot: 0,
            row,
            col,
            original,
            injected,
            kind,
        }
    }

    /// Inject `kind` at a uniformly random element of a random slot of `b`.
    pub fn inject_random_batch(&mut self, b: &mut Batch3, kind: FaultKind) -> InjectionRecord {
        let slot = self.rng.index(b.n());
        let row = self.rng.index(b.rows());
        let col = self.rng.index(b.cols());
        self.inject_batch_at(b, kind, slot, row, col)
    }

    /// Inject `kind` at a specific `(slot, row, col)` of a batch.
    pub fn inject_batch_at(
        &mut self,
        b: &mut Batch3,
        kind: FaultKind,
        slot: usize,
        row: usize,
        col: usize,
    ) -> InjectionRecord {
        let mut view = b.slot_mut(slot);
        let original = view.at(row, col);
        let injected = kind.apply(original);
        view.set(row, col, injected);
        InjectionRecord {
            slot,
            row,
            col,
            original,
            injected,
            kind,
        }
    }

    /// Inject a region fault (`StuckRow`, `Burst`) at a specific anchor
    /// cell; single-cell kinds degrade to a one-cell region. Returns the
    /// record needed to undo the whole region.
    pub fn inject_region_at(
        &mut self,
        m: &mut Matrix,
        kind: FaultKind,
        row: usize,
        col: usize,
    ) -> RegionRecord {
        let cols = m.cols();
        let (start, len) = match kind {
            FaultKind::StuckRow => (0, cols),
            FaultKind::Burst { len } => (col, len.max(1).min(cols - col)),
            _ => (col, 1),
        };
        let originals: Vec<f32> = m.row(row)[start..start + len].to_vec();
        match kind {
            FaultKind::StuckRow => {
                let stuck = m[(row, col)];
                m.row_mut(row).fill(stuck);
            }
            FaultKind::Burst { .. } => {
                for v in &mut m.row_mut(row)[start..start + len] {
                    *v = near_inf_flip(*v);
                }
            }
            single => {
                m[(row, col)] = single.apply(originals[0]);
            }
        }
        RegionRecord {
            row,
            start,
            originals,
            kind,
        }
    }

    /// Inject a region fault at a uniformly random anchor.
    pub fn inject_region_random(&mut self, m: &mut Matrix, kind: FaultKind) -> RegionRecord {
        let row = self.rng.index(m.rows());
        let col = self.rng.index(m.cols());
        self.inject_region_at(m, kind, row, col)
    }

    /// Pick a random ±INF with equal probability (for `∞*` campaigns).
    pub fn random_signed_inf(&mut self) -> FaultKind {
        if self.rng.bernoulli(0.5) {
            FaultKind::Inf
        } else {
            FaultKind::NegInf
        }
    }

    /// Access the internal RNG (for trial forking).
    pub fn rng_mut(&mut self) -> &mut TensorRng {
        &mut self.rng
    }
}

/// Everything needed to undo a region injection.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRecord {
    /// Victim row.
    pub row: usize,
    /// First corrupted column.
    pub start: usize,
    /// Original values of the corrupted span, in column order.
    pub originals: Vec<f32>,
    /// Fault class injected.
    pub kind: FaultKind,
}

/// Undo an injection (restores the recorded original value).
pub fn revert(m: &mut Matrix, rec: &InjectionRecord) {
    m[(rec.row, rec.col)] = rec.original;
}

/// Undo a batch injection (restores the recorded original value in the
/// recorded slot).
pub fn revert_batch(b: &mut Batch3, rec: &InjectionRecord) {
    b.slot_mut(rec.slot).set(rec.row, rec.col, rec.original);
}

/// Undo a region injection (restores the whole recorded span).
pub fn revert_region(m: &mut Matrix, rec: &RegionRecord) {
    m.row_mut(rec.row)[rec.start..rec.start + rec.originals.len()].copy_from_slice(&rec.originals);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_produces_expected_class() {
        assert_eq!(FaultKind::Inf.apply(0.3), f32::INFINITY);
        assert_eq!(FaultKind::NegInf.apply(0.3), f32::NEG_INFINITY);
        assert!(FaultKind::NaN.apply(0.3).is_nan());
        let n = FaultKind::NearInf.apply(0.3);
        assert!(n.is_finite() && n.abs() > NEAR_INF_THRESHOLD);
    }

    #[test]
    fn near_inf_fallback_for_large_and_zero_originals() {
        for &x in &[5.0f32, -8.0, 0.0, 100.0] {
            let n = FaultKind::NearInf.apply(x);
            assert!(n.is_finite() && n.abs() > NEAR_INF_THRESHOLD, "x={x}");
        }
        // Sign preserved for nonzero.
        assert!(FaultKind::NearInf.apply(-5.0) < 0.0);
    }

    #[test]
    fn inject_random_is_reproducible() {
        let base = Matrix::full(8, 8, 0.5);
        let mut m1 = base.clone();
        let mut m2 = base.clone();
        let r1 = FaultInjector::new(99).inject_random(&mut m1, FaultKind::Inf);
        let r2 = FaultInjector::new(99).inject_random(&mut m2, FaultKind::Inf);
        assert_eq!(r1, r2);
        assert_eq!(m1.data(), m2.data());
    }

    #[test]
    fn inject_and_revert_roundtrip() {
        let mut m = Matrix::full(4, 4, 1.25);
        let before = m.clone();
        let mut inj = FaultInjector::new(7);
        let rec = inj.inject_random(&mut m, FaultKind::NaN);
        assert!(!m.all_finite());
        revert(&mut m, &rec);
        assert_eq!(m.data(), before.data());
    }

    #[test]
    fn batch_injection_hits_exactly_one_slot() {
        let mut b = Batch3::zeros(4, 3, 3);
        let mut inj = FaultInjector::new(3);
        let rec = inj.inject_random_batch(&mut b, FaultKind::Inf);
        let mut dirty = 0;
        for i in 0..4 {
            if !b.slot_matrix(i).all_finite() {
                dirty += 1;
                assert_eq!(i, rec.slot);
            }
        }
        assert_eq!(dirty, 1);
    }

    #[test]
    fn random_signed_inf_mixes_signs() {
        let mut inj = FaultInjector::new(1);
        let kinds: Vec<FaultKind> = (0..64).map(|_| inj.random_signed_inf()).collect();
        assert!(kinds.contains(&FaultKind::Inf));
        assert!(kinds.contains(&FaultKind::NegInf));
    }

    #[test]
    fn display_glyphs() {
        assert_eq!(FaultKind::Inf.to_string(), "INF");
        assert_eq!(FaultKind::NaN.to_string(), "NaN");
        assert_eq!(FaultKind::NearInf.to_string(), "nINF");
        assert_eq!(FaultKind::SubThreshold.to_string(), "sub");
        assert_eq!(FaultKind::StuckRow.to_string(), "stuck");
        assert_eq!(FaultKind::Burst { len: 3 }.to_string(), "burst");
    }

    #[test]
    fn sub_threshold_changes_bits_but_stays_small() {
        let x = 0.73f32;
        let y = FaultKind::SubThreshold.apply(x);
        assert_ne!(x.to_bits(), y.to_bits());
        // Relative perturbation must sit below the 5e-4 guard tolerance.
        assert!(
            ((x - y) / x).abs() < 5.0e-4,
            "sub-threshold must stay sub-threshold"
        );
        // Involutive: flipping the same bit twice restores the value.
        assert_eq!(FaultKind::SubThreshold.apply(y).to_bits(), x.to_bits());
    }

    #[test]
    fn single_cell_partition() {
        assert!(FaultKind::Inf.is_single_cell());
        assert!(FaultKind::SubThreshold.is_single_cell());
        assert!(!FaultKind::StuckRow.is_single_cell());
        assert!(!FaultKind::Burst { len: 4 }.is_single_cell());
    }

    #[test]
    fn stuck_row_repeats_anchor_and_reverts() {
        let mut m = Matrix::from_vec(2, 4, (0..8).map(|i| i as f32).collect());
        let before = m.clone();
        let mut inj = FaultInjector::new(5);
        let rec = inj.inject_region_at(&mut m, FaultKind::StuckRow, 1, 2);
        // Row 1 stuck at its column-2 value; row 0 untouched.
        assert!(m.row(1).iter().all(|&v| v == 6.0));
        assert_eq!(m.row(0), before.row(0));
        revert_region(&mut m, &rec);
        assert_eq!(m.data(), before.data());
    }

    #[test]
    fn burst_corrupts_exactly_len_cells_and_reverts() {
        let mut m = Matrix::full(3, 8, 0.5);
        let before = m.clone();
        let mut inj = FaultInjector::new(6);
        let rec = inj.inject_region_at(&mut m, FaultKind::Burst { len: 3 }, 2, 4);
        let changed = m
            .row(2)
            .iter()
            .zip(before.row(2))
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        assert_eq!(changed, 3);
        assert!(m.row(2)[4].abs() > NEAR_INF_THRESHOLD);
        revert_region(&mut m, &rec);
        assert_eq!(m.data(), before.data());
    }

    #[test]
    fn burst_clamps_to_row_end() {
        let mut m = Matrix::full(1, 4, 0.5);
        let mut inj = FaultInjector::new(6);
        let rec = inj.inject_region_at(&mut m, FaultKind::Burst { len: 10 }, 0, 2);
        assert_eq!(rec.originals.len(), 2);
    }

    #[test]
    fn batch_injection_reverts() {
        let mut b = Batch3::zeros(4, 3, 3);
        let mut inj = FaultInjector::new(9);
        let rec = inj.inject_random_batch(&mut b, FaultKind::NaN);
        assert!(!b.slot_matrix(rec.slot).all_finite());
        revert_batch(&mut b, &rec);
        for i in 0..4 {
            assert!(b.slot_matrix(i).all_finite());
        }
    }
}
