//! Next-token selection from a logits row.

use attn_tensor::guard::softmax_rows_checked;
use attn_tensor::rng::TensorRng;
use attn_tensor::{Matrix, OpGuard};

/// Sampling strategy for [`sample_token`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Deterministic argmax (first maximum wins; NaN never wins).
    Greedy,
    /// Softmax at the given temperature, sampled with the session RNG.
    /// Temperatures `<= 0` degrade to greedy.
    Temperature(f32),
}

/// Pick the next token id from a `1 × vocab` logits row.
///
/// Deterministic given the logits and the RNG state: batched engines give
/// each session its own forked RNG, so scheduling cannot perturb samples.
///
/// # Panics
/// Panics on an empty logits row.
pub fn sample_token(logits: &Matrix, sampling: Sampling, rng: &mut TensorRng) -> usize {
    sample_token_checked(logits, sampling, rng, &OpGuard::off())
}

/// [`sample_token`] with the temperature softmax guarded: the
/// probability row is screened (entries in `[0, 1]`, sum ~1) and healed
/// by exact recompute from the scaled logits on violation, so a struck
/// distribution cannot silently skew token selection.
///
/// # Panics
/// Panics on an empty logits row.
pub fn sample_token_checked(
    logits: &Matrix,
    sampling: Sampling,
    rng: &mut TensorRng,
    g: &OpGuard,
) -> usize {
    assert_eq!(logits.rows(), 1, "sample_token: one logits row");
    assert!(logits.cols() > 0, "sample_token: empty logits");
    let row = logits.row(0); // attn-lint: allow-path(panic-reach) — row 0 of the 1×V matrix asserted above
    match sampling {
        Sampling::Greedy => argmax(row),
        Sampling::Temperature(t) if t > 0.0 => {
            let scaled = logits.map(|v| v / t);
            let p = softmax_rows_checked(&scaled, g); // attn-lint: allow-path(panic-reach) — softmax over the shape-asserted 1×V row; row iteration stays in bounds by construction
            let prow = p.row(0); // attn-lint: allow-path(panic-reach) — softmax preserves the asserted 1×V shape

            // A poisoned row (NaN logits, the non-trainable-state signal)
            // has no distribution to sample; fall back to argmax, which
            // ignores NaNs.
            if prow.iter().any(|v| !v.is_finite()) {
                return argmax(row);
            }
            let u = rng.uniform(0.0, 1.0);
            let mut acc = 0.0f32;
            for (i, &pi) in prow.iter().enumerate() {
                acc += pi;
                if u < acc {
                    return i;
                }
            }
            // Round-off tail: the probabilities can sum to slightly less
            // than 1, so u may exceed the accumulated mass. Falling off the
            // end must not emit a zero-probability token (e.g. a masked
            // -INF logit at the end of the vocab).
            last_positive(prow)
        }
        Sampling::Temperature(_) => argmax(row),
    }
}

/// Last index with strictly positive probability — where round-off tail
/// mass actually belongs. An all-zero row (degenerate input) maps to 0.
fn last_positive(row: &[f32]) -> usize {
    row.iter().rposition(|&p| p > 0.0).unwrap_or(0)
}

/// First index of the row maximum; NaNs never win — including on an
/// all-NaN row, which has no maximum and returns 0 by convention (the
/// caller sees a poisoned distribution either way, and index 0 keeps the
/// result independent of the vocab size).
fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = row.first().copied().unwrap_or(f32::NAN);
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > best_v || (best_v.is_nan() && !v.is_nan()) {
            best = i;
            best_v = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_picks_first_maximum() {
        let mut rng = TensorRng::seed_from(1);
        let logits = Matrix::from_vec(1, 4, vec![0.1, 2.0, 2.0, -1.0]);
        assert_eq!(sample_token(&logits, Sampling::Greedy, &mut rng), 1);
    }

    #[test]
    fn greedy_ignores_nan() {
        let mut rng = TensorRng::seed_from(2);
        let logits = Matrix::from_vec(1, 3, vec![f32::NAN, 0.5, 0.1]);
        assert_eq!(sample_token(&logits, Sampling::Greedy, &mut rng), 1);
    }

    #[test]
    fn temperature_sampling_is_deterministic_given_rng_state() {
        let logits = Matrix::from_vec(1, 8, (0..8).map(|i| (i as f32).sin()).collect());
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(
                sample_token(&logits, Sampling::Temperature(0.8), &mut a),
                sample_token(&logits, Sampling::Temperature(0.8), &mut b),
            );
        }
    }

    #[test]
    fn low_temperature_concentrates_on_argmax() {
        let mut rng = TensorRng::seed_from(3);
        let logits = Matrix::from_vec(1, 4, vec![0.0, 5.0, 1.0, -2.0]);
        for _ in 0..64 {
            assert_eq!(
                sample_token(&logits, Sampling::Temperature(0.05), &mut rng),
                1
            );
        }
    }

    #[test]
    fn zero_temperature_degrades_to_greedy() {
        let mut rng = TensorRng::seed_from(4);
        let logits = Matrix::from_vec(1, 3, vec![1.0, 3.0, 2.0]);
        assert_eq!(
            sample_token(&logits, Sampling::Temperature(0.0), &mut rng),
            1
        );
    }

    #[test]
    fn greedy_all_nan_row_returns_index_zero() {
        // Regression: the old `row[best].is_nan()` arm advanced `best` to
        // every subsequent NaN, so an all-NaN row returned the LAST index.
        let mut rng = TensorRng::seed_from(6);
        let logits = Matrix::from_vec(1, 5, vec![f32::NAN; 5]);
        assert_eq!(sample_token(&logits, Sampling::Greedy, &mut rng), 0);
    }

    #[test]
    fn argmax_recovers_after_leading_nans() {
        assert_eq!(argmax(&[f32::NAN, f32::NAN, 0.25, 0.5]), 3);
        assert_eq!(argmax(&[f32::NAN, -1.0, f32::NAN]), 1);
    }

    #[test]
    fn round_off_tail_walks_back_to_last_positive_probability() {
        // Regression: the old tail returned `row.len() - 1` outright,
        // which can be a zero-probability (masked) token.
        assert_eq!(last_positive(&[0.7, 0.3, 0.0]), 1);
        assert_eq!(last_positive(&[0.2, 0.0, 0.8, 0.0, 0.0]), 2);
        assert_eq!(last_positive(&[0.0, 0.0]), 0);
    }

    #[test]
    fn masked_trailing_token_is_never_sampled() {
        use attn_tensor::ops::MASK_NEG;
        // The last token is masked to -INF-ish: its probability is exactly
        // zero, so no RNG draw — including round-off tails — may emit it.
        let logits = Matrix::from_vec(1, 4, vec![0.0, 0.0, 0.0, MASK_NEG]);
        for seed in 0..512 {
            let mut rng = TensorRng::seed_from(seed);
            for _ in 0..8 {
                let t = sample_token(&logits, Sampling::Temperature(1.0), &mut rng);
                assert_ne!(t, 3, "seed {seed}: sampled a zero-probability token");
            }
        }
    }

    #[test]
    fn high_temperature_explores() {
        let mut rng = TensorRng::seed_from(5);
        let logits = Matrix::from_vec(1, 4, vec![0.0, 1.0, 0.5, 0.2]);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[sample_token(&logits, Sampling::Temperature(5.0), &mut rng)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "high temperature must reach every token"
        );
    }
}
