//! The decoding engine: session lifecycle, batching, protection pacing.

use crate::sampling::{sample_token_checked, Sampling};
use crate::session::DecodeSession;
use attn_model::model::{InjectionSpec, TransformerModel};
use attn_tensor::rng::TensorRng;
use attnchecker::config::ProtectionConfig;
use attnchecker::policy::ProtectionPolicy;
use attnchecker::report::AbftReport;
use attnchecker::section::GuardedSection;
use rayon::prelude::*;

/// ABFT-protected autoregressive decoding engine.
///
/// Owns the model and the [`ProtectionPolicy`] whose frequency gates pace
/// section checks across decode steps (one toggle set per engine step,
/// shared by every session in a batch — the serving image of the trainer's
/// per-step gating). Sessions are isolated: each carries its own KV
/// caches, sampling RNG, and report, so a batch step fans them over a
/// sized rayon pool and reduces in fixed order — generated tokens, logits,
/// and reports are bit-identical at any worker count.
///
/// Prefills (session admission) draw their toggles from a **separate**
/// gate stream (`prefill_policy`): admitting a session between batch steps
/// must not consume a draw from the decode stream, or every live session's
/// toggle schedule would shift with admission timing.
pub struct DecodeEngine {
    model: TransformerModel,
    policy: ProtectionPolicy,
    prefill_policy: ProtectionPolicy,
    parallelism: usize,
    pool: Option<rayon::ThreadPool>,
    next_id: u64,
}

/// What one mixed batch step does to a session: generate a fresh token, or
/// feed a known one (chunked prefill under continuous batching).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOp {
    /// Sample from the armed logits, then decode the sampled token.
    Gen,
    /// Decode this known token without sampling; it is accounted as prompt
    /// (`prompt_len` advances), so `generated()` stays sample-only.
    Feed(usize),
}

impl DecodeEngine {
    /// Wrap a causal model for serving.
    ///
    /// # Panics
    /// Panics when the architecture cannot decode, or when
    /// `num_classes != vocab` — generation feeds sampled ids back as
    /// inputs, so the classifier head must span the vocabulary.
    pub fn new(model: TransformerModel) -> Self {
        assert!(
            model.supports_decode(),
            "DecodeEngine requires a causal architecture (GPT-2 / GPT-Neo)"
        );
        assert_eq!(
            model.config.num_classes, model.config.vocab,
            "DecodeEngine requires an LM-shaped head (num_classes == vocab)"
        );
        let protection = model.blocks[0].attn.protection;
        Self {
            model,
            policy: ProtectionPolicy::new(protection),
            prefill_policy: ProtectionPolicy::new(protection),
            parallelism: 1,
            pool: None,
            next_id: 0,
        }
    }

    /// The served model.
    pub fn model(&self) -> &TransformerModel {
        &self.model
    }

    /// Fan batch steps over `workers` threads (clamped to ≥ 1). Purely a
    /// throughput knob: per-session isolation plus fixed-order reduction
    /// keep every result bit-identical at any setting.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
        // A pool that fails to build (impossible with the vendored shim,
        // but the serving path may not bank on that) demotes the engine
        // to sequential stepping — bit-identical by the determinism
        // contract, just slower.
        self.pool = (self.parallelism > 1)
            .then(|| {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(self.parallelism)
                    .build()
                    .ok()
            })
            .flatten();
    }

    /// Worker threads batch steps fan out over.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Change the protection config on the model and the pacing policy
    /// together. Affects new sessions and future steps; an existing
    /// session keeps the cache layout (checksummed or not) it was opened
    /// with.
    pub fn set_protection(&mut self, protection: ProtectionConfig) {
        self.model.set_protection(protection);
        self.policy.sync_config(protection);
        self.prefill_policy.sync_config(protection);
    }

    /// Open a session: prefill `prompt` through the full protected forward
    /// (seeding the KV caches from its post-correction tape) and arm the
    /// next-token logits. `seed` initialises the session's private
    /// sampling RNG.
    ///
    /// Draws toggles from the prefill gate stream, never the decode
    /// stream: sessions admitted mid-serving leave every live session's
    /// toggle schedule bit-identical.
    ///
    /// # Panics
    /// Panics on an empty prompt or out-of-vocabulary ids.
    pub fn open_session(&mut self, prompt: &[usize], seed: u64) -> DecodeSession {
        let toggles = self.prefill_policy.next_toggles();
        let mut report = AbftReport::default();
        let mut state = self.model.new_decode_state();
        let logits = self.model.prefill(prompt, &mut state, toggles, &mut report); // attn-lint: allow-path(panic-reach) — model boundary: prefill's documented panics (empty/OOV prompt) are this fn's own contract, enforced before serving admits a trace
        let id = self.next_id;
        self.next_id += 1;
        DecodeSession {
            id,
            tokens: prompt.to_vec(),
            prompt_len: prompt.len(),
            report,
            state,
            logits,
            rng: TensorRng::seed_from(seed),
        }
    }

    /// Advance one session by one token: sample from the armed logits,
    /// decode the sampled token through the protected KV-cached step, and
    /// re-arm. Returns the sampled token.
    pub fn step(&mut self, session: &mut DecodeSession, sampling: Sampling) -> usize {
        self.step_injected(session, sampling, None)
    }

    /// [`Self::step`] with an optional fault injection into one decode-time
    /// GEMM — the serving image of `Trainer::train_step_injected`.
    pub fn step_injected(
        &mut self,
        session: &mut DecodeSession,
        sampling: Sampling,
        inject: Option<&InjectionSpec>,
    ) -> usize {
        let toggles = self.policy.next_toggles();
        let protection = self
            .model
            .blocks
            .first()
            .map(|b| b.attn.protection)
            .unwrap_or_else(ProtectionConfig::off);
        let op_guard = GuardedSection::guard_step(&protection);
        let token = sample_token_checked(&session.logits, sampling, &mut session.rng, &op_guard);
        session.report.absorb_op_guard(op_guard.take_stats());
        session.tokens.push(token);
        session.logits = self.model.decode_step(
            token,
            &mut session.state,
            toggles,
            inject,
            &mut session.report,
        );
        token
    }

    /// Advance every session by one token, fanned over the engine pool.
    /// One toggle set is drawn for the whole batch step; results are read
    /// back in input order, so the outcome is bit-identical to stepping
    /// the sessions sequentially. Returns the sampled token per session,
    /// in order.
    ///
    /// Sessions are stepped **in place** — they are never moved out of the
    /// caller's slice, so even if one session panics (e.g. its position
    /// table is exhausted; see [`Self::capacity_left`]) the others remain
    /// owned by the caller and can continue.
    pub fn step_batch(&mut self, sessions: &mut [DecodeSession], sampling: Sampling) -> Vec<usize> {
        let mut items: Vec<(&mut DecodeSession, StepOp)> =
            sessions.iter_mut().map(|s| (s, StepOp::Gen)).collect();
        self.step_batch_mixed(&mut items, sampling)
    }

    /// One iteration-level engine step over a mixed batch: each session
    /// either generates ([`StepOp::Gen`]) or is fed a known prompt token
    /// ([`StepOp::Feed`], chunked prefill). One toggle set is drawn for
    /// the whole step — prefill chunks and decode steps share the same
    /// protected engine step, the continuous-batching contract — and
    /// results are read back in input order, so the outcome is
    /// bit-identical to stepping the sessions sequentially at any worker
    /// count. Returns the token consumed per session, in order (for `Gen`
    /// the sample; for `Feed` the fed token).
    pub fn step_batch_mixed(
        &mut self,
        items: &mut [(&mut DecodeSession, StepOp)],
        sampling: Sampling,
    ) -> Vec<usize> {
        if items.is_empty() {
            return Vec::new();
        }
        let toggles = self.policy.next_toggles();
        let model = &self.model;
        let protection = model
            .blocks
            .first()
            .map(|b| b.attn.protection)
            .unwrap_or_else(ProtectionConfig::off);
        let run = |(s, op): &mut (&mut DecodeSession, StepOp)| -> usize {
            let token = match *op {
                StepOp::Gen => {
                    let op_guard = GuardedSection::guard_step(&protection);
                    let t = sample_token_checked(&s.logits, sampling, &mut s.rng, &op_guard);
                    s.report.absorb_op_guard(op_guard.take_stats());
                    t
                }
                StepOp::Feed(t) => {
                    s.prompt_len += 1;
                    t
                }
            };
            s.tokens.push(token);
            s.logits = model.decode_step(token, &mut s.state, toggles, None, &mut s.report); // attn-lint: allow-path(panic-reach) — model boundary: the protected decode step indexes within cache bounds by construction (decode parity + invariant suites pin it)
            token
        };
        // Each worker writes its token straight into its session's output
        // slot, so no post-step re-read of session state is needed and the
        // result order is the input order by construction.
        let mut out = vec![0usize; items.len()];
        match self.pool.as_ref().filter(|_| items.len() > 1) {
            Some(pool) => {
                let slots: Vec<(&mut (&mut DecodeSession, StepOp), &mut usize)> =
                    items.iter_mut().zip(out.iter_mut()).collect();
                pool.install(|| {
                    slots
                        .into_par_iter()
                        .for_each(|(item, slot)| *slot = run(item));
                });
            }
            None => {
                for (item, slot) in items.iter_mut().zip(out.iter_mut()) {
                    *slot = run(item);
                }
            }
        }
        out
    }

    /// Park a session's KV caches into verified cold storage
    /// ([`attnchecker::ColdKvCache`]): every block is checksum-verified on
    /// the way out, and [`Self::unpark_session`] verifies again on the way
    /// back in — the verify-on-move contract for eviction/compaction. A
    /// parked session cannot step until unparked.
    pub fn park_session(&self, session: &mut DecodeSession) {
        self.model
            .park_state(&mut session.state, &mut session.report); // attn-lint: allow-path(panic-reach) — model boundary: verify-on-move walks blocks the cache itself reports
    }

    /// Restore a parked session to live, decodable state; fault-free
    /// round trips are bit-identical. See [`Self::park_session`].
    pub fn unpark_session(&self, session: &mut DecodeSession) {
        self.model
            .unpark_state(&mut session.state, &mut session.report); // attn-lint: allow-path(panic-reach) — model boundary: restores exactly what park_state wrote
    }

    /// How many more tokens `session` can decode before the model's
    /// position table is exhausted (decoding past it panics). Callers
    /// batching sessions of unequal length can drain a session from the
    /// batch when this reaches 0. Saturating throughout: a position table
    /// smaller than the embedding's `pos_offset` (a mis-sliced
    /// checkpoint), or a session already past the table, reports 0 rather
    /// than wrapping.
    pub fn capacity_left(&self, session: &DecodeSession) -> usize {
        let table = self
            .model
            .embedding
            .pos
            .value
            .rows()
            .saturating_sub(self.model.embedding.pos_offset);
        table.saturating_sub(session.position())
    }

    /// Generate `n` tokens on one session; returns them in order.
    pub fn generate(
        &mut self,
        session: &mut DecodeSession,
        n: usize,
        sampling: Sampling,
    ) -> Vec<usize> {
        (0..n).map(|_| self.step(session, sampling)).collect()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // step index addresses parallel reference structures
mod tests {
    use super::*;
    use attn_fault::{run_campaign, CampaignStats, FaultKind};
    use attn_model::model::ModelConfig;
    use attn_tensor::Matrix;
    use attnchecker::attention::{AttnOp, SectionToggles};

    fn lm_model(protection: ProtectionConfig) -> TransformerModel {
        let mut rng = TensorRng::seed_from(17);
        let mut cfg = ModelConfig::gpt2();
        cfg.hidden = 32;
        cfg.heads = 2;
        cfg.layers = 2;
        cfg.vocab = 48;
        cfg.num_classes = 48; // LM-shaped head
        cfg.max_seq = 32;
        TransformerModel::new(cfg, protection, &mut rng)
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn greedy_generation_matches_full_forward_recompute() {
        // Engine-level parity: each armed logits row must equal the full
        // protected forward over the session's whole token history.
        let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        let prompt = [3usize, 11, 7, 29];
        let mut session = engine.open_session(&prompt, 1);
        for _ in 0..8 {
            let _ = engine.step(&mut session, Sampling::Greedy);
            let mut r = AbftReport::default();
            let (full, _) =
                engine
                    .model()
                    .forward_tape(&session.tokens, SectionToggles::none(), None, &mut r);
            assert_eq!(
                bits(session.logits()),
                bits(&full),
                "tokens={:?}",
                session.tokens
            );
        }
        assert_eq!(session.generated().len(), 8);
        assert!(session.report.is_quiet());
    }

    #[test]
    fn batched_decode_is_bit_identical_at_any_worker_count() {
        let prompts: [&[usize]; 4] = [&[1, 2, 3], &[40, 4], &[9, 9, 9, 9, 9], &[17]];
        let run = |workers: usize| {
            let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
            engine.set_parallelism(workers);
            let mut sessions: Vec<DecodeSession> = prompts
                .iter()
                .enumerate()
                .map(|(i, p)| engine.open_session(p, 100 + i as u64))
                .collect();
            let mut all_tokens = Vec::new();
            for _ in 0..6 {
                all_tokens.push(engine.step_batch(&mut sessions, Sampling::Temperature(0.9)));
            }
            let logits: Vec<Vec<u32>> = sessions.iter().map(|s| bits(s.logits())).collect();
            let reports: Vec<_> = sessions.iter().map(|s| s.report.clone()).collect();
            (all_tokens, logits, reports)
        };
        let base = run(1);
        for workers in [2, 4, 7] {
            assert_eq!(run(workers), base, "workers={workers} diverged");
        }
    }

    #[test]
    fn single_session_batch_bypasses_the_pool_and_matches_sequential() {
        // A one-item batch takes the sequential arm even when a pool is
        // live; it must be bit-identical to the same step at workers=1.
        let run = |workers: usize| {
            let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
            engine.set_parallelism(workers);
            let mut s = engine.open_session(&[5, 6, 7], 42);
            let toks: Vec<usize> = (0..6)
                .map(|_| engine.step_batch(std::slice::from_mut(&mut s), Sampling::Greedy)[0])
                .collect();
            (toks, bits(s.logits()))
        };
        assert_eq!(run(4), run(1));
    }

    #[test]
    fn zero_workers_clamps_to_sequential_stepping() {
        let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        engine.set_parallelism(0);
        assert_eq!(engine.parallelism(), 1);
        let mut sessions: Vec<DecodeSession> = (0..3)
            .map(|i| engine.open_session(&[i + 1, i + 2], i as u64))
            .collect();
        let toks = engine.step_batch(&mut sessions, Sampling::Greedy);
        assert_eq!(toks.len(), 3);
        for (s, &t) in sessions.iter().zip(&toks) {
            assert_eq!(*s.tokens.last().unwrap(), t);
        }
    }

    #[test]
    fn sessions_keep_their_order_and_ids_across_batched_steps() {
        let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        engine.set_parallelism(3);
        let mut sessions: Vec<DecodeSession> = (0..5)
            .map(|i| engine.open_session(&[i + 1], i as u64))
            .collect();
        let ids: Vec<u64> = sessions.iter().map(|s| s.id).collect();
        let toks = engine.step_batch(&mut sessions, Sampling::Greedy);
        assert_eq!(toks.len(), 5);
        assert_eq!(ids, sessions.iter().map(|s| s.id).collect::<Vec<_>>());
        for (s, &t) in sessions.iter().zip(&toks) {
            assert_eq!(*s.tokens.last().unwrap(), t);
        }
    }

    #[test]
    fn protected_and_unprotected_sessions_agree_when_fault_free() {
        let mut on = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        let mut off = DecodeEngine::new(lm_model(ProtectionConfig::off()));
        let prompt = [5usize, 23, 2];
        let mut sa = on.open_session(&prompt, 9);
        let mut sb = off.open_session(&prompt, 9);
        let ta = on.generate(&mut sa, 6, Sampling::Greedy);
        let tb = off.generate(&mut sb, 6, Sampling::Greedy);
        assert_eq!(ta, tb, "protection must not change fault-free decoding");
        assert_eq!(bits(sa.logits()), bits(sb.logits()));
    }

    #[test]
    fn injection_campaign_over_decode_steps_is_fully_corrected() {
        // The Table-4-style campaign, pointed at serving: random extreme
        // faults in random decode-time GEMMs, every one detected and
        // exactly corrected (logits match the fault-free run bit for bit).
        let model = lm_model(ProtectionConfig::full());
        let prompt = [7usize, 31, 13, 2];
        let steps = 5usize;

        // Fault-free reference logits per step.
        let reference: Vec<Vec<u32>> = {
            let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
            let mut s = engine.open_session(&prompt, 42);
            (0..steps)
                .map(|_| {
                    let _ = engine.step(&mut s, Sampling::Greedy);
                    bits(s.logits())
                })
                .collect()
        };

        const SITES: [AttnOp; 8] = [
            AttnOp::Q,
            AttnOp::K,
            AttnOp::V,
            AttnOp::AS,
            AttnOp::CL,
            AttnOp::O,
            AttnOp::Ffn1,
            AttnOp::Ffn2,
        ];
        const KINDS: [FaultKind; 4] = [
            FaultKind::Inf,
            FaultKind::NegInf,
            FaultKind::NaN,
            FaultKind::NearInf,
        ];
        let outcomes = run_campaign(2024, 48, |_, rng| {
            let spec = InjectionSpec {
                layer: rng.index(model.config.layers),
                op: SITES[rng.index(SITES.len())],
                head: rng.index(model.config.heads),
                row: rng.index(8),
                col: rng.index(64),
                kind: KINDS[rng.index(KINDS.len())],
            };
            let strike = rng.index(steps);
            let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
            let mut s = engine.open_session(&prompt, 42);
            let mut ok = true;
            for step in 0..steps {
                let inject = (step == strike).then_some(&spec);
                let _ = engine.step_injected(&mut s, Sampling::Greedy, inject);
                ok &= bits(s.logits()) == reference[step];
            }
            ok && s.report.unrecovered == 0 && s.report.correction_count() > 0
        });
        let stats = CampaignStats::from_outcomes(&outcomes);
        assert_eq!(
            stats.successes,
            stats.trials,
            "decode campaign not fully corrected: {}",
            stats.percent()
        );
    }

    #[test]
    fn unprotected_injection_poisons_generation() {
        let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::off()));
        let mut s = engine.open_session(&[1usize, 2, 3], 0);
        let spec = InjectionSpec {
            layer: 0,
            op: AttnOp::AS,
            head: 0,
            row: 0,
            col: 1,
            kind: FaultKind::NaN,
        };
        let _ = engine.step_injected(&mut s, Sampling::Greedy, Some(&spec));
        assert!(
            !s.logits().all_finite(),
            "unprotected NaN must reach the logits"
        );
    }

    #[test]
    fn mid_stream_admission_leaves_toggle_schedules_untouched() {
        // Regression: open_session used to draw its toggles from the same
        // gate stream as decode steps, so admitting a session mid-serving
        // shifted every live session's toggle schedule. With fractional
        // frequencies the shift shows up as different checked/skipped
        // section counts.
        let mut p = ProtectionConfig::full();
        p.f_as = 0.5;
        p.f_cl = 0.5;
        p.f_o = 0.5;
        p.f_ffn = 0.5;
        let run = |admit_mid: bool| {
            let mut engine = DecodeEngine::new(lm_model(p));
            let mut s1 = engine.open_session(&[3, 1, 4], 7);
            let mut admitted = None;
            for i in 0..6 {
                if admit_mid && i == 3 {
                    admitted = Some(engine.open_session(&[9, 9], 8));
                }
                let _ = engine.step(&mut s1, Sampling::Greedy);
            }
            drop(admitted);
            (
                s1.report.sections_checked,
                s1.report.sections_skipped,
                s1.tokens.clone(),
                bits(s1.logits()),
            )
        };
        assert_eq!(
            run(false),
            run(true),
            "admission must not consume decode-stream toggle draws"
        );
    }

    #[test]
    fn capacity_left_saturates_when_pos_offset_exceeds_table() {
        // Regression: `table rows - pos_offset` was an unchecked usize
        // subtraction, so a position table smaller than the offset (e.g. a
        // mis-sliced checkpoint) panicked in debug and wrapped to ~usize::MAX
        // capacity in release.
        let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        let session = engine.open_session(&[1, 2], 0);
        let mut sliced = lm_model(ProtectionConfig::full());
        sliced.embedding.pos_offset = sliced.embedding.pos.value.rows() + 7;
        let short = DecodeEngine::new(sliced);
        assert_eq!(short.capacity_left(&session), 0);
    }

    #[test]
    fn chunked_prefill_feed_matches_whole_prompt_prefill() {
        let prompt = [3usize, 11, 7, 29, 5, 2];
        let mut whole = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        let mut full = whole.open_session(&prompt, 5);
        let mut chunky = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        let mut fed = chunky.open_session(&prompt[..2], 5);
        for &t in &prompt[2..] {
            let mut items = [(&mut fed, StepOp::Feed(t))];
            let toks = chunky.step_batch_mixed(&mut items, Sampling::Greedy);
            assert_eq!(toks, [t]);
        }
        assert_eq!(fed.tokens, full.tokens);
        assert_eq!(fed.prompt_len, full.prompt_len);
        assert_eq!(fed.generated(), full.generated());
        assert_eq!(bits(fed.logits()), bits(full.logits()));
        // Generation continues bit-identically from either prefill path.
        let a = whole.generate(&mut full, 4, Sampling::Temperature(0.8));
        let b = chunky.generate(&mut fed, 4, Sampling::Temperature(0.8));
        assert_eq!(a, b);
    }

    #[test]
    fn parked_session_resumes_bit_identically() {
        let mut straight = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        let mut a = straight.open_session(&[4, 8, 15], 3);
        let ta = straight.generate(&mut a, 6, Sampling::Temperature(0.7));

        let mut engine = DecodeEngine::new(lm_model(ProtectionConfig::full()));
        let mut b = engine.open_session(&[4, 8, 15], 3);
        let mut tb = engine.generate(&mut b, 3, Sampling::Temperature(0.7));
        engine.park_session(&mut b);
        assert!(b.is_parked());
        engine.unpark_session(&mut b);
        assert!(!b.is_parked());
        tb.extend(engine.generate(&mut b, 3, Sampling::Temperature(0.7)));

        assert_eq!(ta, tb, "park/unpark must not perturb generation");
        assert_eq!(bits(a.logits()), bits(b.logits()));
        assert_eq!(b.report.detections, 0, "fault-free round trip is quiet");
    }

    #[test]
    #[should_panic]
    fn classifier_head_is_rejected() {
        // num_classes != vocab cannot feed sampled ids back as inputs.
        let mut rng = TensorRng::seed_from(1);
        let cfg = ModelConfig::gpt2(); // num_classes = 2
        let model = TransformerModel::new(cfg, ProtectionConfig::off(), &mut rng);
        let _ = DecodeEngine::new(model);
    }
}
