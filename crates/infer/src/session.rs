//! Per-stream decode state.

use attn_model::decode::DecodeState;
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use attnchecker::report::AbftReport;

/// One autoregressive decode stream: its token history, per-layer KV
/// caches, next-token logits, a private sampling RNG, and the ABFT report
/// accumulated over its lifetime.
///
/// Sessions are created by [`crate::DecodeEngine::open_session`] (which
/// prefills the prompt) and advanced by the engine's step methods. All
/// mutable state is session-local, so a batch of sessions can advance
/// concurrently with no sharing beyond the read-only model.
pub struct DecodeSession {
    /// Engine-assigned id (stable across batching).
    pub id: u64,
    /// Prompt + generated tokens, in order.
    pub tokens: Vec<usize>,
    /// How many of `tokens` were the prompt.
    pub prompt_len: usize,
    /// ABFT activity over this session's lifetime (prefill + every step).
    pub report: AbftReport,
    pub(crate) state: DecodeState,
    /// Next-token distribution (`1 × vocab` logits) — produced by the
    /// prefill or the most recent decode step.
    pub(crate) logits: Matrix,
    pub(crate) rng: TensorRng,
}

impl std::fmt::Debug for DecodeSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeSession")
            .field("id", &self.id)
            .field("prompt_len", &self.prompt_len)
            .field("tokens", &self.tokens.len())
            .field("position", &self.state.pos())
            .finish()
    }
}

impl DecodeSession {
    /// Tokens generated so far (excluding the prompt).
    pub fn generated(&self) -> &[usize] {
        // `prompt_len <= tokens.len()` by construction (the prompt seeds
        // `tokens`), so the miss arm is unreachable — but the serving
        // path must not carry a panic for an invariant it can degrade
        // gracefully on.
        self.tokens.get(self.prompt_len..).unwrap_or(&[])
    }

    /// The current next-token logits row.
    pub fn logits(&self) -> &Matrix {
        &self.logits
    }

    /// Tokens consumed by the model (prompt + generated).
    pub fn position(&self) -> usize {
        self.state.pos()
    }

    /// Model-side decode state (KV caches).
    pub fn state(&self) -> &DecodeState {
        &self.state
    }

    /// Whether the KV caches are parked in verified cold storage (see
    /// [`crate::DecodeEngine::park_session`]); a parked session cannot
    /// step until unparked.
    pub fn is_parked(&self) -> bool {
        self.state.is_parked()
    }
}
