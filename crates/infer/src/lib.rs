//! # attn-infer
//!
//! The serving-side counterpart of the training stack: an autoregressive
//! decoding engine whose attention steps keep riding ATTNChecker
//! checksums. Every decode-time GEMM — the Q/K/V projections, the
//! appended `q·Kᵀ` score row, `ap·V`, the output projection, and both FFN
//! GEMMs — runs inside the same guarded sections as training, with
//! exact-replay correction, over per-session KV caches whose checksum
//! borders are maintained incrementally (O(d) per appended token).
//!
//! * [`session`] — one decode stream: prompt, KV caches, its own sampling
//!   RNG and ABFT report.
//! * [`sampling`] — greedy and temperature sampling off `TensorRng`.
//! * [`engine`] — [`DecodeEngine`]: opens sessions (prefill), advances
//!   them singly or as a batch fanned over a sized rayon pool with
//!   fixed-order reduction (bit-identical results at any worker count),
//!   and owns the `ProtectionPolicy` that paces section checks across
//!   steps.

pub mod engine;
pub mod sampling;
pub mod session;

pub use engine::{DecodeEngine, StepOp};
pub use sampling::Sampling;
pub use session::DecodeSession;
