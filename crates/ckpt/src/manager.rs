//! On-disk checkpointing and restore-and-replay recovery.

use crate::snapshot::{restore_model, snapshot_model, SnapshotError};
use attn_model::data::Example;
use attn_model::trainer::{StepOutcome, Trainer};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Phase timings of one checkpoint/restore recovery (the Fig 11 cost
/// decomposition).
#[derive(Debug, Clone)]
pub struct RecoveryTiming {
    /// Serialise + write the checkpoint.
    pub save: Duration,
    /// Read + deserialise the checkpoint.
    pub load: Duration,
    /// Re-execute the lost training step.
    pub replay: Duration,
    /// Checkpoint size in bytes.
    pub bytes: usize,
}

impl RecoveryTiming {
    /// Total recovery wall time.
    pub fn total(&self) -> Duration {
        self.save + self.load + self.replay
    }
}

/// Writes and restores training-state checkpoints in a directory.
pub struct CheckpointManager {
    dir: PathBuf,
    counter: u64,
    last: Option<PathBuf>,
}

impl CheckpointManager {
    /// Create (and if needed, mkdir) a manager rooted at `dir`.
    ///
    /// Rescans `dir` for existing `ckpt-*.atnc` files so a restarted
    /// process *resumes* the checkpoint sequence — `counter` continues
    /// after the highest index on disk and `last_checkpoint` points at it —
    /// instead of silently overwriting `ckpt-000000.atnc`. Leftover
    /// `*.atnc.tmp` files (a crash mid-[`Self::save`]) are removed: the
    /// rename in `save` is the commit point, so a `.tmp` is by definition
    /// a torn write.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        let dir = dir.as_ref().to_path_buf();
        let mut newest: Option<(u64, PathBuf)> = None;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".atnc.tmp") {
                let _ = fs::remove_file(&path);
                continue;
            }
            if let Some(idx) = parse_checkpoint_index(name) {
                if newest.as_ref().is_none_or(|(best, _)| idx > *best) {
                    newest = Some((idx, path));
                }
            }
        }
        let (counter, last) = match newest {
            Some((idx, path)) => (idx + 1, Some(path)),
            None => (0, None),
        };
        Ok(Self { dir, counter, last })
    }

    /// Path of the most recent checkpoint, if any.
    pub fn last_checkpoint(&self) -> Option<&Path> {
        self.last.as_deref()
    }

    /// Serialise the trainer state to a new checkpoint file; returns
    /// `(path, bytes written, elapsed)`.
    ///
    /// The write is atomic: data goes to `ckpt-*.atnc.tmp`, is fsynced,
    /// and only then renamed to the final name (followed by a directory
    /// fsync so the rename itself is durable). A crash at any point leaves
    /// either the complete previous state or a leftover `.tmp` that
    /// [`Self::new`] discards on restart — never a torn `.atnc` a restore
    /// would load as corrupt model state.
    pub fn save(&mut self, trainer: &mut Trainer) -> io::Result<(PathBuf, usize, Duration)> {
        let t0 = Instant::now();
        let t = trainer.optim.t;
        let data = snapshot_model(&mut trainer.model, t);
        let path = self.dir.join(format!("ckpt-{:06}.atnc", self.counter));
        let tmp = self.dir.join(format!("ckpt-{:06}.atnc.tmp", self.counter));
        self.counter += 1;
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        // Persist the rename: fsync the directory entry (best-effort on
        // platforms where directories cannot be opened for sync).
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.last = Some(path.clone());
        Ok((path, data.len(), t0.elapsed()))
    }

    /// Restore trainer state from the most recent checkpoint; returns
    /// elapsed time.
    ///
    /// # Errors
    /// Fails when no checkpoint exists or the file is invalid.
    pub fn load_last(&self, trainer: &mut Trainer) -> io::Result<Duration> {
        let path = self
            .last
            .as_ref()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no checkpoint saved"))?;
        let t0 = Instant::now();
        let data = fs::read(path)?;
        let t = restore_model(&mut trainer.model, &data)
            .map_err(|e: SnapshotError| io::Error::new(io::ErrorKind::InvalidData, e))?;
        trainer.optim.t = t;
        Ok(t0.elapsed())
    }

    /// The paper's CR recovery path: assume `trainer` just hit a
    /// non-trainable state on `batch`. Measure save (of the pre-step state
    /// — the paper assumes checkpointing every step), load, and replay.
    ///
    /// The trainer must be in the *pre-step* state when called (the caller
    /// restores or re-creates it); this method then performs
    /// save → load → replay and returns the timings plus the replayed
    /// step's outcome.
    pub fn recover_and_replay(
        &mut self,
        trainer: &mut Trainer,
        batch: &[&Example],
    ) -> io::Result<(RecoveryTiming, StepOutcome)> {
        let (_, bytes, save) = self.save(trainer)?;
        let load = self.load_last(trainer)?;
        let t0 = Instant::now();
        let outcome = trainer.train_step(batch);
        let replay = t0.elapsed();
        Ok((
            RecoveryTiming {
                save,
                load,
                replay,
                bytes,
            },
            outcome,
        ))
    }
}

/// Parse the index out of a `ckpt-NNNNNN.atnc` file name; `None` for
/// anything else (including `.tmp` leftovers).
fn parse_checkpoint_index(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".atnc")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_model::model::{ModelConfig, TransformerModel};
    use attn_model::param::HasParams;
    use attn_model::SyntheticMrpc;
    use attn_tensor::rng::TensorRng;
    use attnchecker::config::ProtectionConfig;

    fn tiny_trainer() -> (Trainer, SyntheticMrpc) {
        let mut rng = TensorRng::seed_from(5);
        let mut cfg = ModelConfig::bert_small();
        cfg.hidden = 16;
        cfg.heads = 2;
        cfg.layers = 1;
        let model = TransformerModel::new(cfg, ProtectionConfig::off(), &mut rng);
        let ds = SyntheticMrpc::generate(8, 256, 16, 2);
        (Trainer::new(model, 1e-3), ds)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("attn-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip_restores_training_state() {
        let (mut tr, ds) = tiny_trainer();
        let dir = tmp_dir("roundtrip");
        let mut mgr = CheckpointManager::new(&dir).unwrap();

        let batch: Vec<_> = ds.examples.iter().take(4).collect();
        let _ = tr.train_step(&batch);
        let (_, bytes, _) = mgr.save(&mut tr).unwrap();
        assert!(bytes > 0);

        // Capture a reference param value, then train further.
        let mut before = None;
        tr.model.visit_params(&mut |p| {
            if p.name == "classifier.w" {
                before = Some(p.value.clone());
            }
        });
        let _ = tr.train_step(&batch);
        let _ = tr.train_step(&batch);

        mgr.load_last(&mut tr).unwrap();
        let mut after = None;
        tr.model.visit_params(&mut |p| {
            if p.name == "classifier.w" {
                after = Some(p.value.clone());
            }
        });
        assert_eq!(before.unwrap(), after.unwrap());
        assert_eq!(tr.optim.t, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_replay_reaches_same_state_as_clean_step() {
        let (mut tr_a, ds) = tiny_trainer();
        let (mut tr_b, _) = tiny_trainer(); // identical init (same seed)
        let batch: Vec<_> = ds.examples.iter().take(4).collect();

        // A: clean step.
        let out_a = tr_a.train_step(&batch);

        // B: recovery path (save pre-step, load, replay the step).
        let dir = tmp_dir("replay");
        let mut mgr = CheckpointManager::new(&dir).unwrap();
        let (timing, out_b) = mgr.recover_and_replay(&mut tr_b, &batch).unwrap();
        assert!((out_a.loss - out_b.loss).abs() < 1e-5);
        assert!(timing.save > Duration::ZERO);
        assert!(timing.load > Duration::ZERO);
        assert!(timing.total() >= timing.replay);

        // Parameters must match exactly between both paths.
        let mut va = Vec::new();
        tr_a.model.visit_params(&mut |p| va.push(p.value.clone()));
        let mut vb = Vec::new();
        tr_b.model.visit_params(&mut |p| vb.push(p.value.clone()));
        assert_eq!(va.len(), vb.len());
        for (a, b) in va.iter().zip(&vb) {
            assert!(a.approx_eq(b, 1e-6, 1e-6));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_without_save_errors() {
        let (mut tr, _) = tiny_trainer();
        let dir = tmp_dir("nosave");
        let mgr = CheckpointManager::new(&dir).unwrap();
        assert!(mgr.load_last(&mut tr).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_counter_and_last_checkpoint() {
        let (mut tr, ds) = tiny_trainer();
        let dir = tmp_dir("restart");
        let batch: Vec<_> = ds.examples.iter().take(2).collect();

        let first_path;
        {
            let mut mgr = CheckpointManager::new(&dir).unwrap();
            let _ = tr.train_step(&batch);
            let (p0, _, _) = mgr.save(&mut tr).unwrap();
            first_path = p0;
            let _ = tr.train_step(&batch);
            let (p1, _, _) = mgr.save(&mut tr).unwrap();
            assert_eq!(mgr.last_checkpoint(), Some(p1.as_path()));
        } // "process exit"

        // A fresh manager over the same directory resumes the sequence.
        let mut mgr = CheckpointManager::new(&dir).unwrap();
        let resumed = mgr.last_checkpoint().expect("rescan finds checkpoints");
        assert!(resumed.to_string_lossy().ends_with("ckpt-000001.atnc"));

        // The pre-restart state is loadable, and the next save does not
        // overwrite any existing checkpoint.
        mgr.load_last(&mut tr).unwrap();
        assert_eq!(tr.optim.t, 2);
        let (p2, _, _) = mgr.save(&mut tr).unwrap();
        assert!(p2.to_string_lossy().ends_with("ckpt-000002.atnc"));
        assert!(first_path.exists(), "restart must not clobber ckpt-000000");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_discarded_on_restart() {
        let (mut tr, ds) = tiny_trainer();
        let dir = tmp_dir("staletmp");
        let batch: Vec<_> = ds.examples.iter().take(2).collect();
        {
            let mut mgr = CheckpointManager::new(&dir).unwrap();
            let _ = tr.train_step(&batch);
            let _ = mgr.save(&mut tr).unwrap();
        }
        // Simulate a crash mid-save: a torn temp file next to a good one.
        let torn = dir.join("ckpt-000001.atnc.tmp");
        fs::write(&torn, b"partial garbage").unwrap();

        let mgr = CheckpointManager::new(&dir).unwrap();
        assert!(!torn.exists(), "torn .tmp must be discarded");
        // The torn write is not the resume point; the good checkpoint is.
        let last = mgr.last_checkpoint().unwrap().to_string_lossy().to_string();
        assert!(last.ends_with("ckpt-000000.atnc"), "{last}");
        mgr.load_last(&mut tr).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_leaves_no_tmp_behind() {
        let (mut tr, ds) = tiny_trainer();
        let dir = tmp_dir("notmp");
        let batch: Vec<_> = ds.examples.iter().take(2).collect();
        let mut mgr = CheckpointManager::new(&dir).unwrap();
        let _ = tr.train_step(&batch);
        let (path, _, _) = mgr.save(&mut tr).unwrap();
        assert!(path.exists());
        let tmps: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(tmps.is_empty(), "save must rename its temp file away");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_checkpoint_index_accepts_only_real_checkpoints() {
        assert_eq!(parse_checkpoint_index("ckpt-000000.atnc"), Some(0));
        assert_eq!(parse_checkpoint_index("ckpt-000123.atnc"), Some(123));
        assert_eq!(parse_checkpoint_index("ckpt-000001.atnc.tmp"), None);
        assert_eq!(parse_checkpoint_index("ckpt-.atnc"), None);
        assert_eq!(parse_checkpoint_index("ckpt-12a4.atnc"), None);
        assert_eq!(parse_checkpoint_index("other.atnc"), None);
    }
}
