//! On-disk checkpointing and restore-and-replay recovery.

use crate::snapshot::{restore_model, snapshot_model, SnapshotError};
use attn_model::data::Example;
use attn_model::trainer::{StepOutcome, Trainer};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Phase timings of one checkpoint/restore recovery (the Fig 11 cost
/// decomposition).
#[derive(Debug, Clone)]
pub struct RecoveryTiming {
    /// Serialise + write the checkpoint.
    pub save: Duration,
    /// Read + deserialise the checkpoint.
    pub load: Duration,
    /// Re-execute the lost training step.
    pub replay: Duration,
    /// Checkpoint size in bytes.
    pub bytes: usize,
}

impl RecoveryTiming {
    /// Total recovery wall time.
    pub fn total(&self) -> Duration {
        self.save + self.load + self.replay
    }
}

/// Writes and restores training-state checkpoints in a directory.
pub struct CheckpointManager {
    dir: PathBuf,
    counter: u64,
    last: Option<PathBuf>,
}

impl CheckpointManager {
    /// Create (and if needed, mkdir) a manager rooted at `dir`.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
            counter: 0,
            last: None,
        })
    }

    /// Path of the most recent checkpoint, if any.
    pub fn last_checkpoint(&self) -> Option<&Path> {
        self.last.as_deref()
    }

    /// Serialise the trainer state to a new checkpoint file; returns
    /// `(path, bytes written, elapsed)`.
    pub fn save(&mut self, trainer: &mut Trainer) -> io::Result<(PathBuf, usize, Duration)> {
        let t0 = Instant::now();
        let t = trainer.optim.t;
        let data = snapshot_model(&mut trainer.model, t);
        let path = self.dir.join(format!("ckpt-{:06}.atnc", self.counter));
        self.counter += 1;
        let mut f = fs::File::create(&path)?;
        f.write_all(&data)?;
        f.sync_all()?;
        self.last = Some(path.clone());
        Ok((path, data.len(), t0.elapsed()))
    }

    /// Restore trainer state from the most recent checkpoint; returns
    /// elapsed time.
    ///
    /// # Errors
    /// Fails when no checkpoint exists or the file is invalid.
    pub fn load_last(&self, trainer: &mut Trainer) -> io::Result<Duration> {
        let path = self
            .last
            .as_ref()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no checkpoint saved"))?;
        let t0 = Instant::now();
        let data = fs::read(path)?;
        let t = restore_model(&mut trainer.model, &data)
            .map_err(|e: SnapshotError| io::Error::new(io::ErrorKind::InvalidData, e))?;
        trainer.optim.t = t;
        Ok(t0.elapsed())
    }

    /// The paper's CR recovery path: assume `trainer` just hit a
    /// non-trainable state on `batch`. Measure save (of the pre-step state
    /// — the paper assumes checkpointing every step), load, and replay.
    ///
    /// The trainer must be in the *pre-step* state when called (the caller
    /// restores or re-creates it); this method then performs
    /// save → load → replay and returns the timings plus the replayed
    /// step's outcome.
    pub fn recover_and_replay(
        &mut self,
        trainer: &mut Trainer,
        batch: &[&Example],
    ) -> io::Result<(RecoveryTiming, StepOutcome)> {
        let (_, bytes, save) = self.save(trainer)?;
        let load = self.load_last(trainer)?;
        let t0 = Instant::now();
        let outcome = trainer.train_step(batch);
        let replay = t0.elapsed();
        Ok((
            RecoveryTiming {
                save,
                load,
                replay,
                bytes,
            },
            outcome,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_model::model::{ModelConfig, TransformerModel};
    use attn_model::param::HasParams;
    use attn_model::SyntheticMrpc;
    use attn_tensor::rng::TensorRng;
    use attnchecker::config::ProtectionConfig;

    fn tiny_trainer() -> (Trainer, SyntheticMrpc) {
        let mut rng = TensorRng::seed_from(5);
        let mut cfg = ModelConfig::bert_small();
        cfg.hidden = 16;
        cfg.heads = 2;
        cfg.layers = 1;
        let model = TransformerModel::new(cfg, ProtectionConfig::off(), &mut rng);
        let ds = SyntheticMrpc::generate(8, 256, 16, 2);
        (Trainer::new(model, 1e-3), ds)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("attn-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip_restores_training_state() {
        let (mut tr, ds) = tiny_trainer();
        let dir = tmp_dir("roundtrip");
        let mut mgr = CheckpointManager::new(&dir).unwrap();

        let batch: Vec<_> = ds.examples.iter().take(4).collect();
        let _ = tr.train_step(&batch);
        let (_, bytes, _) = mgr.save(&mut tr).unwrap();
        assert!(bytes > 0);

        // Capture a reference param value, then train further.
        let mut before = None;
        tr.model.visit_params(&mut |p| {
            if p.name == "classifier.w" {
                before = Some(p.value.clone());
            }
        });
        let _ = tr.train_step(&batch);
        let _ = tr.train_step(&batch);

        mgr.load_last(&mut tr).unwrap();
        let mut after = None;
        tr.model.visit_params(&mut |p| {
            if p.name == "classifier.w" {
                after = Some(p.value.clone());
            }
        });
        assert_eq!(before.unwrap(), after.unwrap());
        assert_eq!(tr.optim.t, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_replay_reaches_same_state_as_clean_step() {
        let (mut tr_a, ds) = tiny_trainer();
        let (mut tr_b, _) = tiny_trainer(); // identical init (same seed)
        let batch: Vec<_> = ds.examples.iter().take(4).collect();

        // A: clean step.
        let out_a = tr_a.train_step(&batch);

        // B: recovery path (save pre-step, load, replay the step).
        let dir = tmp_dir("replay");
        let mut mgr = CheckpointManager::new(&dir).unwrap();
        let (timing, out_b) = mgr.recover_and_replay(&mut tr_b, &batch).unwrap();
        assert!((out_a.loss - out_b.loss).abs() < 1e-5);
        assert!(timing.save > Duration::ZERO);
        assert!(timing.load > Duration::ZERO);
        assert!(timing.total() >= timing.replay);

        // Parameters must match exactly between both paths.
        let mut va = Vec::new();
        tr_a.model.visit_params(&mut |p| va.push(p.value.clone()));
        let mut vb = Vec::new();
        tr_b.model.visit_params(&mut |p| vb.push(p.value.clone()));
        assert_eq!(va.len(), vb.len());
        for (a, b) in va.iter().zip(&vb) {
            assert!(a.approx_eq(b, 1e-6, 1e-6));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_without_save_errors() {
        let (mut tr, _) = tiny_trainer();
        let dir = tmp_dir("nosave");
        let mgr = CheckpointManager::new(&dir).unwrap();
        assert!(mgr.load_last(&mut tr).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
