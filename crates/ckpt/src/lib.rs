//! # attn-ckpt
//!
//! Checkpoint/restore (CR) substrate — the recovery baseline ATTNChecker is
//! compared against in the paper's Fig 11.
//!
//! CR recovery from a non-trainable state costs three phases the paper
//! charges against every faulty step: *save* (serialise model + optimizer
//! state), *load* (deserialise the last good state), and *replay*
//! (re-execute the lost training step). [`snapshot`] implements a compact
//! binary wire format; [`manager`] adds on-disk storage and a
//! restore-and-replay driver with phase timings.

pub mod manager;
pub mod snapshot;

pub use manager::{CheckpointManager, RecoveryTiming};
pub use snapshot::{restore_model, snapshot_model, SnapshotError};
