//! Binary serialisation of model + optimizer state.
//!
//! Wire format (little-endian throughout):
//!
//! ```text
//! magic   b"ATNC"
//! version u32        (currently 1)
//! t       u64        optimizer step counter
//! nparams u64
//! repeat nparams times:
//!   name_len u32, name utf-8 bytes
//!   rows u64, cols u64
//!   value f32 × rows·cols
//!   m     f32 × rows·cols      (Adam first moment)
//!   v     f32 × rows·cols      (Adam second moment)
//! ```
//!
//! Moments are included because restarting fine-tuning without optimizer
//! state changes the trajectory — the paper's CR baseline checkpoints the
//! full training state.

use attn_model::param::HasParams;
use attn_tensor::Matrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"ATNC";
const VERSION: u32 = 1;

/// Deserialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Bad magic bytes.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Buffer ended early.
    Truncated,
    /// Parameter name/shape mismatch against the receiving model.
    Mismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "bad checkpoint magic"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            SnapshotError::Truncated => write!(f, "checkpoint truncated"),
            SnapshotError::Mismatch(s) => write!(f, "checkpoint/model mismatch: {s}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialise the full training state (`t` is the optimizer step counter).
pub fn snapshot_model(model: &mut dyn HasParams, t: u64) -> Bytes {
    let mut entries: Vec<(String, Matrix, Matrix, Matrix)> = Vec::new();
    model.visit_params(&mut |p| {
        entries.push((p.name.clone(), p.value.clone(), p.m.clone(), p.v.clone()));
    });

    let payload: usize = entries
        .iter()
        .map(|(n, v, _, _)| 4 + n.len() + 16 + 3 * 4 * v.len())
        .sum();
    let mut buf = BytesMut::with_capacity(4 + 4 + 8 + 8 + payload);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(t);
    buf.put_u64_le(entries.len() as u64);
    for (name, value, m, v) in &entries {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        buf.put_u64_le(value.rows() as u64);
        buf.put_u64_le(value.cols() as u64);
        for mat in [value, m, v] {
            for &x in mat.data() {
                buf.put_f32_le(x);
            }
        }
    }
    buf.freeze()
}

/// Restore training state from [`snapshot_model`] output. Returns the saved
/// optimizer step counter.
///
/// Parameters are matched by visit order and verified by name and shape, so
/// a checkpoint can only be restored into the model that produced it.
pub fn restore_model(model: &mut dyn HasParams, data: &[u8]) -> Result<u64, SnapshotError> {
    let mut buf = data;
    if buf.remaining() < 24 {
        return Err(SnapshotError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let t = buf.get_u64_le();
    let nparams = buf.get_u64_le() as usize;

    // Decode into a list first so a half-applied restore cannot corrupt the
    // model on error.
    let mut decoded: Vec<(String, Matrix, Matrix, Matrix)> = Vec::with_capacity(nparams);
    for _ in 0..nparams {
        if buf.remaining() < 4 {
            return Err(SnapshotError::Truncated);
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len + 16 {
            return Err(SnapshotError::Truncated);
        }
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes)
            .map_err(|_| SnapshotError::Mismatch("non-utf8 name".into()))?;
        let rows = buf.get_u64_le() as usize;
        let cols = buf.get_u64_le() as usize;
        let n = rows * cols;
        if buf.remaining() < 3 * 4 * n {
            return Err(SnapshotError::Truncated);
        }
        let mut mats = Vec::with_capacity(3);
        for _ in 0..3 {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(buf.get_f32_le());
            }
            mats.push(Matrix::from_vec(rows, cols, v));
        }
        let vv = mats.pop().expect("3 matrices");
        let mm = mats.pop().expect("2 matrices");
        let val = mats.pop().expect("1 matrix");
        decoded.push((name, val, mm, vv));
    }

    let mut idx = 0usize;
    let mut err: Option<SnapshotError> = None;
    model.visit_params(&mut |p| {
        if err.is_some() {
            return;
        }
        let Some((name, val, m, v)) = decoded.get(idx) else {
            err = Some(SnapshotError::Mismatch(
                "too few params in checkpoint".into(),
            ));
            return;
        };
        if *name != p.name {
            err = Some(SnapshotError::Mismatch(format!(
                "param {idx}: checkpoint has `{name}`, model has `{}`",
                p.name
            )));
            return;
        }
        if (val.rows(), val.cols()) != (p.value.rows(), p.value.cols()) {
            err = Some(SnapshotError::Mismatch(format!(
                "shape mismatch for `{name}`"
            )));
            return;
        }
        p.value = val.clone();
        p.m = m.clone();
        p.v = v.clone();
        idx += 1;
    });
    if let Some(e) = err {
        return Err(e);
    }
    if idx != decoded.len() {
        return Err(SnapshotError::Mismatch(
            "checkpoint has more params than model".into(),
        ));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_model::param::Param;

    struct Toy {
        a: Param,
        b: Param,
    }
    impl HasParams for Toy {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    fn toy() -> Toy {
        let mut a = Param::new("a", Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32));
        a.m = Matrix::full(2, 3, 0.5);
        a.v = Matrix::full(2, 3, 0.25);
        Toy {
            a,
            b: Param::new("b", Matrix::full(1, 4, -1.0)),
        }
    }

    #[test]
    fn roundtrip_restores_values_and_moments() {
        let mut t = toy();
        let snap = snapshot_model(&mut t, 17);
        // Corrupt everything.
        t.a.value.data_mut().fill(9.0);
        t.a.m.data_mut().fill(9.0);
        t.b.value.data_mut().fill(9.0);
        let step = restore_model(&mut t, &snap).unwrap();
        assert_eq!(step, 17);
        assert_eq!(t.a.value[(1, 2)], 5.0);
        assert_eq!(t.a.m[(0, 0)], 0.5);
        assert_eq!(t.a.v[(0, 0)], 0.25);
        assert_eq!(t.b.value[(0, 0)], -1.0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut t = toy();
        let mut snap = snapshot_model(&mut t, 0).to_vec();
        snap[0] = b'X';
        assert_eq!(restore_model(&mut t, &snap), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn truncation_rejected_without_partial_apply() {
        let mut t = toy();
        let snap = snapshot_model(&mut t, 0);
        let before = t.a.value.clone();
        let cut = &snap[..snap.len() - 7];
        assert_eq!(restore_model(&mut t, cut), Err(SnapshotError::Truncated));
        assert_eq!(t.a.value, before, "failed restore must not mutate");
    }

    #[test]
    fn name_mismatch_rejected() {
        let mut t = toy();
        let snap = snapshot_model(&mut t, 0);
        let mut other = toy();
        other.a.name = "renamed".into();
        assert!(matches!(
            restore_model(&mut other, &snap),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn snapshot_size_is_deterministic() {
        let mut t = toy();
        let s1 = snapshot_model(&mut t, 1);
        let s2 = snapshot_model(&mut t, 1);
        assert_eq!(s1, s2);
        // 24-byte header + entries.
        assert!(s1.len() > 24 + 3 * 4 * (6 + 4));
    }
}
