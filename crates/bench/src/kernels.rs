//! Shared kernel-level measurements: the fused-vs-standalone encoding
//! comparison used by both `bench_gemm` (machine-readable floors) and
//! `fig9_encoding_throughput` (human-readable table), so the definition of
//! the "standalone" baseline can never diverge between the two.

use crate::timing::measure;
use attn_tensor::gemm::{gemm_encode_cols_into, matmul};
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use attnchecker::checksum::col_checksums;
use std::hint::black_box;

/// One fused-vs-standalone encoding measurement at a GEMM shape.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOverhead {
    /// Fastest plain (unprotected) product time, milliseconds.
    pub plain_ms: f64,
    /// Overhead ratio of fused encode-in-GEMM vs the plain product.
    pub fused: f64,
    /// Overhead ratio of standalone encode-then-GEMM (sweep + augmented
    /// copy + bigger GEMM — what every section entry paid before fusion)
    /// vs the plain product.
    pub standalone: f64,
}

/// Measure the `m×k×n` column-encoding overhead pair (fastest-run
/// statistics over `trials` measured runs).
pub fn measure_encode_overhead(
    m: usize,
    k: usize,
    n: usize,
    trials: usize,
    seed: u64,
) -> EncodeOverhead {
    let mut rng = TensorRng::seed_from(seed);
    let a = rng.uniform_matrix(m, k, -1.0, 1.0);
    let b = rng.uniform_matrix(k, n, -1.0, 1.0);
    let mut c_aug = Matrix::zeros(m + 2, n);
    let plain = measure(2, trials, || {
        black_box(matmul(black_box(&a), &b));
    });
    let fused = measure(2, trials, || {
        gemm_encode_cols_into(black_box(&a).view(), b.view(), c_aug.view_mut());
        black_box(&c_aug);
    });
    let standalone = measure(2, trials, || {
        let cs = col_checksums(black_box(&a));
        let aug = a.vstack(&cs);
        black_box(matmul(&aug, &b));
    });
    EncodeOverhead {
        plain_ms: plain.min.as_secs_f64() * 1e3,
        fused: fused.min.as_secs_f64() / plain.min.as_secs_f64() - 1.0,
        standalone: standalone.min.as_secs_f64() / plain.min.as_secs_f64() - 1.0,
    }
}
