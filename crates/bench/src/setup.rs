//! Shared builders for the experiment binaries.

use attn_model::model::{ModelConfig, TransformerModel};
use attn_model::{SyntheticMrpc, Trainer};
use attn_tensor::rng::TensorRng;
use attnchecker::config::ProtectionConfig;

/// Default fine-tuning learning rate used across experiments.
pub const LR: f32 = 1e-3;

/// Build a seeded trainer for `config` under `protection`.
///
/// The same `(config, seed)` pair always yields identical initial weights,
/// so protected/unprotected comparisons start from the same state.
pub fn build_trainer(config: &ModelConfig, protection: ProtectionConfig, seed: u64) -> Trainer {
    let mut rng = TensorRng::seed_from(seed);
    let model = TransformerModel::new(config.clone(), protection, &mut rng);
    Trainer::new(model, LR)
}

/// Build the synthetic MRPC corpus sized for `config`.
pub fn dataset_for(config: &ModelConfig, n: usize, seed: u64) -> SyntheticMrpc {
    SyntheticMrpc::generate(n, config.vocab, config.max_seq.min(32), seed)
}

/// Dataset at the model's full sequence length (timing experiments).
pub fn dataset_full_seq(config: &ModelConfig, n: usize, seed: u64) -> SyntheticMrpc {
    SyntheticMrpc::generate(n, config.vocab, config.max_seq, seed)
}

/// Trial-count override: honours `ATTN_TRIALS` so CI can run the campaign
/// binaries quickly while full runs use the default.
pub fn trials_from_env(default: usize) -> usize {
    std::env::var("ATTN_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let cfg = ModelConfig::bert_small();
        let mut a = build_trainer(&cfg, ProtectionConfig::off(), 7);
        let mut b = build_trainer(&cfg, ProtectionConfig::off(), 7);
        use attn_model::HasParams;
        let mut va = Vec::new();
        a.model.visit_params(&mut |p| va.push(p.value.clone()));
        let mut vb = Vec::new();
        b.model.visit_params(&mut |p| vb.push(p.value.clone()));
        assert_eq!(va, vb);
    }

    #[test]
    fn dataset_fits_model() {
        let cfg = ModelConfig::bert_small();
        let ds = dataset_for(&cfg, 8, 1);
        assert!(ds.examples.iter().all(|e| e.tokens.len() <= cfg.max_seq));
        assert!(ds
            .examples
            .iter()
            .all(|e| e.tokens.iter().all(|&t| t < cfg.vocab)));
    }

    #[test]
    fn trials_env_default() {
        std::env::remove_var("ATTN_TRIALS");
        assert_eq!(trials_from_env(42), 42);
    }
}
