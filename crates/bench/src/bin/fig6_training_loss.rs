//! **Fig 6 reproduction** — training loss: fault-free vs faulty execution
//! recovered with ATTNChecker.
//!
//! Fine-tunes each of the four models for 3 epochs twice from identical
//! initial weights:
//!
//! * **fault-free** — protection off, no faults;
//! * **ATTNChecker** — full protection, one extreme fault injected into a
//!   random attention GEMM *every step*.
//!
//! The paper's claim (its Fig 6): the recovered loss curve is
//! indistinguishable from the fault-free one.
//!
//! Run: `cargo run --release -p attn-bench --bin fig6_training_loss`

use attn_bench::{build_trainer, dataset_for, TextTable};
use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig};
use attn_tensor::rng::TensorRng;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;

const EPOCHS: usize = 3;
const BATCH: usize = 8;
const DATASET: usize = 64;

fn main() {
    println!("== Fig 6: Training loss — fault-free vs ATTNChecker-recovered ==");
    println!("({DATASET} examples, batch {BATCH}, {EPOCHS} epochs, 1 injected fault per step)\n");

    let sites = [AttnOp::Q, AttnOp::K, AttnOp::V, AttnOp::AS, AttnOp::CL];
    let kinds = [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf];

    for config in ModelConfig::paper_four() {
        let ds = dataset_for(&config, DATASET, 5);

        // Fault-free baseline.
        let mut clean = build_trainer(&config, ProtectionConfig::off(), 1234);
        let mut rng_a = TensorRng::seed_from(77);
        let clean_losses: Vec<f32> = (0..EPOCHS)
            .map(|_| clean.train_epoch(&ds, BATCH, &mut rng_a))
            .collect();

        // Protected run with one fault per step.
        let mut protected = build_trainer(&config, ProtectionConfig::full(), 1234);
        let mut rng_b = TensorRng::seed_from(77); // same batch order
        let mut rng_fault = TensorRng::seed_from(4242);
        let mut corrections = 0usize;
        let mut unrecovered = 0usize;
        let mut protected_losses = Vec::with_capacity(EPOCHS);
        for _ in 0..EPOCHS {
            let batches = ds.batches(BATCH, &mut rng_b);
            let mut sum = 0.0f32;
            let mut n = 0;
            for batch in &batches {
                let spec = InjectionSpec {
                    layer: rng_fault.index(config.layers),
                    op: sites[rng_fault.index(sites.len())],
                    head: rng_fault.index(config.heads),
                    row: rng_fault.index(1 << 16),
                    col: rng_fault.index(1 << 16),
                    kind: kinds[rng_fault.index(kinds.len())],
                };
                let item = rng_fault.index(batch.len());
                let out = protected.train_step_injected(batch, Some((item, spec)));
                corrections += out.report.correction_count();
                unrecovered += out.report.unrecovered;
                sum += out.loss;
                n += 1;
            }
            protected_losses.push(sum / n as f32);
        }

        let mut t = TextTable::new(&["epoch", "fault-free loss", "ATTNChecker loss", "Δ"]);
        for e in 0..EPOCHS {
            t.row(&[
                format!("{}", e + 1),
                format!("{:.4}", clean_losses[e]),
                format!("{:.4}", protected_losses[e]),
                format!("{:+.4}", protected_losses[e] - clean_losses[e]),
            ]);
        }
        println!("-- {} --", config.name);
        println!("{}", t.render());
        println!("corrections applied: {corrections}; unrecovered: {unrecovered}\n");
    }
    println!("Paper reference (appendix, Bert): 0.5349/0.3071/0.1285 with ATTNChecker");
    println!("vs 0.5635/0.3362/0.1312 baseline — curves overlap; ours must too.");
}
