//! **GEMM kernel benchmark** — machine-readable perf trajectory for the
//! packed register-tiled kernels and the fused checksum encoding.
//!
//! Measures, over sizes spanning attention and FFN shapes:
//!
//! * naive (triple-loop) vs tiled GFLOP/s and the tiled speedup;
//! * the encode-overhead ratio of **fused** encode-in-GEMM
//!   (`gemm_encode_cols_into`) vs **standalone** encode-then-GEMM
//!   (sweep + augmented copy + bigger GEMM) against the plain product —
//!   the paper's §4.6 fusion claim as a measured pair;
//! * the NT (`A·Bᵀ`) path at a k-heavy shape against an unblocked
//!   row-dot reference — the regression guard for the k-blocking the old
//!   NT kernel lacked.
//!
//! Writes `BENCH_gemm.json` into the working directory and exits non-zero
//! if a perf floor regresses (tiled < 2× naive at 256³, fused encoding
//! not cheaper than standalone, NT slower than the unblocked reference).
//!
//! Run: `cargo run --release -p attn-bench --bin bench_gemm`

use attn_bench::timing::{measure, pct};
use attn_bench::{measure_encode_overhead, TextTable};
use attn_tensor::gemm::{self, matmul, matmul_naive};
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use std::fmt::Write as _;
use std::hint::black_box;

/// Fastest-run GFLOP/s for a 2·m·n·k flop kernel (min over trials is the
/// standard noise-robust throughput statistic on a shared host).
fn gflops(m: usize, n: usize, k: usize, secs: f64) -> f64 {
    2.0 * (m as f64) * (n as f64) * (k as f64) / secs / 1e9
}

/// The old NT implementation shape: whole-row dots with no k-blocking —
/// the baseline the packed NT path must beat on k-heavy shapes.
fn matmul_nt_unblocked(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            c[(i, j)] = gemm::dot(a.row(i), b.row(j));
        }
    }
    c
}

fn main() {
    let mut rng = TensorRng::seed_from(7);
    let trials = 7;
    let mut json = String::from("{\n");

    // ------------------------------------------------ tiled vs naive
    // Shapes span the workloads the kernels actually serve: per-head
    // attention GEMMs, hidden-width projections, the FFN expansion, and
    // the 256³ acceptance point.
    let sizes = [
        (64, 64, 64),
        (128, 128, 128),
        (64, 512, 128),
        (256, 256, 256),
    ];
    let mut t = TextTable::new(&["m×k×n", "naive GFLOP/s", "tiled GFLOP/s", "speedup"]);
    let mut speedup_256 = 0.0;
    json.push_str("  \"sizes\": [\n");
    for (idx, &(m, k, n)) in sizes.iter().enumerate() {
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        let tn = measure(1, trials.min(3), || {
            black_box(matmul_naive(black_box(&a), black_box(&b)));
        });
        let tt = measure(2, trials, || {
            black_box(matmul(black_box(&a), black_box(&b)));
        });
        let gn = gflops(m, n, k, tn.min.as_secs_f64());
        let gt = gflops(m, n, k, tt.min.as_secs_f64());
        let speedup = gt / gn;
        if (m, k, n) == (256, 256, 256) {
            speedup_256 = speedup;
        }
        t.row(&[
            format!("{m}x{k}x{n}"),
            format!("{gn:.2}"),
            format!("{gt:.2}"),
            format!("{speedup:.2}x"),
        ]);
        let _ = writeln!(
            json,
            "    {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"gflops_naive\": {gn:.3}, \"gflops_tiled\": {gt:.3}, \"speedup\": {speedup:.3}}}{}",
            if idx + 1 < sizes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    println!("== Tiled kernel vs triple-loop naive ==\n{}", t.render());

    // ------------------------------------- fused vs standalone encoding
    let enc_sizes = [(128, 512, 128), (256, 256, 256)];
    let mut t = TextTable::new(&[
        "m×k×n",
        "plain GEMM (ms)",
        "fused enc overhead",
        "standalone enc overhead",
    ]);
    let mut sum_fused = 0.0;
    let mut sum_standalone = 0.0;
    json.push_str("  \"encode\": [\n");
    for (idx, &(m, k, n)) in enc_sizes.iter().enumerate() {
        let e = measure_encode_overhead(m, k, n, trials, 7);
        sum_fused += e.fused;
        sum_standalone += e.standalone;
        t.row(&[
            format!("{m}x{k}x{n}"),
            format!("{:.3}", e.plain_ms),
            pct(e.fused),
            pct(e.standalone),
        ]);
        let _ = writeln!(
            json,
            "    {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"overhead_fused\": {:.4}, \"overhead_standalone\": {:.4}}}{}",
            e.fused,
            e.standalone,
            if idx + 1 < enc_sizes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    println!(
        "== Fused encode-in-GEMM vs standalone encode-then-GEMM ==\n{}",
        t.render()
    );

    // ------------------------------------------------ NT k-blocking guard
    let (m, k, n) = (96, 3072, 96);
    let a = rng.uniform_matrix(m, k, -1.0, 1.0);
    let b = rng.uniform_matrix(n, k, -1.0, 1.0);
    let unblocked = measure(1, trials.min(3), || {
        black_box(matmul_nt_unblocked(black_box(&a), black_box(&b)));
    });
    let tiled = measure(2, trials, || {
        black_box(gemm::matmul_nt(black_box(&a), black_box(&b)));
    });
    let g_un = gflops(m, n, k, unblocked.min.as_secs_f64());
    let g_ti = gflops(m, n, k, tiled.min.as_secs_f64());
    let nt_speedup = g_ti / g_un;
    println!(
        "== NT path, k-heavy ({m}x{k}x{n}) ==\nunblocked row-dot: {g_un:.2} GFLOP/s   packed NT: {g_ti:.2} GFLOP/s   ({nt_speedup:.2}x)\n"
    );
    let _ = writeln!(
        json,
        "  \"nt_regression\": {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"gflops_unblocked\": {g_un:.3}, \"gflops_tiled\": {g_ti:.3}, \"speedup\": {nt_speedup:.3}}}\n}}"
    );

    std::fs::write("BENCH_gemm.json", &json).expect("write BENCH_gemm.json");
    println!("wrote BENCH_gemm.json");

    // Perf floors — regressions fail the run so the trajectory is enforced,
    // not just recorded. Margins are generous vs measured headroom (the
    // tiled kernel measures ~10x naive, NT ~1.5x+ unblocked on this host).
    let mut failed = false;
    if speedup_256 < 2.0 {
        eprintln!("FAIL: tiled kernel below 2x naive at 256^3 ({speedup_256:.2}x)");
        failed = true;
    }
    // Mean across shapes: per-shape deltas can sit inside timer noise on a
    // loaded host, the aggregate ordering is structural (standalone pays
    // fused's work plus a sweep, a copy, and an allocation).
    if sum_fused >= sum_standalone {
        eprintln!(
            "FAIL: fused encoding not cheaper than standalone encode-then-GEMM (mean {} vs {})",
            pct(sum_fused / enc_sizes.len() as f64),
            pct(sum_standalone / enc_sizes.len() as f64),
        );
        failed = true;
    }
    if nt_speedup < 1.05 {
        eprintln!("FAIL: packed NT path regressed vs unblocked row-dot ({nt_speedup:.2}x)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "perf floors: OK (tiled {speedup_256:.2}x naive at 256^3, NT {nt_speedup:.2}x unblocked)"
    );
}
