//! **Fig 7 reproduction** — ATTNChecker overhead on six LLMs (batch 8).
//!
//! Measures, per model, the attention-mechanism time and the full
//! training-step time with and without ATTNChecker (fused strategy, all
//! sections at frequency 1). Timing uses the scaled-for-timing model
//! dimensions (width ×2, seq 64) so fixed ABFT costs amortise as they do
//! at paper scale, and interleaves the three configurations step-by-step
//! with median aggregation to cancel host drift.
//!
//! Five configurations run per model: unprotected, the paper's
//! attention-only scope (feeds the Fig 7 attention/step columns), the
//! end-to-end config that also guards the two FFN GEMMs (feeds the extra
//! FFN-overhead column), and the unprotected/attention-only pair again
//! with the trainer's data-parallel step fanning batch items over all
//! cores — the parallel columns measure the step speedup and check that
//! the ABFT overhead *ratio* is schedule-independent (per-item protection
//! work scales with the items, not with the worker count).
//!
//! The paper reports ≈11% overhead on the attention block and ≈7% on the
//! end-to-end step, averaged over models.
//!
//! Run: `cargo run --release -p attn-bench --bin fig7_overhead`

use attn_bench::timing::pct;
use attn_bench::{build_trainer, dataset_full_seq, measure_interleaved, TextTable};
use attn_model::model::ModelConfig;
use attn_model::Example;
use attnchecker::config::ProtectionConfig;

const BATCH: usize = 8;
const WARMUP: usize = 2;
const STEPS: usize = 13;

fn main() {
    let workers = rayon::current_num_threads();
    println!("== Fig 7: ATTNChecker overhead on 6 LLMs (batch {BATCH}) ==\n");
    let mut attn_table = TextTable::new(&[
        "Model",
        "attn original (ms)",
        "attn ATTNChecker (ms)",
        "overhead (fused enc)",
        "overhead (standalone enc)",
    ]);
    let mut step_table = TextTable::new(&[
        "Model",
        "step original (ms)",
        "step ATTNChecker (ms)",
        "overhead",
        "FFN prot. overhead",
        "attn share of step",
    ]);
    let mut par_table = TextTable::new(&[
        "Model",
        "step seq (ms)",
        "step par (ms)",
        "speedup",
        "overhead seq",
        "overhead par",
    ]);
    let mut sum_attn = 0.0;
    let mut sum_sep = 0.0;
    let mut sum_step = 0.0;
    let mut sum_ffn = 0.0;
    let mut sum_speedup = 0.0;
    let models: Vec<ModelConfig> = ModelConfig::paper_six()
        .into_iter()
        .map(|c| c.scaled_for_timing())
        .collect();
    for config in &models {
        let ds = dataset_full_seq(config, BATCH * 2, 11);
        let batch: Vec<&Example> = ds.examples.iter().take(BATCH).collect();
        let mut off = build_trainer(config, ProtectionConfig::off(), 42);
        let mut attn_on = build_trainer(config, ProtectionConfig::attention_only(), 42);
        let mut full_on = build_trainer(config, ProtectionConfig::full(), 42);
        // Standalone-encoding ablation: the Separate strategy encodes with
        // eager two-pass sweeps and updates checksums in separate kernels
        // — the non-fused composition the paper's fusion claim is against.
        let mut sep_on = {
            let mut cfg = ProtectionConfig::attention_only();
            cfg.strategy = attnchecker::config::Strategy::Separate;
            build_trainer(config, cfg, 42)
        };
        let mut off_par = build_trainer(config, ProtectionConfig::off(), 42);
        off_par.set_parallelism(workers);
        let mut attn_par = build_trainer(config, ProtectionConfig::attention_only(), 42);
        attn_par.set_parallelism(workers);
        let times = measure_interleaved(
            &mut [
                &mut off,
                &mut attn_on,
                &mut full_on,
                &mut sep_on,
                &mut off_par,
                &mut attn_par,
            ],
            &batch,
            WARMUP,
            STEPS,
        );
        let (base, prot, e2e, sep) = (times[0], times[1], times[2], times[3]);
        let (base_par, prot_par) = (times[4], times[5]);
        let attn_ovh = prot.attn_overhead_vs(&base);
        let sep_ovh = sep.attn_overhead_vs(&base);
        let step_ovh = prot.step_overhead_vs(&base);
        let ffn_ovh = e2e.ffn_overhead_vs(&base);
        let speedup = base_par.step_speedup_vs(&base);
        sum_attn += attn_ovh;
        sum_step += step_ovh;
        sum_ffn += ffn_ovh;
        sum_speedup += speedup;
        attn_table.row(&[
            config.name.clone(),
            format!("{:.3}", base.attn_ms),
            format!("{:.3}", prot.attn_ms),
            pct(attn_ovh),
            pct(sep_ovh),
        ]);
        sum_sep += sep_ovh;
        step_table.row(&[
            config.name.clone(),
            format!("{:.3}", base.step_ms),
            format!("{:.3}", prot.step_ms),
            pct(step_ovh),
            pct(ffn_ovh),
            pct(base.attn_ms / base.step_ms),
        ]);
        par_table.row(&[
            config.name.clone(),
            format!("{:.3}", base.step_ms),
            format!("{:.3}", base_par.step_ms),
            format!("{:.2}x", speedup),
            pct(step_ovh),
            pct(prot_par.step_overhead_vs(&base_par)),
        ]);
    }
    println!("-- Attention mechanism --\n{}", attn_table.render());
    println!("-- Per-step training --\n{}", step_table.render());
    println!(
        "-- Data-parallel step ({workers} workers, per-example tapes) --\n{}",
        par_table.render()
    );
    println!(
        "mean attention overhead: {} (fused enc) vs {} (standalone enc)   mean step overhead: {}   mean FFN-protection overhead: {}",
        pct(sum_attn / models.len() as f64),
        pct(sum_sep / models.len() as f64),
        pct(sum_step / models.len() as f64),
        pct(sum_ffn / models.len() as f64),
    );
    println!(
        "mean data-parallel step speedup: {:.2}x over {} workers (bit-identical training)",
        sum_speedup / models.len() as f64,
        workers,
    );
    println!("Paper reference: ~11% attention, ~7% per-step (7–16% / 5–10% per model).");
    println!("Note: per-step overhead = attention overhead × attention share of the");
    println!("step; the paper's stack is attention-heavier than this CPU substrate,");
    println!("which is why its 11% attention overhead dilutes to 7% instead of ~2%.");
    println!("The FFN column measures the end-to-end extension (S_FFN guarding both");
    println!("FFN GEMMs) on the FFN timer — protection beyond the paper's scope.");
}
