//! **Fig 10 reproduction** — training overhead under optimized ABFT
//! detection frequencies as the system error rate varies.
//!
//! Sweeps the error rate from 13 to 20 errors per 10²⁵ flops (the paper's
//! range, from the Llama-3 field report) and runs Algorithm 1 against a
//! Bert-profile workload with a fault-coverage target of 1 failure per
//! 10¹¹ attention executions. Reported overhead is `Σ f_S·T_S` with the
//! per-section ABFT costs taken from the Fig 7-style measurement (7%
//! non-adaptive total).
//!
//! Calibration note (documented in EXPERIMENTS.md): the paper does not
//! fully specify the flop exposure behind its target; we size the
//! per-step exposure (batch × layers × paper-scale GEMMs) such that the
//! unprotected failure probability crosses the target inside the swept
//! range, which reproduces the figure's rising-staircase shape.
//!
//! Run: `cargo run --release -p attn-bench --bin fig10_adaptive_frequency`

use attn_bench::TextTable;
use attnchecker::adaptive::{
    attention_sections, optimize_frequencies, section_deficit, ErrorRates, VulnerabilityProfile,
};

/// Non-adaptive ATTNChecker per-step overhead (the Fig 7 average).
const NON_ADAPTIVE_OVERHEAD: f64 = 0.07;

/// Per-section share of that overhead (S_AS carries three GEMMs, two of
/// them the large projections; S_CL two; S_O one).
const SECTION_SHARE: [f64; 3] = [0.5, 0.3, 0.2];

fn main() {
    println!("== Fig 10: overhead with optimized ABFT detection frequencies ==\n");

    // Exposure: one training step of a Bert-scale encoder — batch 16 ×
    // 24 layers of seq-512 / hidden-2048 attention (≈7e12 GEMM flops),
    // chosen so the target is crossed inside the swept error-rate range.
    let (seq, hidden, batch_layers) = (512.0f64, 2048.0f64, 16.0 * 24.0);
    let proj = 2.0 * seq * hidden * hidden * batch_layers;
    let score = 2.0 * seq * seq * hidden * batch_layers;
    let gemm_flops = [proj, proj, score, proj, score, proj];

    let abft_times = [
        NON_ADAPTIVE_OVERHEAD * SECTION_SHARE[0],
        NON_ADAPTIVE_OVERHEAD * SECTION_SHARE[1],
        NON_ADAPTIVE_OVERHEAD * SECTION_SHARE[2],
    ];
    let mut sections =
        attention_sections(gemm_flops, &VulnerabilityProfile::bert_table4(), abft_times);
    let fc_target = 1.0 - 1e-11;

    // Self-calibration: scale the flop exposure so the unprotected failure
    // probability sits just *below* the coverage target at the bottom of
    // the swept range — the paper's figure starts at 0% overhead at 13
    // errors/1e25 flops and rises from there.
    let low = ErrorRates::uniform_per_1e25(13.0);
    let raw_deficit: f64 = sections.iter().map(|s| section_deficit(s, &low)).sum();
    let scale = 0.95 * (1.0 - fc_target) / raw_deficit;
    for s in &mut sections {
        for op in &mut s.ops {
            op.flops *= scale;
        }
    }

    let mut t = TextTable::new(&[
        "errors /1e25 flop",
        "f_AS",
        "f_CL",
        "f_O",
        "overhead",
        "achieved 1-FC",
    ]);
    for rate in 13..=20 {
        let rates = ErrorRates::uniform_per_1e25(rate as f64);
        let plan = optimize_frequencies(&sections, &rates, fc_target);
        t.row(&[
            rate.to_string(),
            format!("{:.3}", plan.freqs[0]),
            format!("{:.3}", plan.freqs[1]),
            format!("{:.3}", plan.freqs[2]),
            format!("{:.2}%", 100.0 * plan.expected_time),
            format!("{:.2e}", 1.0 - plan.achieved_fc),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Non-adaptive reference: {:.0}% (all sections at f = 1).",
        100.0 * NON_ADAPTIVE_OVERHEAD
    );
    println!("Paper reference: 0.0%→3.6% rising staircase over the same sweep, vs 7%.");
}
