//! **Serving gateway benchmark** — synthetic traffic through the
//! continuous-batching `attn_serve::Gateway`.
//!
//! Generates a deterministic arrival trace (Poisson arrivals per logical
//! tick via Knuth's method on `TensorRng`; uniform prompt/output length
//! distributions), replays it through the gateway while time-stamping
//! every request at submission and completion, and reports:
//!
//! * end-to-end request latency p50/p99 (wall-clock and logical ticks);
//! * gateway generated tokens/s vs a serial one-session-at-a-time
//!   baseline on the same engine — continuous batching must retain a
//!   floor fraction of serial throughput despite scheduling overhead;
//! * accounting: every submitted request must come back exactly once
//!   (completed, expired, or rejected), with its full token budget when
//!   it finished by budget.
//!
//! Writes `BENCH_serve.json` into the working directory and exits
//! non-zero when a floor regresses. Set `BENCH_SERVE_TINY=1` for the CI
//! smoke shape (seconds; speed floors degrade to advisory, accounting
//! floors always hard-fail).
//!
//! Run: `cargo run --release -p attn_bench --bin bench_serve`

use attn_infer::{DecodeEngine, Sampling};
use attn_model::model::{ModelConfig, TransformerModel};
use attn_serve::{FinishReason, Gateway, GatewayConfig, Request, TraceEvent};
use attn_tensor::rng::TensorRng;
use attnchecker::config::ProtectionConfig;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

struct Shape {
    cfg: ModelConfig,
    gw: GatewayConfig,
    requests: usize,
    /// Mean arrivals per logical tick.
    lambda: f64,
    prompt_range: (usize, usize),
    max_new_range: (usize, usize),
    /// Gateway tokens/s must retain this fraction of serial throughput.
    floor_throughput_ratio: f64,
}

fn shape(tiny: bool) -> Shape {
    let mut cfg = ModelConfig::gpt2();
    if tiny {
        cfg.hidden = 32;
        cfg.heads = 2;
        cfg.layers = 1;
        cfg.vocab = 64;
        cfg.max_seq = 32;
    } else {
        cfg.hidden = 64;
        cfg.heads = 4;
        cfg.layers = 2;
        cfg.vocab = 128;
        cfg.max_seq = 96;
    }
    cfg.num_classes = cfg.vocab;
    Shape {
        gw: GatewayConfig {
            queue_depth: if tiny { 8 } else { 64 },
            max_live: if tiny { 3 } else { 6 },
            prefill_chunk: 4,
            sampling: Sampling::Temperature(0.9),
            workers: if tiny { 1 } else { 2 },
            ..GatewayConfig::default()
        },
        requests: if tiny { 8 } else { 40 },
        lambda: if tiny { 1.2 } else { 0.8 },
        prompt_range: if tiny { (2, 6) } else { (4, 16) },
        max_new_range: if tiny { (3, 8) } else { (8, 32) },
        // Iteration-level batching amortises per-step overhead across
        // sessions; even single-worker it must stay within a wide margin
        // of the serial engine.
        floor_throughput_ratio: 0.35,
        cfg,
    }
}

/// Poisson-distributed count with mean `lambda` — Knuth's product-of-
/// uniforms method on the deterministic tensor RNG (the vendored rand
/// shim has no distributions module).
fn poisson(rng: &mut TensorRng, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.uniform(0.0, 1.0) as f64;
        if p <= l {
            return k;
        }
        k += 1;
    }
}

fn uniform_in(rng: &mut TensorRng, (lo, hi): (usize, usize)) -> usize {
    lo + (rng.uniform(0.0, 1.0) * ((hi - lo + 1) as f32)) as usize % (hi - lo + 1)
}

/// Deterministic synthetic traffic: Poisson arrivals per tick, uniform
/// prompt/output lengths, distinct seeds.
fn build_trace(sh: &Shape, seed: u64) -> Vec<TraceEvent> {
    let mut rng = TensorRng::seed_from(seed);
    let mut trace = Vec::with_capacity(sh.requests);
    let mut tick = 0u64;
    while trace.len() < sh.requests {
        for _ in 0..poisson(&mut rng, sh.lambda) {
            if trace.len() == sh.requests {
                break;
            }
            let plen = uniform_in(&mut rng, sh.prompt_range);
            let prompt = (0..plen)
                .map(|_| uniform_in(&mut rng, (0, sh.cfg.vocab - 1)))
                .collect();
            trace.push(TraceEvent {
                at_tick: tick,
                request: Request {
                    prompt,
                    max_new: uniform_in(&mut rng, sh.max_new_range),
                    seed: 1000 + trace.len() as u64,
                },
            });
        }
        tick += 1;
    }
    trace
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let tiny = std::env::var("BENCH_SERVE_TINY").is_ok_and(|v| v != "0" && !v.is_empty());
    let sh = shape(tiny);
    let trace = build_trace(&sh, 90210);
    let mut rng = TensorRng::seed_from(4242);
    let model = TransformerModel::new(sh.cfg.clone(), ProtectionConfig::full(), &mut rng);

    // --- Gateway run: replay the trace manually so every request gets a
    // wall-clock submission and completion timestamp.
    let mut gw = Gateway::new(model, sh.gw);
    let mut submitted_at: HashMap<u64, Instant> = HashMap::new();
    let mut budgets: HashMap<u64, usize> = HashMap::new();
    let mut completions = Vec::new();
    let mut latencies_s = Vec::new();
    let mut rejected = 0usize;
    let mut next = 0usize;
    let t0 = Instant::now();
    while next < trace.len() || gw.queue_len() + gw.live_len() > 0 {
        while next < trace.len() && trace[next].at_tick <= gw.now() {
            match gw.submit(trace[next].request.clone()) {
                Ok(id) => {
                    submitted_at.insert(id, Instant::now());
                    budgets.insert(id, trace[next].request.max_new);
                }
                Err(_) => rejected += 1,
            }
            next += 1;
        }
        gw.tick();
        for c in gw.drain_completions() {
            latencies_s.push(submitted_at[&c.id].elapsed().as_secs_f64());
            completions.push(c);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = *gw.stats();

    // --- Serial baseline: same requests, one at a time, full-prompt
    // prefill, on an identically-shaped engine.
    let mut srng = TensorRng::seed_from(4242);
    let smodel = TransformerModel::new(sh.cfg.clone(), ProtectionConfig::full(), &mut srng);
    let mut serial = DecodeEngine::new(smodel);
    let s0 = Instant::now();
    let mut serial_tokens = 0usize;
    for ev in &trace {
        let mut s = serial.open_session(&ev.request.prompt, ev.request.seed);
        serial_tokens += serial
            .generate(&mut s, ev.request.max_new, sh.gw.sampling)
            .len();
    }
    let serial_s = s0.elapsed().as_secs_f64();

    // --- Metrics.
    latencies_s.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mut lat_ticks: Vec<f64> = completions
        .iter()
        .map(|c| (c.finished_at - c.submitted_at) as f64)
        .collect();
    lat_ticks.sort_by(|a, b| a.partial_cmp(b).expect("finite ticks"));
    let p50_ms = percentile(&latencies_s, 0.50) * 1e3;
    let p99_ms = percentile(&latencies_s, 0.99) * 1e3;
    let generated: usize = completions.iter().map(|c| c.generated().len()).sum();
    let expired = completions
        .iter()
        .filter(|c| c.reason == FinishReason::ExpiredInQueue)
        .count();
    let gw_tok_s = generated as f64 / wall_s;
    let serial_tok_s = serial_tokens as f64 / serial_s;
    let ratio = gw_tok_s / serial_tok_s;

    println!(
        "== continuous-batching gateway, {} (hidden {}, layers {}, {} requests, λ={}{}) ==",
        sh.cfg.name,
        sh.cfg.hidden,
        sh.cfg.layers,
        sh.requests,
        sh.lambda,
        if tiny { ", tiny smoke shape" } else { "" },
    );
    println!(
        "  completed {} / rejected {rejected} / expired {expired}; generated {generated} tokens in {wall_s:.3}s",
        completions.len(),
    );
    println!(
        "  latency p50 {p50_ms:.1} ms, p99 {p99_ms:.1} ms ({:.0}/{:.0} ticks)",
        percentile(&lat_ticks, 0.50),
        percentile(&lat_ticks, 0.99)
    );
    println!(
        "  throughput {gw_tok_s:.0} tok/s vs serial {serial_tok_s:.0} tok/s ({ratio:.2}x); {} engine steps, {} fed, {} parks",
        stats.engine_steps, stats.fed_tokens, stats.park_events,
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"shape\": {{\"hidden\": {}, \"heads\": {}, \"layers\": {}, \"vocab\": {}, \"requests\": {}, \"lambda\": {}, \"max_live\": {}, \"prefill_chunk\": {}, \"workers\": {}, \"tiny\": {}}},",
        sh.cfg.hidden, sh.cfg.heads, sh.cfg.layers, sh.cfg.vocab, sh.requests, sh.lambda,
        sh.gw.max_live, sh.gw.prefill_chunk, sh.gw.workers, tiny
    );
    let _ = writeln!(
        json,
        "  \"accounting\": {{\"submitted\": {}, \"completed\": {}, \"rejected\": {rejected}, \"expired\": {expired}}},",
        trace.len(),
        completions.len(),
    );
    let _ = writeln!(
        json,
        "  \"latency\": {{\"p50_ms\": {p50_ms:.3}, \"p99_ms\": {p99_ms:.3}, \"p50_ticks\": {:.1}, \"p99_ticks\": {:.1}}},",
        percentile(&lat_ticks, 0.50),
        percentile(&lat_ticks, 0.99),
    );
    let _ = writeln!(
        json,
        "  \"throughput\": {{\"gateway_tok_s\": {gw_tok_s:.1}, \"serial_tok_s\": {serial_tok_s:.1}, \"ratio\": {ratio:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"gateway_stats\": {{\"engine_steps\": {}, \"fed_tokens\": {}, \"generated_tokens\": {}, \"park_events\": {}, \"peak_hot_rows\": {}}},",
        stats.engine_steps, stats.fed_tokens, stats.generated_tokens, stats.park_events, stats.peak_hot_rows
    );
    let _ = writeln!(
        json,
        "  \"floors\": {{\"throughput_ratio_min\": {:.2}}}\n}}",
        sh.floor_throughput_ratio
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    // --- Floors. Accounting and degeneracy always hard-fail; the
    // wall-clock throughput floor degrades to advisory in the tiny CI
    // smoke shape (seconds of runtime inside shared-runner noise).
    let mut failed = false;
    if completions.len() + rejected != trace.len() {
        eprintln!(
            "FAIL: request accounting broken ({} completions + {rejected} rejected != {} submitted)",
            completions.len(),
            trace.len()
        );
        failed = true;
    }
    for c in &completions {
        if c.reason == FinishReason::TokenBudget && c.generated().len() != budgets[&c.id] {
            eprintln!(
                "FAIL: request {} finished by budget with {} of {} tokens",
                c.id,
                c.generated().len(),
                budgets[&c.id]
            );
            failed = true;
        }
        if !c.report.is_quiet() {
            eprintln!(
                "FAIL: fault-free serving raised ABFT activity on request {}",
                c.id
            );
            failed = true;
        }
    }
    if !(gw_tok_s.is_finite() && gw_tok_s > 0.0) {
        eprintln!("FAIL: degenerate gateway throughput {gw_tok_s}");
        failed = true;
    }
    if ratio < sh.floor_throughput_ratio {
        let tag = if tiny {
            "WARN (advisory in tiny mode)"
        } else {
            "FAIL"
        };
        eprintln!(
            "{tag}: gateway throughput below {:.2}x serial ({ratio:.2}x)",
            sh.floor_throughput_ratio
        );
        failed |= !tiny;
    }
    if failed {
        std::process::exit(1);
    }
    println!("perf floors: OK (throughput {ratio:.2}x serial, p99 {p99_ms:.1} ms)");
}
