//! **Ablation** — sensitivity of the detection tolerance `E`.
//!
//! EEC-ABFT flags a vector when `|δ1| > detect_tol · (Σ|v| + 1)`. Too tight
//! a tolerance false-positives on GEMM round-off (triggering needless
//! corrections that could themselves perturb values); too loose a tolerance
//! misses moderate-magnitude corruptions (extreme INF/NaN/near-INF values
//! are caught regardless — they poison δ1 outright).
//!
//! This binary sweeps `detect_tol` and reports, per setting:
//! * false-positive detections across fault-free protected forwards;
//! * the smallest injected error magnitude that is still detected.
//!
//! Run: `cargo run --release -p attn-bench --bin ablation_tolerance`

use attn_bench::TextTable;
use attn_tensor::rng::TensorRng;
use attnchecker::attention::{AttentionWeights, ProtectedAttention};
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::{AbftConfig, ProtectionConfig, Strategy};
use attnchecker::detect::full_correct;
use attnchecker::report::AbftReport;

fn main() {
    println!("== Ablation: detection tolerance E sensitivity ==\n");
    let mut rng = TensorRng::seed_from(2718);
    let weights = AttentionWeights::random(64, 4, &mut rng);
    let inputs: Vec<_> = (0..16).map(|_| rng.normal_matrix(32, 64, 0.8)).collect();

    let mut t = TextTable::new(&[
        "detect_tol",
        "false positives /16 fwd",
        "min detected |err|",
    ]);
    for tol in [1e-6f32, 1e-5, 1e-4, 5e-4, 1e-3, 1e-2, 1e-1] {
        let mut config = ProtectionConfig::full();
        config.abft.detect_tol = tol;
        let attn = ProtectedAttention::new(weights.clone(), config);

        // False positives over fault-free forwards.
        let mut fps = 0usize;
        for x in &inputs {
            let mut report = AbftReport::default();
            let _ = attn.forward_simple(x, &mut report);
            fps += report.detections;
        }

        // Detection floor: bisect the smallest moderate error magnitude a
        // 64-element checksummed vector still catches.
        let cfg = AbftConfig {
            detect_tol: tol,
            ..AbftConfig::default()
        };
        let base = rng.normal_matrix(16, 16, 1.0);
        let detect_at = |mag: f32| -> bool {
            let mut m = CheckedMatrix::encode_both(&base, Strategy::Fused);
            m.set(7, 9, m.get(7, 9) + mag);
            full_correct(&mut m, &cfg).total_detections() > 0
        };
        let mut lo = 1e-7f32;
        let mut hi = 1e3f32;
        if detect_at(lo) {
            hi = lo;
        } else {
            for _ in 0..48 {
                let mid = (lo.ln() * 0.5 + hi.ln() * 0.5).exp();
                if detect_at(mid) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
        }
        t.row(&[format!("{tol:.0e}"), fps.to_string(), format!("{hi:.2e}")]);
    }
    println!("{}", t.render());
    println!("The default 5e-4 sits at zero false positives while still catching");
    println!("corruptions orders of magnitude below the near-INF regime; extreme");
    println!("errors (INF/NaN/near-INF) are detected at every tolerance setting.");
}
