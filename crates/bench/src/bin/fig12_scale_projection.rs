//! **Fig 12 reproduction** — ATTNChecker overhead when training
//! multi-billion-parameter LLMs on a 1,024-GPU data-parallel cluster.
//!
//! Uses the analytic A100 + ring-allreduce step model (the paper likewise
//! simulates this figure). The property to reproduce: the overhead stays
//! essentially constant from 30B to 100B parameters.
//!
//! Run: `cargo run --release -p attn-bench --bin fig12_scale_projection`

use attn_bench::TextTable;
use attn_gpusim::scale::{simulate_step, BigModel, ClusterConfig};
use attn_gpusim::GpuModel;

fn main() {
    println!("== Fig 12: ATTNChecker overhead at 30B/60B/100B on 1,024 GPUs ==\n");
    let gpu = GpuModel::a100_80gb();
    let cluster = ClusterConfig::paper_1024();
    let mut t = TextTable::new(&[
        "Model",
        "params (B)",
        "step (s)",
        "attention fwd (s)",
        "allreduce (s)",
        "ABFT (s)",
        "overhead",
    ]);
    let mut overheads = Vec::new();
    for m in BigModel::fig12_sizes() {
        let b = simulate_step(&gpu, &m, &cluster);
        overheads.push(b.abft_overhead());
        t.row(&[
            m.label.to_string(),
            format!("{:.1}", m.params() / 1e9),
            format!("{:.3}", b.base_step),
            format!("{:.3}", b.attention_fwd),
            format!("{:.3}", b.allreduce),
            format!("{:.4}", b.abft),
            format!("{:.2}%", 100.0 * b.abft_overhead()),
        ]);
    }
    println!("{}", t.render());
    let spread = overheads.iter().cloned().fold(f64::MIN, f64::max)
        - overheads.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "overhead spread across sizes: {:.3} percentage points (paper: 6.32%→6.34%,",
        100.0 * spread
    );
    println!("i.e. flat — the reproduced property is the scale-invariance of the ratio).");
}
