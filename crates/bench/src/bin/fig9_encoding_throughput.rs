//! **Fig 9 reproduction** — checksum-encoding throughput vs batch size.
//!
//! Two complementary views:
//!
//! 1. **A100 projection** (the paper's actual figure): the analytic GPU
//!    model compares the cuBLAS GEMV composition against ATTNChecker's
//!    fused encoder, in TB/s against the 2 TB/s peak-bandwidth line.
//! 2. **CPU ground truth**: the real fused vs naive encoder implementations
//!    from this repo, measured in GB/s on the same workloads — showing the
//!    same single-pass-vs-two-pass shape on present hardware.
//!
//! Run: `cargo run --release -p attn-bench --bin fig9_encoding_throughput`

use attn_bench::timing::pct;
use attn_bench::{measure_encode_overhead, timing::measure, TextTable};
use attn_gpusim::encoding::{encoding_throughput_curve, EncodingWorkload, FIG9_BATCHES};
use attn_gpusim::GpuModel;
use attn_tensor::rng::TensorRng;
use attn_tensor::Batch3;
use attnchecker::checksum::{col_checksums_batch, col_checksums_batch_naive};

fn main() {
    println!("== Fig 9: Checksum encoding throughput ==\n");
    let gpu = GpuModel::a100_80gb();
    println!(
        "-- A100 model (peak memory bandwidth: {:.0} GB/s) --",
        gpu.mem_bw_gbs
    );
    let mut t = TextTable::new(&[
        "batch",
        "cuBLAS TB/s",
        "ATTNChecker TB/s",
        "speedup",
        "BW util",
    ]);
    for p in encoding_throughput_curve(&gpu, &FIG9_BATCHES) {
        t.row(&[
            p.batch.to_string(),
            format!("{:.3}", p.cublas_tbs),
            format!("{:.3}", p.fused_tbs),
            format!("{:.1}x", p.fused_tbs / p.cublas_tbs),
            format!("{:.1}%", 100.0 * p.fused_tbs / (gpu.mem_bw_gbs / 1000.0)),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: cuBLAS <10% of peak; ATTNChecker up to 91.4% (13×).\n");

    println!("-- CPU ground truth: batched fused vs two-pass naive encoder (this host) --");
    let mut rng = TensorRng::seed_from(3);
    let mut t = TextTable::new(&["batch", "slots", "naive GB/s", "fused GB/s", "speedup"]);
    for &batch in &[6usize, 12, 24, 48] {
        // Real batched slots at GPT-2-like per-head shape (seq × head_dim),
        // batch scaled down 4× to bound the working set on this host.
        let w = EncodingWorkload::gpt2_like(batch);
        let slots = w.batch * w.heads;
        let mut b = Batch3::zeros(slots, w.seq, w.head_dim);
        for v in b.data_mut().iter_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        let bytes = (b.data().len() * 4) as f64;
        let naive = measure(1, 5, || {
            std::hint::black_box(col_checksums_batch_naive(std::hint::black_box(&b)));
        });
        let fused = measure(1, 5, || {
            std::hint::black_box(col_checksums_batch(std::hint::black_box(&b)));
        });
        t.row(&[
            batch.to_string(),
            slots.to_string(),
            format!("{:.2}", bytes / naive.mean.as_secs_f64() / 1e9),
            format!("{:.2}", bytes / fused.mean.as_secs_f64() / 1e9),
            format!(
                "{:.2}x",
                naive.mean.as_secs_f64() / fused.mean.as_secs_f64()
            ),
        ]);
    }
    println!("{}", t.render());
    println!("(The CPU gap reflects single-pass + slot-parallel vs two-pass sequential;");
    println!("the A100 gap additionally includes occupancy and launch effects captured");
    println!("by the model above.)\n");

    // The fusion claim itself, per protected GEMM: encoding as a standalone
    // sweep + augmented product vs encoding riding inside the GEMM's
    // packing pass. Overheads are relative to the unprotected product.
    println!("-- CPU ground truth: standalone encode-then-GEMM vs fused encode-in-GEMM --");
    let mut t = TextTable::new(&[
        "GEMM shape",
        "plain (ms)",
        "standalone enc overhead",
        "fused enc overhead",
    ]);
    for &(m, k, n) in &[(64, 256, 64), (128, 512, 128), (256, 256, 256)] {
        let e = measure_encode_overhead(m, k, n, 7, 3);
        t.row(&[
            format!("{m}x{k}x{n}"),
            format!("{:.3}", e.plain_ms),
            pct(e.standalone),
            pct(e.fused),
        ]);
    }
    println!("{}", t.render());
    println!("Fused encoding accumulates the checksum projections inside the packing");
    println!("pass and streams the checksum border without re-packing — the separate");
    println!("encode sweep, the augmented copy, and its allocation all disappear.");
}
