//! **§5.5 reproduction** — overhead of the correction paths themselves.
//!
//! The paper decomposes recovery cost by error class:
//!
//! * 0D errors: ~0.3% step overhead on average;
//! * 1D propagated errors (from Q/K/V): ~0.7%;
//! * errors in `O`: ~3.9% (corrected in the larger merged matrix).
//!
//! This binary measures the protected step time with a fault of each class
//! against the protected fault-free step, isolating pure correction cost.
//!
//! Run: `cargo run --release -p attn-bench --bin sec55_correction_cost`

use attn_bench::timing::pct;
use attn_bench::{build_trainer, dataset_for, TextTable};
use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig};
use attn_model::Example;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;

const BATCH: usize = 8;
const REPEATS: usize = 8;

fn mean_step(config: &ModelConfig, batch: &[&Example], spec: Option<InjectionSpec>) -> f64 {
    let mut tr = build_trainer(config, ProtectionConfig::full(), 42);
    let _ = tr.train_step(batch);
    let mut total = 0.0;
    for r in 0..REPEATS {
        let out = match spec {
            Some(s) => tr.train_step_injected(batch, Some((r % batch.len(), s))),
            None => tr.train_step(batch),
        };
        assert!(!out.non_trainable);
        total += out.step_time.as_secs_f64();
    }
    total / REPEATS as f64
}

fn main() {
    println!("== §5.5: correction-path overhead by error class ==\n");
    let config = ModelConfig::bert_base();
    let ds = dataset_for(&config, BATCH * 2, 23);
    let batch: Vec<&Example> = ds.examples.iter().take(BATCH).collect();

    let clean = mean_step(&config, &batch, None);

    let cases = [
        (
            "0D in AS (direct correction)",
            InjectionSpec {
                layer: 0,
                op: AttnOp::AS,
                head: 0,
                row: 4,
                col: 9,
                kind: FaultKind::Inf,
            },
            "0.3%",
        ),
        (
            "1D from Q (propagated row)",
            InjectionSpec {
                layer: 0,
                op: AttnOp::Q,
                head: 0,
                row: 3,
                col: 7,
                kind: FaultKind::NaN,
            },
            "0.7%",
        ),
        (
            "1D from V (propagated col)",
            InjectionSpec {
                layer: 0,
                op: AttnOp::V,
                head: 1,
                row: 5,
                col: 2,
                kind: FaultKind::NearInf,
            },
            "0.7%",
        ),
        (
            "0D in O (merged matrix)",
            InjectionSpec {
                layer: 1,
                op: AttnOp::O,
                head: 0,
                row: 6,
                col: 11,
                kind: FaultKind::Inf,
            },
            "3.9%",
        ),
    ];

    let mut t = TextTable::new(&["error class", "step (ms)", "correction overhead", "paper"]);
    t.row(&[
        "fault-free (reference)".to_string(),
        format!("{:.2}", clean * 1e3),
        "-".to_string(),
        "-".to_string(),
    ]);
    for (label, spec, paper) in cases {
        let faulty = mean_step(&config, &batch, Some(spec));
        t.row(&[
            label.to_string(),
            format!("{:.2}", faulty * 1e3),
            pct(((faulty - clean) / clean).max(0.0)),
            paper.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(Correction work is confined to the faulty vectors, so overheads are");
    println!("single-digit percent; O is costlier because the merged matrix is larger.)");
}
