//! **Decoding engine benchmark** — machine-readable perf trajectory for
//! the ABFT-protected KV-cached serving path.
//!
//! Measures, on an LM-shaped GPT-2 config:
//!
//! * prefill tokens/s (the full protected forward that seeds a session);
//! * decode tokens/s with the KV cache, protected vs unprotected — the
//!   protected/unprotected ratio is the serving-time ABFT overhead (the
//!   single-query image of the paper's Fig 7 training overhead);
//! * the no-cache baseline: re-running the full protected forward over the
//!   grown prefix per token, which is what the repo could do before this
//!   engine existed.
//!
//! Writes `BENCH_decode.json` into the working directory and exits
//! non-zero when a perf floor regresses (cached decode not faster than
//! full recompute; protected decode overhead beyond bound). Set
//! `BENCH_DECODE_TINY=1` for the CI smoke shape (seconds, floors kept
//! conservative).
//!
//! Run: `cargo run --release -p attn_bench --bin bench_decode`

use attn_bench::TextTable;
use attn_infer::{DecodeEngine, Sampling};
use attn_model::model::{ModelConfig, TransformerModel};
use attn_tensor::rng::TensorRng;
use attnchecker::attention::SectionToggles;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;
use std::fmt::Write as _;
use std::time::Instant;

struct Shape {
    cfg: ModelConfig,
    prompt_len: usize,
    decode_len: usize,
    trials: usize,
    /// Cached decode must beat full recompute by at least this factor.
    floor_cached_speedup: f64,
    /// Protected decode may cost at most this multiple of unprotected.
    ceil_protected_ratio: f64,
}

fn shape(tiny: bool) -> Shape {
    let mut cfg = ModelConfig::gpt2();
    if tiny {
        cfg.hidden = 32;
        cfg.heads = 2;
        cfg.layers = 1;
        cfg.vocab = 64;
        cfg.max_seq = 24;
    } else {
        cfg.hidden = 64;
        cfg.heads = 4;
        cfg.layers = 2;
        cfg.vocab = 128;
        cfg.max_seq = 96;
    }
    cfg.num_classes = cfg.vocab; // LM head: sampled ids feed back as inputs
    Shape {
        prompt_len: if tiny { 4 } else { 16 },
        decode_len: if tiny { 8 } else { 48 },
        trials: if tiny { 2 } else { 5 },
        // Cached decode is O(L·d) per token vs O(L·d²+L²·d) for the
        // recompute baseline; the floors leave a wide noise margin below
        // the measured headroom.
        floor_cached_speedup: if tiny { 1.05 } else { 1.3 },
        // Checksummed single-query GEMMs carry 2 border rows next to 1
        // data row, so protected decode pays up to ~3x GEMM flops plus
        // detection sweeps; 5x is the honest generous bound.
        ceil_protected_ratio: 5.0,
        cfg,
    }
}

fn model(cfg: &ModelConfig, protection: ProtectionConfig) -> TransformerModel {
    let mut rng = TensorRng::seed_from(4242);
    TransformerModel::new(cfg.clone(), protection, &mut rng)
}

fn prompt_tokens(cfg: &ModelConfig, len: usize) -> Vec<usize> {
    (0..len).map(|i| (i * 67 + 11) % cfg.vocab).collect()
}

/// Fastest wall time (secs) of prefilling `prompt` into a fresh session.
fn time_prefill(engine: &mut DecodeEngine, prompt: &[usize], trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for t in 0..=trials {
        let t0 = Instant::now();
        let s = engine.open_session(prompt, t as u64);
        let dt = t0.elapsed().as_secs_f64();
        drop(s);
        if t > 0 {
            // iteration 0 is warm-up (arena fill, page faults)
            best = best.min(dt);
        }
    }
    best
}

/// Fastest wall time (secs) of generating `n` tokens on a fresh session.
fn time_decode(engine: &mut DecodeEngine, prompt: &[usize], n: usize, trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for t in 0..=trials {
        let mut s = engine.open_session(prompt, t as u64);
        let t0 = Instant::now();
        let _ = engine.generate(&mut s, n, Sampling::Greedy);
        let dt = t0.elapsed().as_secs_f64();
        if t > 0 {
            best = best.min(dt);
        }
    }
    best
}

/// Fastest wall time (secs) of generating `n` tokens WITHOUT a KV cache:
/// re-run the full protected forward over the grown prefix per token.
fn time_recompute(m: &TransformerModel, prompt: &[usize], n: usize, trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for t in 0..=trials {
        let mut tokens = prompt.to_vec();
        let mut report = AbftReport::default();
        let mut rng = TensorRng::seed_from(0); // greedy ignores it
        let t0 = Instant::now();
        for _ in 0..n {
            let (logits, _) = m.forward_tape(&tokens, SectionToggles::all(), None, &mut report);
            // The engine's own sampling, so both paths share one greedy
            // definition (NaN guard included).
            tokens.push(attn_infer::sampling::sample_token(
                &logits,
                Sampling::Greedy,
                &mut rng,
            ));
        }
        let dt = t0.elapsed().as_secs_f64();
        if t > 0 {
            best = best.min(dt);
        }
    }
    best
}

fn main() {
    let tiny = std::env::var("BENCH_DECODE_TINY").is_ok_and(|v| v != "0" && !v.is_empty());
    let sh = shape(tiny);
    let prompt = prompt_tokens(&sh.cfg, sh.prompt_len);

    let mut on = DecodeEngine::new(model(&sh.cfg, ProtectionConfig::full()));
    let mut off = DecodeEngine::new(model(&sh.cfg, ProtectionConfig::off()));
    let recompute_model = model(&sh.cfg, ProtectionConfig::full());

    let prefill_on = time_prefill(&mut on, &prompt, sh.trials);
    let prefill_off = time_prefill(&mut off, &prompt, sh.trials);
    let decode_on = time_decode(&mut on, &prompt, sh.decode_len, sh.trials);
    let decode_off = time_decode(&mut off, &prompt, sh.decode_len, sh.trials);
    let recompute = time_recompute(&recompute_model, &prompt, sh.decode_len, sh.trials);

    let tok_s = |n: usize, secs: f64| n as f64 / secs;
    let prefill_on_ts = tok_s(sh.prompt_len, prefill_on);
    let prefill_off_ts = tok_s(sh.prompt_len, prefill_off);
    let decode_on_ts = tok_s(sh.decode_len, decode_on);
    let decode_off_ts = tok_s(sh.decode_len, decode_off);
    let recompute_ts = tok_s(sh.decode_len, recompute);
    let protected_ratio = decode_on / decode_off;
    let cached_speedup = recompute / decode_on;

    let mut t = TextTable::new(&["path", "protected tok/s", "unprotected tok/s", "ratio"]);
    t.row(&[
        "prefill".into(),
        format!("{prefill_on_ts:.0}"),
        format!("{prefill_off_ts:.0}"),
        format!("{:.2}x", prefill_on / prefill_off),
    ]);
    t.row(&[
        "decode (KV cache)".into(),
        format!("{decode_on_ts:.0}"),
        format!("{decode_off_ts:.0}"),
        format!("{protected_ratio:.2}x"),
    ]);
    t.row(&[
        "decode (full recompute)".into(),
        format!("{recompute_ts:.0}"),
        "-".into(),
        format!("{cached_speedup:.2}x slower than cached"),
    ]);
    println!(
        "== ABFT-protected decoding, {} (hidden {}, layers {}, prompt {}, +{} tokens{}) ==\n{}",
        sh.cfg.name,
        sh.cfg.hidden,
        sh.cfg.layers,
        sh.prompt_len,
        sh.decode_len,
        if tiny { ", tiny smoke shape" } else { "" },
        t.render()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"shape\": {{\"hidden\": {}, \"heads\": {}, \"layers\": {}, \"vocab\": {}, \"prompt\": {}, \"decode\": {}, \"tiny\": {}}},",
        sh.cfg.hidden, sh.cfg.heads, sh.cfg.layers, sh.cfg.vocab, sh.prompt_len, sh.decode_len, tiny
    );
    let _ = writeln!(
        json,
        "  \"prefill\": {{\"protected_tok_s\": {prefill_on_ts:.1}, \"unprotected_tok_s\": {prefill_off_ts:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"decode\": {{\"protected_tok_s\": {decode_on_ts:.1}, \"unprotected_tok_s\": {decode_off_ts:.1}, \"protected_ratio\": {protected_ratio:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"recompute\": {{\"protected_tok_s\": {recompute_ts:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"cached_speedup_vs_recompute\": {cached_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"floors\": {{\"cached_speedup_min\": {:.2}, \"protected_ratio_max\": {:.2}}}\n}}",
        sh.floor_cached_speedup, sh.ceil_protected_ratio
    );
    std::fs::write("BENCH_decode.json", &json).expect("write BENCH_decode.json");
    println!("wrote BENCH_decode.json");

    // Perf floors — enforced, not just recorded (the bench_gemm pattern).
    // In the tiny CI smoke shape only 8 tokens are timed, so wall-clock
    // ratios sit inside shared-runner noise: the speed floors degrade to
    // advisory warnings there, while the degenerate-throughput check (did
    // the engine actually decode?) always hard-fails.
    let enforce_speed = !tiny;
    let mut failed = false;
    if cached_speedup < sh.floor_cached_speedup {
        let tag = if enforce_speed {
            "FAIL"
        } else {
            "WARN (advisory in tiny mode)"
        };
        eprintln!(
            "{tag}: KV-cached decode below {:.2}x full recompute ({cached_speedup:.2}x)",
            sh.floor_cached_speedup
        );
        failed |= enforce_speed;
    }
    if protected_ratio > sh.ceil_protected_ratio {
        let tag = if enforce_speed {
            "FAIL"
        } else {
            "WARN (advisory in tiny mode)"
        };
        eprintln!(
            "{tag}: protected decode overhead beyond {:.1}x unprotected ({protected_ratio:.2}x)",
            sh.ceil_protected_ratio
        );
        failed |= enforce_speed;
    }
    if !(decode_on_ts.is_finite() && decode_on_ts > 0.0) {
        eprintln!("FAIL: degenerate decode throughput {decode_on_ts}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "perf floors: OK (cached {cached_speedup:.2}x recompute, protected {protected_ratio:.2}x unprotected)"
    );
}
