//! **Table 3 reproduction** — GEMM share of the attention mechanism.
//!
//! Counts attention-mechanism flops at the published model dimensions
//! (hidden 768, 12 heads, MRPC-length sequences) and prints the share spent
//! in the six GEMMs. The paper reports 99.3%–99.7% across the four models,
//! which justifies protecting only the GEMMs.
//!
//! Run: `cargo run --release -p attn-bench --bin table3_gemm_ratio`

use attn_bench::TextTable;
use attn_model::flops::table3_rows;

fn main() {
    println!("== Table 3: GEMM workload share of the attention mechanism ==\n");
    let mut t = TextTable::new(&[
        "Model",
        "GEMM Gflop",
        "softmax Mflop",
        "other Mflop",
        "GEMM ratio",
        "paper",
    ]);
    let paper = ["99.7%", "99.5%", "99.3%", "99.7%"];
    for ((name, dims), paper_cell) in table3_rows().into_iter().zip(paper) {
        t.row(&[
            name.to_string(),
            format!("{:.3}", dims.total_gemm_flops() / 1e9),
            format!("{:.2}", dims.softmax_flops() / 1e6),
            format!("{:.2}", dims.other_flops() / 1e6),
            format!("{:.1}%", 100.0 * dims.gemm_ratio()),
            paper_cell.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Per-layer forward counts at paper-scale dims (seq 128, hidden 768, 12 heads).");
}
