//! **Fig 8 reproduction** — ATTNChecker with vs without GPU-style
//! optimizations (batch 16).
//!
//! Three interleaved configurations per model:
//!
//! * **Original** — no protection;
//! * **ATTNChecker(Non-OPT)** — the `Strategy::Separate` path: every
//!   checksum produced/updated by separate passes with their own
//!   temporaries and assembly copies (a cuBLAS-composed implementation);
//! * **ATTNChecker** — the fused path (checksums packed into the operands,
//!   single-pass encoders).
//!
//! The paper measures the non-optimized variant at 62–93% attention
//! overhead vs 7–13% optimized (up to 8.6× reduction).
//!
//! Run: `cargo run --release -p attn-bench --bin fig8_opt_ablation`

use attn_bench::timing::pct;
use attn_bench::{build_trainer, dataset_full_seq, measure_interleaved, TextTable};
use attn_gpusim::abft_cost::{fig8_projection, AbftWorkload};
use attn_gpusim::GpuModel;
use attn_model::model::ModelConfig;
use attn_model::Example;
use attnchecker::config::ProtectionConfig;

const BATCH: usize = 16;
const WARMUP: usize = 1;
const STEPS: usize = 11;

fn main() {
    println!("== Fig 8: overhead with and without the §4.6 optimizations (batch {BATCH}) ==\n");
    let mut attn_table =
        TextTable::new(&["Model", "Non-OPT overhead", "OPT overhead", "reduction"]);
    let mut step_table =
        TextTable::new(&["Model", "Non-OPT overhead", "OPT overhead", "reduction"]);
    for config in ModelConfig::paper_four() {
        let config = config.scaled_for_timing();
        let ds = dataset_full_seq(&config, BATCH, 13);
        let batch: Vec<&Example> = ds.examples.iter().collect();
        // Attention-only scope, so the columns stay comparable with the
        // paper's measurement (S_FFN is the end-to-end extension and is
        // reported separately by fig7_overhead).
        let mut off = build_trainer(&config, ProtectionConfig::off(), 42);
        let mut sep = build_trainer(
            &config,
            ProtectionConfig::full_unoptimized().ffn_frequency(0.0),
            42,
        );
        let mut fus = build_trainer(&config, ProtectionConfig::attention_only(), 42);
        let times = measure_interleaved(&mut [&mut off, &mut sep, &mut fus], &batch, WARMUP, STEPS);
        let (base, non_opt, opt) = (times[0], times[1], times[2]);

        let a_sep = non_opt.attn_overhead_vs(&base);
        let a_fus = opt.attn_overhead_vs(&base);
        let s_sep = non_opt.step_overhead_vs(&base);
        let s_fus = opt.step_overhead_vs(&base);
        attn_table.row(&[
            config.name.clone(),
            pct(a_sep),
            pct(a_fus),
            format!("{:.1}x", (a_sep / a_fus.max(1e-6)).max(0.0)),
        ]);
        step_table.row(&[
            config.name.clone(),
            pct(s_sep),
            pct(s_fus),
            format!("{:.1}x", (s_sep / s_fus.max(1e-6)).max(0.0)),
        ]);
    }
    println!(
        "-- Attention mechanism (measured, CPU substrate) --\n{}",
        attn_table.render()
    );
    println!(
        "-- Per-step training (measured, CPU substrate) --\n{}",
        step_table.render()
    );

    // GPU-side projection: on the A100 the gap additionally includes the
    // kernel-launch storm and the tall-skinny cuBLAS traffic of the
    // unfused composition, which a CPU cannot exhibit.
    let gpu = GpuModel::a100_80gb();
    let (non_opt, opt) = fig8_projection(&gpu, &AbftWorkload::fig8_default());
    println!("-- A100 projection (batch 16, BERT-base dims) --");
    println!(
        "Non-OPT attention overhead: {}   OPT: {}   reduction: {:.1}x\n",
        pct(non_opt),
        pct(opt),
        non_opt / opt
    );
    println!("Paper reference: Non-OPT 62–93% vs OPT 7–13% on attention (up to 8.6×);");
    println!("Non-OPT 23–40% vs OPT 4–9% per step (up to 6.0×).");
}
