//! **Table 2 reproduction** — error propagation patterns in the attention
//! mechanism.
//!
//! For each fault type (INF / NaN / near-INF) and each injection site
//! (Q, K, V, AS, CL), run one *unprotected* attention forward with a single
//! fault planted mid-pipeline, then classify the corrupted region of every
//! downstream matrix (Q, K, V, AS, AP, CL, O) against a fault-free
//! reference run, in the paper's `pattern-type` glyph notation
//! (`1R-Θ`, `1C-∞*`, `2D-M`, …).
//!
//! Run: `cargo run --release -p attn-bench --bin table2_propagation`

use attn_bench::TextTable;
use attn_fault::pattern::{classify, PropagationReport};
use attn_fault::FaultKind;
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use attnchecker::attention::{
    AttentionWeights, AttnOp, FaultSite, ForwardOptions, ProtectedAttention, SectionToggles,
};
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;
use std::collections::HashMap;

const SEQ: usize = 24;
const HIDDEN: usize = 32;
const HEADS: usize = 4;

struct Snapshot {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    asc: Matrix, // per-head 0 scores (pre-softmax)
    ap: Matrix,
    cl: Matrix,
    o: Matrix,
}

fn run_once(
    attn: &ProtectedAttention,
    x: &Matrix,
    inject: Option<(AttnOp, FaultKind, usize, usize)>,
) -> Snapshot {
    let mut fired = false;
    let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
        let Some((op, kind, r, c)) = inject else {
            return;
        };
        if fired || site.op != op {
            return;
        }
        if let Some(h) = site.head {
            if h != 0 {
                return;
            }
        }
        fired = true;
        let (r, c) = (r % m.rows(), c % m.cols());
        let old = m.get(r, c);
        m.set(r, c, kind.apply(old));
    };
    let mut report = AbftReport::default();
    let out = attn.forward(
        x,
        ForwardOptions {
            mask: None,
            toggles: SectionToggles::none(),
            hook: inject.is_some().then_some(&mut hook as _),
        },
        &mut report,
    );
    Snapshot {
        q: out.cache.q.clone(),
        k: out.cache.k.clone(),
        v: out.cache.v.clone(),
        asc: out.cache.scores[0].clone(),
        ap: out.cache.ap[0].clone(),
        cl: out.cache.cl.clone(),
        o: out.output,
    }
}

fn cell(reference: &Matrix, corrupted: &Matrix) -> String {
    let rep: PropagationReport = classify(reference, corrupted, 1e-3);
    rep.cell()
}

fn main() {
    println!("== Table 2: Error Propagation Patterns in Attention Mechanism ==");
    println!("(FI = fault-injected matrix; per-head matrices shown for head 0)\n");

    let mut rng = TensorRng::seed_from(2024);
    let weights = AttentionWeights::random(HIDDEN, HEADS, &mut rng);
    let attn = ProtectedAttention::new(weights, ProtectionConfig::off());
    let x = rng.normal_matrix(SEQ, HIDDEN, 0.5);
    let clean = run_once(&attn, &x, None);

    let kinds: [(&str, FaultKind); 3] = [
        ("INF(∞)", FaultKind::Inf),
        ("NaN(Θ)", FaultKind::NaN),
        ("nINF(N)", FaultKind::NearInf),
    ];
    let sites = [AttnOp::Q, AttnOp::K, AttnOp::V, AttnOp::AS, AttnOp::CL];
    // A handful of victim positions; the modal pattern per cell is printed
    // (the paper aggregates ~5,000 positions; patterns are positional-
    // invariant so a few suffice for the modal cell). Columns stay inside
    // head 0 so the displayed per-head matrices always see the fault.
    let positions = [(3usize, 5usize), (11, 2), (7, 6), (0, 0), (17, 1)];

    for (kind_label, kind) in kinds {
        println!("-- Inject {kind_label} --");
        let mut table = TextTable::new(&["FI site", "Q", "K", "V", "AS", "AP", "CL", "O"]);
        for site in sites {
            let mut cell_votes: Vec<HashMap<String, usize>> =
                (0..7).map(|_| HashMap::new()).collect();
            for &(r, c) in &positions {
                let faulty = run_once(&attn, &x, Some((site, kind, r, c)));
                let cells = [
                    cell(&clean.q, &faulty.q),
                    cell(&clean.k, &faulty.k),
                    cell(&clean.v, &faulty.v),
                    cell(&clean.asc, &faulty.asc),
                    cell(&clean.ap, &faulty.ap),
                    cell(&clean.cl, &faulty.cl),
                    cell(&clean.o, &faulty.o),
                ];
                for (votes, c) in cell_votes.iter_mut().zip(cells) {
                    *votes.entry(c).or_insert(0) += 1;
                }
            }
            let modal: Vec<String> = cell_votes
                .iter()
                .enumerate()
                .map(|(i, votes)| {
                    // Prefer corruption evidence: vote among non-clean cells
                    // when any exist (ties broken lexicographically for
                    // determinism).
                    let pick = |clean: bool| {
                        votes
                            .iter()
                            .filter(|(c, _)| (c.as_str() == "-") == clean)
                            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                            .map(|(c, _)| c.clone())
                    };
                    let m = pick(false)
                        .or_else(|| pick(true))
                        .unwrap_or_else(|| "-".into());
                    // Mark the injected matrix like the paper's "FI".
                    let is_fi = matches!(
                        (i, site),
                        (0, AttnOp::Q)
                            | (1, AttnOp::K)
                            | (2, AttnOp::V)
                            | (3, AttnOp::AS)
                            | (5, AttnOp::CL)
                    );
                    if is_fi {
                        format!("FI({m})")
                    } else {
                        m
                    }
                })
                .collect();
            let mut row = vec![site.label().to_string()];
            row.extend(modal);
            table.row(&row);
        }
        println!("{}", table.render());
    }

    println!("Paper reference (Table 2): Q→AS:1R, K→AS:1C then 2D downstream,");
    println!("V→CL:1C, AS→AP..O:1R, CL→O:1R; INF turns to NaN through softmax.");
}
