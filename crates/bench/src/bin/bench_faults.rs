//! **Guarded-op fault campaign** — taxonomy-driven detection/correction
//! rates for every guard tier the non-GEMM protection work added:
//!
//! * **verify-level**: each `attn_tensor::guard::verify_*` entry is driven
//!   directly — compute a clean output, tamper it with one fault class,
//!   verify, and check the heal restored the fault-free bits;
//! * **optimizer moments**: AdamW `m`/`v` digests — corrupt a moment at
//!   rest between two guarded steps and require the healed step to be
//!   bit-identical to a fault-free twin;
//! * **KV at rest**: park a decode session, corrupt a cold K/V cell (or
//!   row region), unpark, and require the checksum sweep to detect and the
//!   continued decode to match the fault-free token stream;
//! * **end-to-end train**: `train_step_injected` at GEMM sites — the
//!   pre-existing ABFT tier, re-measured so one artifact covers the whole
//!   step;
//! * **fault-free sweep**: every tier runs clean trials; any detection is
//!   a false positive.
//!
//! Fault classes: the paper's extreme set (`INF`/`-INF`/`NaN`/`nINF`,
//! §2.2) plus `sub` (a mantissa flip below every magnitude threshold),
//! `stuck` (a whole row repeating one value), and `burst` (consecutive
//! exponent flips along a row).
//!
//! Enforced floors (exit non-zero on violation):
//!
//! * zero detections across all fault-free trials (the bitwise adoption
//!   gate makes false positives structural, not statistical);
//! * 100% detection AND bit-exact correction for the extreme classes on
//!   every verify-level guard;
//! * 100% detection + bit-exact heal for single-cell classes on the
//!   optimizer moments; 100% detection for the region classes;
//! * 100% detection for extreme classes injected into at-rest K/V data;
//! * 100% detection, zero non-trainable steps for extreme classes at the
//!   end-to-end GEMM sites.
//!
//! Sub-threshold (`sub`) rates on the invariant screens are *recorded*,
//! not floored: a perturbation below the screen tolerance is invisible by
//! design to tolerance screens (the exact tiers — moment digests — still
//! catch it), and the artifact documents exactly that boundary.
//!
//! Writes `BENCH_faults.json`. Set `BENCH_FAULTS_TINY=1` for the CI smoke
//! shape. Run: `cargo run --release -p attn_bench --bin bench_faults`

use attn_bench::{build_trainer, dataset_for, TextTable};
use attn_fault::{near_inf_flip, run_campaign, FaultInjector, FaultKind};
use attn_model::model::{InjectionSpec, ModelConfig, TransformerModel};
use attn_model::{AdamW, DecodeState, Example, HasParams, Param};
use attn_tensor::guard::{
    verify_gelu, verify_gelu_backward, verify_layer_norm, verify_layer_norm_backward,
    verify_rowsum_add, verify_softmax_backward, verify_softmax_rows,
};
use attn_tensor::ops::{
    gelu_backward, gelu_matrix, layer_norm, layer_norm_backward, softmax_rows,
    softmax_rows_backward,
};
use attn_tensor::rng::TensorRng;
use attn_tensor::{Matrix, OpGuard};
use attnchecker::attention::{AttnOp, SectionToggles};
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;
use std::fmt::Write as _;

const BURST_LEN: usize = 3;

/// The full taxonomy one campaign cell is run per (class × site).
const CLASSES: [FaultKind; 7] = [
    FaultKind::Inf,
    FaultKind::NegInf,
    FaultKind::NaN,
    FaultKind::NearInf,
    FaultKind::SubThreshold,
    FaultKind::StuckRow,
    FaultKind::Burst { len: BURST_LEN },
];

fn guard() -> OpGuard {
    let cfg = ProtectionConfig::full();
    OpGuard::new(true, cfg.abft.detect_tol)
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Plant `kind` at a random location of `m` (region kinds corrupt a span).
fn tamper(m: &mut Matrix, kind: FaultKind, rng: &mut TensorRng) {
    let mut inj = FaultInjector::new(rng.next_u64());
    if kind.is_single_cell() {
        inj.inject_random(m, kind);
    } else {
        inj.inject_region_random(m, kind);
    }
}

/// One trial's verdict. `detected` is the guard's own claim; `corrected`
/// is ground truth — the final state is bit-identical to the fault-free
/// computation.
#[derive(Clone, Copy)]
struct Outcome {
    detected: bool,
    corrected: bool,
}

fn outcome(g: &OpGuard, bit_exact: bool) -> Outcome {
    Outcome {
        detected: g.stats().detections > 0,
        corrected: bit_exact,
    }
}

// ---------------------------------------------------------------------------
// verify-level sites
// ---------------------------------------------------------------------------

type SiteFn = fn(&mut TensorRng, Option<FaultKind>) -> Outcome;

fn site_softmax(rng: &mut TensorRng, fault: Option<FaultKind>) -> Outcome {
    let x = rng.uniform_matrix(4, 12, -4.0, 4.0);
    let clean = softmax_rows(&x);
    let mut y = clean.clone();
    if let Some(k) = fault {
        tamper(&mut y, k, rng);
    }
    let g = guard();
    verify_softmax_rows(&x, &mut y, &g);
    outcome(&g, bits_eq(y.data(), clean.data()))
}

fn site_softmax_backward(rng: &mut TensorRng, fault: Option<FaultKind>) -> Outcome {
    let x = rng.uniform_matrix(4, 12, -4.0, 4.0);
    let y = softmax_rows(&x);
    let dy = rng.uniform_matrix(4, 12, -2.0, 2.0);
    let clean = softmax_rows_backward(&y, &dy);
    let mut dx = clean.clone();
    if let Some(k) = fault {
        tamper(&mut dx, k, rng);
    }
    let g = guard();
    verify_softmax_backward(&y, &dy, &mut dx, &g);
    outcome(&g, bits_eq(dx.data(), clean.data()))
}

fn ln_params(rng: &mut TensorRng, d: usize) -> (Vec<f32>, Vec<f32>) {
    let gamma: Vec<f32> = (0..d).map(|_| rng.uniform(0.5, 1.5)).collect();
    let beta: Vec<f32> = (0..d).map(|_| rng.uniform(-0.5, 0.5)).collect();
    (gamma, beta)
}

fn site_layer_norm(rng: &mut TensorRng, fault: Option<FaultKind>) -> Outcome {
    let x = rng.uniform_matrix(4, 16, -3.0, 3.0);
    let (gamma, beta) = ln_params(rng, 16);
    let eps = 1e-5;
    let (clean, _) = layer_norm(&x, &gamma, &beta, eps);
    let (mut out, mut cache) = layer_norm(&x, &gamma, &beta, eps);
    if let Some(k) = fault {
        tamper(&mut out, k, rng);
    }
    let g = guard();
    verify_layer_norm(&x, &gamma, &beta, eps, &mut out, &mut cache, &g);
    outcome(&g, bits_eq(out.data(), clean.data()))
}

fn site_layer_norm_backward(rng: &mut TensorRng, fault: Option<FaultKind>) -> Outcome {
    let x = rng.uniform_matrix(4, 16, -3.0, 3.0);
    let (gamma, beta) = ln_params(rng, 16);
    let (_, cache) = layer_norm(&x, &gamma, &beta, 1e-5);
    let dy = rng.uniform_matrix(4, 16, -2.0, 2.0);
    let (clean_dx, clean_dg, clean_db) = layer_norm_backward(&dy, &cache, &gamma);
    let (mut dx, mut dgamma, mut dbeta) = layer_norm_backward(&dy, &cache, &gamma);
    if let Some(k) = fault {
        tamper(&mut dx, k, rng);
    }
    let g = guard();
    verify_layer_norm_backward(&dy, &cache, &gamma, &mut dx, &mut dgamma, &mut dbeta, &g);
    let bits = bits_eq(dx.data(), clean_dx.data())
        && bits_eq(&dgamma, &clean_dg)
        && bits_eq(&dbeta, &clean_db);
    outcome(&g, bits)
}

fn site_gelu(rng: &mut TensorRng, fault: Option<FaultKind>) -> Outcome {
    let x = rng.uniform_matrix(4, 16, -4.0, 4.0);
    let clean = gelu_matrix(&x);
    let mut y = clean.clone();
    if let Some(k) = fault {
        tamper(&mut y, k, rng);
    }
    let g = guard();
    verify_gelu(&x, &mut y, &g);
    outcome(&g, bits_eq(y.data(), clean.data()))
}

fn site_gelu_backward(rng: &mut TensorRng, fault: Option<FaultKind>) -> Outcome {
    let x = rng.uniform_matrix(4, 16, -4.0, 4.0);
    let dy = rng.uniform_matrix(4, 16, -2.0, 2.0);
    let clean = gelu_backward(&x, &dy);
    let mut dx = clean.clone();
    if let Some(k) = fault {
        tamper(&mut dx, k, rng);
    }
    let g = guard();
    verify_gelu_backward(&x, &dy, &mut dx, &g);
    outcome(&g, bits_eq(dx.data(), clean.data()))
}

fn site_residual_add(rng: &mut TensorRng, fault: Option<FaultKind>) -> Outcome {
    let a = rng.uniform_matrix(4, 16, -2.0, 2.0);
    let b = rng.uniform_matrix(4, 16, -2.0, 2.0);
    let clean = a.add(&b);
    let mut out = clean.clone();
    if let Some(k) = fault {
        tamper(&mut out, k, rng);
    }
    let g = guard();
    for r in 0..out.rows() {
        verify_rowsum_add(a.row(r), b.row(r), out.row_mut(r), &g);
    }
    outcome(&g, bits_eq(out.data(), clean.data()))
}

fn site_embedding(rng: &mut TensorRng, fault: Option<FaultKind>) -> Outcome {
    let tok = rng.normal_matrix(8, 16, 0.5);
    let pos = rng.normal_matrix(6, 16, 0.5);
    let tokens: Vec<usize> = (0..4).map(|_| rng.index(8)).collect();
    let mut clean = Matrix::zeros(4, 16);
    for (r, &t) in tokens.iter().enumerate() {
        for (d, (&tv, &pv)) in clean
            .row_mut(r)
            .iter_mut()
            .zip(tok.row(t).iter().zip(pos.row(r)))
        {
            *d = tv + pv;
        }
    }
    let mut out = clean.clone();
    if let Some(k) = fault {
        tamper(&mut out, k, rng);
    }
    let g = guard();
    for (r, &t) in tokens.iter().enumerate() {
        verify_rowsum_add(tok.row(t), pos.row(r), out.row_mut(r), &g);
    }
    outcome(&g, bits_eq(out.data(), clean.data()))
}

const VERIFY_SITES: [(&str, SiteFn); 8] = [
    ("softmax", site_softmax),
    ("softmax_backward", site_softmax_backward),
    ("layer_norm", site_layer_norm),
    ("layer_norm_backward", site_layer_norm_backward),
    ("gelu", site_gelu),
    ("gelu_backward", site_gelu_backward),
    ("residual_add", site_residual_add),
    ("embedding", site_embedding),
];

// ---------------------------------------------------------------------------
// optimizer moments
// ---------------------------------------------------------------------------

struct OneParam {
    p: Param,
}
impl HasParams for OneParam {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.p);
    }
}

/// Two guarded AdamW steps with a moment corruption planted between them,
/// against a fault-free twin stepped on identical gradients.
fn optim_trial(rng: &mut TensorRng, fault: Option<FaultKind>) -> Outcome {
    let w0 = rng.normal_matrix(4, 8, 0.5);
    let g1 = rng.normal_matrix(4, 8, 0.1);
    let g2 = rng.normal_matrix(4, 8, 0.1);
    let mut clean = OneParam {
        p: Param::new("w", w0.clone()),
    };
    let mut faulty = OneParam {
        p: Param::new("w", w0),
    };
    let mut oc = AdamW::new(0.01);
    let mut of = AdamW::new(0.01);

    clean.p.grad = g1.clone();
    faulty.p.grad = g1;
    oc.step_checked(&mut clean, &OpGuard::off());
    of.step_checked(&mut faulty, &guard()); // captures digests

    if let Some(k) = fault {
        let target = if rng.bernoulli(0.5) {
            &mut faulty.p.v
        } else {
            &mut faulty.p.m
        };
        tamper(target, k, rng);
    }

    clean.p.grad = g2.clone();
    faulty.p.grad = g2;
    oc.step_checked(&mut clean, &OpGuard::off());
    let g = guard();
    of.step_checked(&mut faulty, &g); // verifies + heals the at-rest moments
    let bits = bits_eq(faulty.p.value.data(), clean.p.value.data())
        && bits_eq(faulty.p.m.data(), clean.p.m.data())
        && bits_eq(faulty.p.v.data(), clean.p.v.data());
    outcome(&g, bits)
}

// ---------------------------------------------------------------------------
// KV at rest
// ---------------------------------------------------------------------------

/// Tamper one slice-level row span the way [`tamper`] does for matrices.
fn tamper_slice(row: &mut [f32], kind: FaultKind, col: usize) {
    match kind {
        FaultKind::StuckRow => {
            let v = row[col];
            row.fill(v);
        }
        FaultKind::Burst { len } => {
            let end = (col + len.max(1)).min(row.len());
            for v in &mut row[col..end] {
                *v = near_inf_flip(*v);
            }
        }
        k => row[col] = k.apply(row[col]),
    }
}

fn lm_config(tiny: bool) -> ModelConfig {
    let mut cfg = ModelConfig::gpt2();
    cfg.hidden = 32;
    cfg.heads = 2;
    cfg.layers = if tiny { 1 } else { 2 };
    cfg.vocab = 64;
    cfg.max_seq = 32;
    cfg.num_classes = cfg.vocab;
    cfg
}

fn argmax(logits: &Matrix) -> usize {
    let row = logits.row(0);
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Decode `n` greedy tokens from the model-level API, returning them.
fn decode_greedy(
    m: &TransformerModel,
    state: &mut DecodeState,
    first: usize,
    n: usize,
    report: &mut AbftReport,
) -> Vec<usize> {
    let mut toks = Vec::with_capacity(n);
    let mut t = first;
    for _ in 0..n {
        let logits = m.decode_step(t, state, SectionToggles::all(), None, report);
        t = argmax(&logits);
        toks.push(t);
    }
    toks
}

/// Prefill + decode, park, corrupt a cold K/V cell (or region), unpark,
/// continue decoding; compare against the fault-free token stream.
fn kv_trial(
    m: &TransformerModel,
    prompt: &[usize],
    clean_tail: &[usize],
    rng: &mut TensorRng,
    fault: Option<FaultKind>,
) -> Outcome {
    let mut state = m.new_decode_state();
    let mut report = AbftReport::default();
    let logits = m.prefill(prompt, &mut state, SectionToggles::all(), &mut report);
    let first = argmax(&logits);
    let _ = decode_greedy(m, &mut state, first, 3, &mut report);

    m.park_state(&mut state, &mut report);
    if let Some(k) = fault {
        let d = m.config.hidden / m.config.heads;
        let layer = rng.index(m.config.layers);
        let head = rng.index(m.config.heads);
        let rows = state.cold_layers_mut()[layer].len();
        let r = rng.index(rows);
        let c = rng.index(d);
        let cold = &mut state.cold_layers_mut()[layer];
        if rng.bernoulli(0.5) {
            tamper_slice(&mut cold.k_data_mut(head)[r * d..(r + 1) * d], k, c);
        } else {
            // V rows carry their two checksum columns inline at the end;
            // corrupt data cells only (a struck checksum is a rebuild, not
            // a data fault).
            let vw = cold.v_data_mut(head).len() / rows;
            let vrow = &mut cold.v_data_mut(head)[r * vw..r * vw + d];
            tamper_slice(vrow, k, c);
        }
    }
    let mut unpark_report = AbftReport::default();
    m.unpark_state(&mut state, &mut unpark_report);

    let mut tail_report = AbftReport::default();
    let resume = *clean_tail.first().expect("clean tail nonempty");
    let tail = decode_greedy(
        m,
        &mut state,
        resume,
        clean_tail.len() - 1,
        &mut tail_report,
    );
    Outcome {
        detected: unpark_report.detections > 0,
        corrected: unpark_report.unrecovered == 0 && tail == clean_tail[1..],
    }
}

// ---------------------------------------------------------------------------
// end-to-end train step (GEMM sites)
// ---------------------------------------------------------------------------

fn train_config(tiny: bool) -> ModelConfig {
    let mut cfg = ModelConfig::bert_base();
    cfg.hidden = 32;
    cfg.heads = 2;
    cfg.layers = if tiny { 1 } else { 2 };
    cfg.vocab = 64;
    cfg.max_seq = 16;
    cfg
}

/// One injected training step; detection comes from the step report,
/// "corrected" means the step stayed trainable with a finite loss.
fn e2e_train_trial(
    cfg: &ModelConfig,
    batch: &[&Example],
    site: AttnOp,
    kind: FaultKind,
    trial: usize,
) -> Outcome {
    let mut tr = build_trainer(cfg, ProtectionConfig::full(), 42);
    let _ = tr.train_step(batch);
    let spec = InjectionSpec {
        layer: 0,
        op: site,
        head: trial % cfg.heads,
        row: 1 + trial,
        col: 2 + 3 * trial,
        kind,
    };
    let out = tr.train_step_injected(batch, Some((trial % batch.len(), spec)));
    Outcome {
        detected: out.report.detections > 0,
        corrected: !out.non_trainable && out.loss.is_finite(),
    }
}

// ---------------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------------

struct CellRates {
    detection: f64,
    correction: f64,
    trials: usize,
}

fn rates(outcomes: &[Outcome]) -> CellRates {
    let n = outcomes.len();
    CellRates {
        detection: outcomes.iter().filter(|o| o.detected).count() as f64 / n as f64,
        correction: outcomes.iter().filter(|o| o.corrected).count() as f64 / n as f64,
        trials: n,
    }
}

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

fn main() {
    let tiny = std::env::var("BENCH_FAULTS_TINY").is_ok_and(|v| v != "0" && !v.is_empty());
    let trials = if tiny { 6 } else { 48 };
    let fp_trials = if tiny { 12 } else { 200 };
    let extreme = FaultKind::EXTREME_SET;
    let mut failures: Vec<String> = Vec::new();
    let mut json_sections: Vec<String> = Vec::new();

    // ---- verify-level campaign -------------------------------------------
    let shape_note = if tiny { ", tiny smoke shape" } else { "" };
    println!("== guarded-op fault campaign ({trials} trials/cell{shape_note}) ==");
    let mut table = TextTable::new(&[
        "site \\ class",
        "INF",
        "-INF",
        "NaN",
        "nINF",
        "sub",
        "stuck",
        "burst",
    ]);
    let mut verify_json = String::from("  \"verify_ops\": {\n");
    for (si, (name, site)) in VERIFY_SITES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        let mut cells = Vec::new();
        for (ki, kind) in CLASSES.into_iter().enumerate() {
            let outcomes = run_campaign(0xFA01 + (si * 101 + ki) as u64, trials, |_, rng| {
                site(rng, Some(kind))
            });
            let c = rates(&outcomes);
            if extreme.contains(&kind) {
                if c.detection < 1.0 {
                    failures.push(format!(
                        "{name}/{kind}: detection {} < 100%",
                        pct(c.detection)
                    ));
                }
                if c.correction < 1.0 {
                    failures.push(format!(
                        "{name}/{kind}: correction {} < 100%",
                        pct(c.correction)
                    ));
                }
            }
            row.push(format!("{}/{}", pct(c.detection), pct(c.correction)));
            cells.push((kind, c));
        }
        table.row(&row);
        let _ = write!(verify_json, "    \"{name}\": {{");
        for (i, (kind, c)) in cells.iter().enumerate() {
            let _ = write!(
                verify_json,
                "{}\"{kind}\": {{\"detection\": {:.4}, \"correction\": {:.4}, \"trials\": {}}}",
                if i == 0 { "" } else { ", " },
                c.detection,
                c.correction,
                c.trials
            );
        }
        let _ = writeln!(
            verify_json,
            "}}{}",
            if si + 1 == VERIFY_SITES.len() {
                ""
            } else {
                ","
            }
        );
    }
    verify_json.push_str("  },");
    json_sections.push(verify_json);
    println!(
        "-- verify-level guards (detection/correction, bit-exact) --\n{}",
        table.render()
    );

    // ---- optimizer moments -----------------------------------------------
    let mut table = TextTable::new(&["class", "detection", "bit-exact heal"]);
    let mut optim_json = String::from("  \"optimizer_moments\": {");
    for (ki, kind) in CLASSES.into_iter().enumerate() {
        let outcomes = run_campaign(0x0AD0 + ki as u64, trials, |_, rng| {
            optim_trial(rng, Some(kind))
        });
        let c = rates(&outcomes);
        if c.detection < 1.0 {
            failures.push(format!(
                "moments/{kind}: detection {} < 100%",
                pct(c.detection)
            ));
        }
        // Every class must heal exactly: single-cell faults restore through
        // the per-row digest, and the region classes (stuck row, burst) —
        // single-row spans — restore through the column-digest axis, where
        // each corrupted cell is the only suspect in its column.
        if c.correction < 1.0 {
            failures.push(format!(
                "moments/{kind}: bit-exact heal {} < 100%",
                pct(c.correction)
            ));
        }
        table.row(&[kind.to_string(), pct(c.detection), pct(c.correction)]);
        let _ = write!(
            optim_json,
            "{}\"{kind}\": {{\"detection\": {:.4}, \"correction\": {:.4}, \"trials\": {}}}",
            if ki == 0 { "" } else { ", " },
            c.detection,
            c.correction,
            c.trials
        );
    }
    optim_json.push_str("},");
    json_sections.push(optim_json);
    println!(
        "-- AdamW moment digests (at-rest m/v corruption between steps) --\n{}",
        table.render()
    );

    // ---- KV at rest -------------------------------------------------------
    let kv_cfg = lm_config(tiny);
    let mut mrng = TensorRng::seed_from(4242);
    let kv_model = TransformerModel::new(kv_cfg.clone(), ProtectionConfig::full(), &mut mrng);
    let prompt: Vec<usize> = (0..6).map(|i| (i * 67 + 11) % kv_cfg.vocab).collect();
    // Fault-free reference stream: the decoded tokens after the park point.
    let clean_tail = {
        let mut state = kv_model.new_decode_state();
        let mut report = AbftReport::default();
        let logits = kv_model.prefill(&prompt, &mut state, SectionToggles::all(), &mut report);
        let first = argmax(&logits);
        let head3 = decode_greedy(&kv_model, &mut state, first, 3, &mut report);
        let resume = *head3.last().expect("decoded 3");
        let mut tail = vec![resume];
        tail.extend(decode_greedy(&kv_model, &mut state, resume, 4, &mut report));
        tail
    };
    let kv_trials = if tiny { 4 } else { 24 };
    let mut table = TextTable::new(&["class", "detection", "healed stream"]);
    let mut kv_json = String::from("  \"kv_at_rest\": {");
    for (ki, kind) in CLASSES.into_iter().enumerate() {
        let outcomes = run_campaign(0x4B50 + ki as u64, kv_trials, |_, rng| {
            kv_trial(&kv_model, &prompt, &clean_tail, rng, Some(kind))
        });
        let c = rates(&outcomes);
        if extreme.contains(&kind) && c.detection < 1.0 {
            failures.push(format!(
                "kv_at_rest/{kind}: detection {} < 100%",
                pct(c.detection)
            ));
        }
        table.row(&[kind.to_string(), pct(c.detection), pct(c.correction)]);
        let _ = write!(
            kv_json,
            "{}\"{kind}\": {{\"detection\": {:.4}, \"correction\": {:.4}, \"trials\": {}}}",
            if ki == 0 { "" } else { ", " },
            c.detection,
            c.correction,
            c.trials
        );
    }
    kv_json.push_str("},");
    json_sections.push(kv_json);
    println!(
        "-- at-rest paged KV (park → corrupt cold block → unpark) --\n{}",
        table.render()
    );

    // ---- end-to-end train step (GEMM sites) ------------------------------
    let t_cfg = train_config(tiny);
    let ds = dataset_for(&t_cfg, 4, 99);
    let batch: Vec<&Example> = ds.examples.iter().collect();
    let e2e_trials = if tiny { 2 } else { 4 };
    let sites = [AttnOp::Q, AttnOp::AS, AttnOp::CL];
    let mut table = TextTable::new(&["site \\ class", "INF", "-INF", "NaN", "nINF"]);
    let mut e2e_json = String::from("  \"e2e_train_gemm\": {\n");
    for (si, site) in sites.iter().enumerate() {
        let mut row = vec![format!("{site:?}")];
        let mut cells = Vec::new();
        for kind in extreme {
            let outcomes: Vec<Outcome> = (0..e2e_trials)
                .map(|t| e2e_train_trial(&t_cfg, &batch, *site, kind, t))
                .collect();
            let c = rates(&outcomes);
            if c.detection < 1.0 {
                failures.push(format!(
                    "e2e_train/{site:?}/{kind}: detection {} < 100%",
                    pct(c.detection)
                ));
            }
            if c.correction < 1.0 {
                failures.push(format!(
                    "e2e_train/{site:?}/{kind}: step survival {} < 100%",
                    pct(c.correction)
                ));
            }
            row.push(format!("{}/{}", pct(c.detection), pct(c.correction)));
            cells.push((kind, c));
        }
        table.row(&row);
        let _ = write!(e2e_json, "    \"{site:?}\": {{");
        for (i, (kind, c)) in cells.iter().enumerate() {
            let _ = write!(
                e2e_json,
                "{}\"{kind}\": {{\"detection\": {:.4}, \"survival\": {:.4}, \"trials\": {}}}",
                if i == 0 { "" } else { ", " },
                c.detection,
                c.correction,
                c.trials
            );
        }
        let _ = writeln!(
            e2e_json,
            "}}{}",
            if si + 1 == sites.len() { "" } else { "," }
        );
    }
    e2e_json.push_str("  },");
    json_sections.push(e2e_json);
    println!(
        "-- end-to-end train step, GEMM sites (detection/step survival) --\n{}",
        table.render()
    );

    // ---- fault-free false-positive sweep ---------------------------------
    let mut fp_detections = 0usize;
    let mut fp_total = 0usize;
    for (si, (_, site)) in VERIFY_SITES.iter().enumerate() {
        let outcomes = run_campaign(0xFF00 + si as u64, fp_trials, |_, rng| site(rng, None));
        fp_detections += outcomes.iter().filter(|o| o.detected).count();
        fp_total += outcomes.len();
    }
    let outcomes = run_campaign(0xFF80, fp_trials, |_, rng| optim_trial(rng, None));
    fp_detections += outcomes.iter().filter(|o| o.detected).count();
    fp_total += outcomes.len();
    let outcomes = run_campaign(0xFF90, kv_trials, |_, rng| {
        kv_trial(&kv_model, &prompt, &clean_tail, rng, None)
    });
    fp_detections += outcomes.iter().filter(|o| o.detected).count();
    fp_total += outcomes.len();
    // Two guarded fault-free training steps: the whole step report must be
    // quiet at both the GEMM and the op-guard tier.
    {
        let mut tr = build_trainer(&t_cfg, ProtectionConfig::full(), 7);
        for _ in 0..2 {
            let out = tr.train_step(&batch);
            fp_total += 1;
            if out.report.detections > 0 || out.report.op_detections > 0 {
                fp_detections += 1;
            }
        }
    }
    println!("-- fault-free sweep: {fp_detections} detections across {fp_total} trials --");
    if fp_detections > 0 {
        failures.push(format!(
            "false positives: {fp_detections} detections in {fp_total} fault-free trials"
        ));
    }

    // ---- artifact + floors -----------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"tiny\": {tiny}, \"trials_per_cell\": {trials}, \"kv_trials\": {kv_trials},"
    );
    for s in &json_sections {
        json.push_str(s);
        json.push('\n');
    }
    let _ = writeln!(
        json,
        "  \"false_positives\": {{\"trials\": {fp_total}, \"detections\": {fp_detections}}},"
    );
    let _ = writeln!(
        json,
        "  \"floors\": {{\"fp_detections\": 0, \"extreme_verify_detection\": 1.0, \"extreme_verify_correction\": 1.0, \"moment_detection\": 1.0, \"moment_heal\": 1.0, \"kv_extreme_detection\": 1.0, \"e2e_extreme_detection\": 1.0}}\n}}"
    );
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("wrote BENCH_faults.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("fault-campaign floors: OK");
}
