//! **Fig 11 reproduction** — per-step recovery overhead:
//! checkpoint/restore (CR) vs ATTNChecker.
//!
//! For each model, the cost of recovering from one extreme fault during a
//! training step:
//!
//! * **CR** — the paper's baseline: checkpoint each step, and on a
//!   non-trainable state reload the last checkpoint and re-execute the
//!   step. Charged cost: save + load + replay, as a % of a clean step.
//! * **ATTNChecker** — correction happens inside the faulty step; charged
//!   cost: (protected faulty step − unprotected clean step), as a % of a
//!   clean step.
//!
//! Rounds interleave the three configurations and medians are reported, so
//! host drift cancels. When the measured ATTNChecker overhead is below the
//! measurement floor (0.5%), the reduction factor is reported against the
//! floor (a conservative lower bound).
//!
//! Run: `cargo run --release -p attn-bench --bin fig11_recovery_overhead`

use attn_bench::timing::{median, pct};
use attn_bench::{build_trainer, dataset_for, TextTable};
use attn_ckpt::CheckpointManager;
use attn_fault::FaultKind;
use attn_model::model::{InjectionSpec, ModelConfig};
use attn_model::Example;
use attnchecker::attention::AttnOp;
use attnchecker::config::ProtectionConfig;

const BATCH: usize = 8;
const ROUNDS: usize = 9;
/// Measurement floor for the ABFT overhead used in the reduction ratio.
const ABFT_FLOOR: f64 = 0.005;

fn main() {
    println!("== Fig 11: per-step recovery overhead (CR vs ATTNChecker) ==\n");
    let mut t = TextTable::new(&[
        "Model",
        "clean step (ms)",
        "CR recovery",
        "ATTNChecker recovery",
        "reduction",
    ]);
    for config in ModelConfig::paper_four() {
        let ds = dataset_for(&config, BATCH * 2, 17);
        let batch: Vec<&Example> = ds.examples.iter().take(BATCH).collect();

        let mut base = build_trainer(&config, ProtectionConfig::off(), 42);
        let mut prot = build_trainer(&config, ProtectionConfig::full(), 42);
        let dir = std::env::temp_dir().join(format!(
            "attnchk-fig11-{}-{}",
            config.name.replace(' ', "_"),
            std::process::id()
        ));
        let mut mgr = CheckpointManager::new(&dir).expect("checkpoint dir");

        // Warmup each path once.
        let _ = base.train_step(&batch);
        let _ = prot.train_step(&batch);
        let _ = mgr
            .recover_and_replay(&mut base, &batch)
            .expect("warmup CR");

        let mut clean_ms = Vec::with_capacity(ROUNDS);
        let mut cr_ms = Vec::with_capacity(ROUNDS);
        let mut faulty_ms = Vec::with_capacity(ROUNDS);
        for r in 0..ROUNDS {
            clean_ms.push(base.train_step(&batch).step_time.as_secs_f64() * 1e3);

            let (timing, _) = mgr
                .recover_and_replay(&mut base, &batch)
                .expect("CR recovery");
            cr_ms.push(timing.total().as_secs_f64() * 1e3);

            let spec = InjectionSpec {
                layer: r % config.layers,
                op: [AttnOp::Q, AttnOp::K, AttnOp::V, AttnOp::AS, AttnOp::CL][r % 5],
                head: r % config.heads,
                row: 3 + r,
                col: 5 + r,
                kind: [FaultKind::Inf, FaultKind::NaN, FaultKind::NearInf][r % 3],
            };
            let out = prot.train_step_injected(&batch, Some((r % BATCH, spec)));
            assert!(!out.non_trainable, "{}: correction failed", config.name);
            assert!(out.report.correction_count() > 0);
            faulty_ms.push(out.step_time.as_secs_f64() * 1e3);
        }
        let _ = std::fs::remove_dir_all(&dir);

        let clean = median(&clean_ms);
        let cr = median(&cr_ms);
        let faulty = median(&faulty_ms);
        let cr_overhead = cr / clean;
        let abft_overhead = ((faulty - clean) / clean).max(0.0);
        let reduction = cr_overhead / abft_overhead.max(ABFT_FLOOR);
        let reduction_cell = if abft_overhead < ABFT_FLOOR {
            format!(">{reduction:.0}x")
        } else {
            format!("{reduction:.0}x")
        };
        t.row(&[
            config.name.clone(),
            format!("{clean:.2}"),
            pct(cr_overhead),
            pct(abft_overhead),
            reduction_cell,
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: CR >200% per faulty step; ATTNChecker <10%;");
    println!("reduction 32×/34×/24×/49× for Bert/GPT-2/GPT-Neo/Roberta.");
}
