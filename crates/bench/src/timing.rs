//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Summary statistics of repeated timed runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredTime {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Fastest run.
    pub min: Duration,
    /// Slowest run.
    pub max: Duration,
    /// Number of measured runs.
    pub iters: usize,
}

impl MeasuredTime {
    /// Mean in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// Relative overhead of `self` versus a `baseline` mean
    /// (`0.07` = 7% slower).
    pub fn overhead_vs(&self, baseline: &MeasuredTime) -> f64 {
        let b = baseline.mean.as_secs_f64();
        if attn_tensor::float::exactly_zero_f64(b) {
            return 0.0;
        }
        self.mean.as_secs_f64() / b - 1.0
    }
}

/// Run `f` for `warmup` unmeasured iterations then `iters` measured ones.
pub fn measure(warmup: usize, iters: usize, mut f: impl FnMut()) -> MeasuredTime {
    for _ in 0..warmup {
        f();
    }
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    let total: Duration = times.iter().sum();
    MeasuredTime {
        mean: total / times.len() as u32,
        min: times.iter().min().copied().unwrap_or_default(),
        max: times.iter().max().copied().unwrap_or_default(),
        iters: times.len(),
    }
}

/// Format a fraction as a percentage string, e.g. `0.0712 → "7.1%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Median of a sample (by value; empty input yields 0).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut calls = 0;
        let t = measure(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(t.iters, 5);
        assert!(t.min <= t.mean && t.mean <= t.max);
    }

    #[test]
    fn overhead_math() {
        let base = MeasuredTime {
            mean: Duration::from_millis(100),
            min: Duration::ZERO,
            max: Duration::ZERO,
            iters: 1,
        };
        let slow = MeasuredTime {
            mean: Duration::from_millis(107),
            ..base
        };
        assert!((slow.overhead_vs(&base) - 0.07).abs() < 1e-9);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.0712), "7.1%");
        assert_eq!(pct(0.0), "0.0%");
    }
}
