//! Drift-resistant training-step measurement.
//!
//! On a small shared host, wall-clock drift (frequency scaling, noisy
//! neighbours) can exceed the effect being measured. The overhead
//! experiments therefore interleave the configurations under comparison —
//! one step of each per round — so drift hits every configuration equally,
//! and report per-step **medians** rather than means.

use crate::timing::median;
use attn_model::{Example, Trainer};

/// Median per-step timings of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTimes {
    /// Median attention-forward time per step, milliseconds.
    pub attn_ms: f64,
    /// Median FFN-forward time per step, milliseconds.
    pub ffn_ms: f64,
    /// Median full-step time, milliseconds.
    pub step_ms: f64,
}

impl StepTimes {
    /// Relative overhead of `self` vs `base` on the attention timer.
    pub fn attn_overhead_vs(&self, base: &StepTimes) -> f64 {
        self.attn_ms / base.attn_ms - 1.0
    }

    /// Relative overhead of `self` vs `base` on the FFN timer.
    pub fn ffn_overhead_vs(&self, base: &StepTimes) -> f64 {
        self.ffn_ms / base.ffn_ms - 1.0
    }

    /// Relative overhead of `self` vs `base` on the step timer.
    pub fn step_overhead_vs(&self, base: &StepTimes) -> f64 {
        self.step_ms / base.step_ms - 1.0
    }

    /// Step-time speedup of `self` over `base` (>1 means `self` is
    /// faster) — the data-parallel-step column of the Fig 7 reproduction.
    pub fn step_speedup_vs(&self, base: &StepTimes) -> f64 {
        base.step_ms / self.step_ms
    }
}

/// Run `warmup` unmeasured rounds then `steps` measured rounds, where one
/// round executes one training step on *each* trainer in turn. Returns the
/// median timings per trainer, in input order.
pub fn measure_interleaved(
    trainers: &mut [&mut Trainer],
    batch: &[&Example],
    warmup: usize,
    steps: usize,
) -> Vec<StepTimes> {
    for _ in 0..warmup {
        for tr in trainers.iter_mut() {
            let _ = tr.train_step(batch);
        }
    }
    let n = trainers.len();
    let mut attn_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(steps); n];
    let mut ffn_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(steps); n];
    let mut step_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(steps); n];
    for _ in 0..steps {
        for (i, tr) in trainers.iter_mut().enumerate() {
            let out = tr.train_step(batch);
            attn_samples[i].push(out.attention_time.as_secs_f64() * 1e3);
            ffn_samples[i].push(out.ffn_time.as_secs_f64() * 1e3);
            step_samples[i].push(out.step_time.as_secs_f64() * 1e3);
        }
    }
    (0..n)
        .map(|i| StepTimes {
            attn_ms: median(&attn_samples[i]),
            ffn_ms: median(&ffn_samples[i]),
            step_ms: median(&step_samples[i]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{build_trainer, dataset_for};
    use attn_model::model::ModelConfig;
    use attnchecker::config::ProtectionConfig;

    #[test]
    fn interleaved_measurement_returns_positive_medians() {
        let mut cfg = ModelConfig::bert_small();
        cfg.hidden = 16;
        cfg.heads = 2;
        cfg.layers = 1;
        let ds = dataset_for(&cfg, 4, 1);
        let batch: Vec<&Example> = ds.examples.iter().take(2).collect();
        let mut a = build_trainer(&cfg, ProtectionConfig::off(), 3);
        let mut b = build_trainer(&cfg, ProtectionConfig::full(), 3);
        let times = measure_interleaved(&mut [&mut a, &mut b], &batch, 1, 3);
        assert_eq!(times.len(), 2);
        for t in &times {
            assert!(t.attn_ms > 0.0 && t.ffn_ms > 0.0);
            assert!(t.step_ms >= t.attn_ms && t.step_ms >= t.ffn_ms);
        }
    }

    #[test]
    fn overhead_helpers() {
        let base = StepTimes {
            attn_ms: 10.0,
            ffn_ms: 20.0,
            step_ms: 100.0,
        };
        let other = StepTimes {
            attn_ms: 11.0,
            ffn_ms: 21.0,
            step_ms: 107.0,
        };
        assert!((other.attn_overhead_vs(&base) - 0.10).abs() < 1e-9);
        assert!((other.ffn_overhead_vs(&base) - 0.05).abs() < 1e-9);
        assert!((other.step_overhead_vs(&base) - 0.07).abs() < 1e-9);
        assert!((base.step_speedup_vs(&other) - 1.07).abs() < 1e-9);
        assert!((other.step_speedup_vs(&base) - 100.0 / 107.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_trainer_measures_through_the_same_harness() {
        // The parallelism knob is a trainer property, so the interleaved
        // harness measures sequential and parallel configurations
        // symmetrically — and their losses stay bit-identical.
        let mut cfg = ModelConfig::bert_small();
        cfg.hidden = 16;
        cfg.heads = 2;
        cfg.layers = 1;
        let ds = dataset_for(&cfg, 8, 1);
        let batch: Vec<&Example> = ds.examples.iter().take(8).collect();
        let mut seq = build_trainer(&cfg, ProtectionConfig::off(), 3);
        let mut par = build_trainer(&cfg, ProtectionConfig::off(), 3);
        par.set_parallelism(2);
        let times = measure_interleaved(&mut [&mut seq, &mut par], &batch, 1, 3);
        assert_eq!(times.len(), 2);
        assert!(times.iter().all(|t| t.step_ms > 0.0));
        // Both trainers took the same measured steps, so their next step's
        // loss must carry identical bits.
        let a = seq.train_step(&batch).loss;
        let b = par.train_step(&batch).loss;
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
