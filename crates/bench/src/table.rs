//! Plain-text aligned table printer for experiment output.

/// Column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut r: Vec<String> = cells.to_vec(); // attn-lint: allow(hot-path-alloc-reach) — bench-report formatter; only conservative `.row` fan-out links it to hot paths
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Append a row of `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(display_width(h));
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(display_width(c));
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(c);
                let pad = width[i].saturating_sub(display_width(c));
                line.push_str(&" ".repeat(pad));
                if i + 1 < cells.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Character-count width (monospace approximation; the glyphs used in the
/// propagation tables — ∞, Θ, ε — are single-width).
fn display_width(s: &str) -> usize {
    s.chars().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["model", "ratio"]);
        t.row_str(&["Bert", "99.7%"]);
        t.row_str(&["GPT-2-long-name", "99.5%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The ratio column starts at the same offset on both data lines.
        let off2 = lines[2].find("99.7%").unwrap();
        let off3 = lines[3].find("99.5%").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn rows_padded_to_header() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row_str(&["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn unicode_glyphs_count_as_one() {
        assert_eq!(display_width("1R-∞*"), 5);
        assert_eq!(display_width("2D-Θ"), 4);
    }
}
