//! # attn-bench
//!
//! Experiment harness for the reproduction: shared setup, timing, and
//! table-formatting utilities used by the per-table/per-figure regeneration
//! binaries (`src/bin/*.rs`) and the criterion benches (`benches/*.rs`).
//!
//! Every binary prints the corresponding paper artefact in a comparable
//! textual form:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `table2_propagation` | Table 2 — error propagation patterns |
//! | `table3_gemm_ratio` | Table 3 — GEMM share of attention |
//! | `table4_vulnerability` | Table 4 — P(non-trainable) |
//! | `fig6_training_loss` | Fig 6 — loss, fault-free vs ATTNChecker |
//! | `fig7_overhead` | Fig 7 — overhead on 6 LLMs |
//! | `fig8_opt_ablation` | Fig 8 — optimized vs non-optimized |
//! | `fig9_encoding_throughput` | Fig 9 — encoding throughput |
//! | `fig10_adaptive_frequency` | Fig 10 — adaptive detection frequency |
//! | `fig11_recovery_overhead` | Fig 11 — CR vs ATTNChecker recovery |
//! | `fig12_scale_projection` | Fig 12 — multi-billion-parameter scale |
//! | `sec55_correction_cost` | §5.5 — correction-path overheads |

pub mod kernels;
pub mod setup;
pub mod stepbench;
pub mod table;
pub mod timing;

pub use kernels::{measure_encode_overhead, EncodeOverhead};
pub use setup::{build_trainer, dataset_for, dataset_full_seq, trials_from_env};
pub use stepbench::{measure_interleaved, StepTimes};
pub use table::TextTable;
pub use timing::{measure, MeasuredTime};
