//! Criterion bench: protected vs unprotected attention forward
//! (the kernel-level view of Fig 7).

use attn_tensor::rng::TensorRng;
use attnchecker::attention::{
    AttentionWeights, ForwardOptions, ProtectedAttention, SectionToggles,
};
use attnchecker::config::ProtectionConfig;
use attnchecker::report::AbftReport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_forward");
    for &(seq, hidden, heads) in &[(32usize, 64usize, 4usize), (64, 128, 8)] {
        let mut rng = TensorRng::seed_from(1);
        let weights = AttentionWeights::random(hidden, heads, &mut rng);
        let x = rng.normal_matrix(seq, hidden, 0.5);
        let label = format!("s{seq}_h{hidden}");

        let off = ProtectedAttention::new(weights.clone(), ProtectionConfig::off());
        group.bench_with_input(BenchmarkId::new("original", &label), &x, |b, x| {
            b.iter(|| {
                let mut report = AbftReport::default();
                let out = off.forward(
                    black_box(x),
                    ForwardOptions {
                        toggles: SectionToggles::none(),
                        ..Default::default()
                    },
                    &mut report,
                );
                black_box(out.output)
            })
        });

        let on = ProtectedAttention::new(weights.clone(), ProtectionConfig::full());
        group.bench_with_input(BenchmarkId::new("attnchecker", &label), &x, |b, x| {
            b.iter(|| {
                let mut report = AbftReport::default();
                let out = on.forward_simple(black_box(x), &mut report);
                black_box(out.output)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
