//! Criterion bench for the packed register-tiled GEMM kernels: naive vs
//! tiled vs fused-encode, over sizes spanning attention (per-head scores,
//! hidden projections) and FFN (expansion) shapes. The `bench_gemm` binary
//! emits the machine-readable `BENCH_gemm.json` companion.

use attn_tensor::gemm::{gemm_encode_cols_into, matmul, matmul_naive, matmul_nt};
use attn_tensor::rng::TensorRng;
use attn_tensor::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(5);
    let mut group = c.benchmark_group("gemm");
    for &(m, k, n) in &[
        (64, 64, 64),
        (128, 128, 128),
        (64, 512, 128),
        (256, 256, 256),
    ] {
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        group.throughput(Throughput::Elements(2 * (m * n * k) as u64));
        group.bench_with_input(
            BenchmarkId::new("naive", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| black_box(matmul_naive(black_box(a), black_box(b)))),
        );
        group.bench_with_input(
            BenchmarkId::new("tiled", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| black_box(matmul(black_box(a), black_box(b)))),
        );
        let mut c_aug = Matrix::zeros(m + 2, n);
        group.bench_with_input(
            BenchmarkId::new("fused-encode", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| {
                    gemm_encode_cols_into(black_box(a).view(), b.view(), c_aug.view_mut());
                    black_box(&c_aug);
                })
            },
        );
    }
    group.finish();
}

fn bench_nt_k_heavy(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(9);
    let mut group = c.benchmark_group("gemm_nt_k_heavy");
    // The shape class the old NT kernel streamed unblocked: modest output,
    // large inner dimension (e.g. dY·Wᵀ in a wide FFN backward).
    for &(m, k, n) in &[(64, 2048, 64), (96, 3072, 96)] {
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(n, k, -1.0, 1.0);
        group.throughput(Throughput::Elements(2 * (m * n * k) as u64));
        group.bench_with_input(
            BenchmarkId::new("tiled-nt", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| black_box(matmul_nt(black_box(a), black_box(b)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_nt_k_heavy);
criterion_main!(benches);
