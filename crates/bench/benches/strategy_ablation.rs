//! Criterion bench: fused vs separate checksum-update strategy on the full
//! protected attention pipeline (the kernel-level view of Fig 8).

use attn_tensor::rng::TensorRng;
use attnchecker::attention::{AttentionWeights, ProtectedAttention};
use attnchecker::checked::CheckedMatrix;
use attnchecker::config::{ProtectionConfig, Strategy};
use attnchecker::report::AbftReport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_ablation");
    let (seq, hidden, heads) = (48usize, 96usize, 6usize);
    let mut rng = TensorRng::seed_from(3);
    let weights = AttentionWeights::random(hidden, heads, &mut rng);
    let x = rng.normal_matrix(seq, hidden, 0.5);

    for (name, cfg) in [
        ("fused", ProtectionConfig::full()),
        ("separate", ProtectionConfig::full_unoptimized()),
    ] {
        let attn = ProtectedAttention::new(weights.clone(), cfg);
        group.bench_with_input(BenchmarkId::new("attention", name), &x, |b, x| {
            b.iter(|| {
                let mut report = AbftReport::default();
                black_box(attn.forward_simple(black_box(x), &mut report).output)
            })
        });
    }

    // The raw augmented-GEMM comparison underneath.
    let a = rng.normal_matrix(64, 64, 1.0);
    let w = rng.normal_matrix(64, 64, 1.0);
    let ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
    let cw = CheckedMatrix::encode_rows(&w, Strategy::Fused);
    group.bench_function("gemm_fused_update", |b| {
        b.iter(|| black_box(ca.matmul(black_box(&cw))))
    });
    group.bench_function("gemm_separate_update", |b| {
        b.iter(|| black_box(ca.matmul_separate(black_box(&cw))))
    });
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
