//! Criterion bench: EEC-ABFT detection and correction paths
//! (the §5.5 cost decomposition at vector/matrix granularity).

use attn_tensor::rng::TensorRng;
use attnchecker::checked::CheckedMatrix;
use attnchecker::checksum::vector_sums;
use attnchecker::config::{AbftConfig, Strategy};
use attnchecker::detect::full_correct;
use attnchecker::eec::{eec_correct_vector, eec_detect_vector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_eec(c: &mut Criterion) {
    let cfg = AbftConfig::default();
    let mut group = c.benchmark_group("eec_vector");
    for &n in &[64usize, 256, 1024] {
        let mut rng = TensorRng::seed_from(4);
        let v: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let (s, ws, _) = vector_sums(&v);

        group.bench_with_input(BenchmarkId::new("detect_clean", n), &v, |b, v| {
            b.iter(|| black_box(eec_detect_vector(black_box(v), s, ws, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("correct_clean", n), &v, |b, v| {
            b.iter_batched(
                || v.clone(),
                |mut vv| black_box(eec_correct_vector(&mut vv, s, ws, &cfg)),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("correct_inf", n), &v, |b, v| {
            b.iter_batched(
                || {
                    let mut vv = v.clone();
                    vv[n / 2] = f32::INFINITY;
                    vv
                },
                |mut vv| black_box(eec_correct_vector(&mut vv, s, ws, &cfg)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("full_correct_matrix");
    let mut rng = TensorRng::seed_from(5);
    let a = rng.normal_matrix(64, 64, 1.0);
    let clean = CheckedMatrix::encode_both(&a, Strategy::Fused);
    group.bench_function("clean_64x64", |b| {
        b.iter_batched(
            || clean.clone(),
            |mut m| black_box(full_correct(&mut m, &cfg)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("zero_d_64x64", |b| {
        b.iter_batched(
            || {
                let mut m = clean.clone();
                m.set(10, 20, f32::NAN);
                m
            },
            |mut m| black_box(full_correct(&mut m, &cfg)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("one_d_64x64", |b| {
        b.iter_batched(
            || {
                let mut m = clean.clone();
                for r in 0..64 {
                    m.set(r, 31, f32::INFINITY);
                }
                m
            },
            |mut m| black_box(full_correct(&mut m, &cfg)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_eec);
criterion_main!(benches);
