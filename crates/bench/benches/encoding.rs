//! Criterion bench: fused single-pass vs naive two-pass checksum encoding
//! (the kernel behind Fig 9).

use attn_tensor::rng::TensorRng;
use attnchecker::checksum::{
    col_checksums, col_checksums_naive, row_checksums, row_checksums_naive,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum_encoding");
    for &(rows, cols) in &[(128usize, 768usize), (512, 768), (1024, 1024)] {
        let mut rng = TensorRng::seed_from(2);
        let a = rng.normal_matrix(rows, cols, 1.0);
        let label = format!("{rows}x{cols}");
        group.throughput(Throughput::Bytes((rows * cols * 4) as u64));

        group.bench_with_input(BenchmarkId::new("col_fused", &label), &a, |b, a| {
            b.iter(|| black_box(col_checksums(black_box(a))))
        });
        group.bench_with_input(BenchmarkId::new("col_naive", &label), &a, |b, a| {
            b.iter(|| black_box(col_checksums_naive(black_box(a))))
        });
        group.bench_with_input(BenchmarkId::new("row_fused", &label), &a, |b, a| {
            b.iter(|| black_box(row_checksums(black_box(a))))
        });
        group.bench_with_input(BenchmarkId::new("row_naive", &label), &a, |b, a| {
            b.iter(|| black_box(row_checksums_naive(black_box(a))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
