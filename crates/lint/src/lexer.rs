//! Hand-written Rust lexer — just enough fidelity for contract linting.
//!
//! `attn_lint` runs in a vendored-only environment, so it cannot lean on
//! `syn` or `rustc` internals. Instead this module tokenises the handful
//! of shapes a naive text search gets wrong:
//!
//! * line comments vs **nested** block comments (a `vec!` inside
//!   `/* /* … */ */` is not an allocation),
//! * string, byte-string and raw-string literals with arbitrary hash
//!   fences (`r#"…"#`), so patterns quoted in test data never fire,
//! * char literals vs lifetimes (`'a'` vs `'a`) and raw identifiers
//!   (`r#type`),
//! * numeric literals with underscores, exponents and suffixes
//!   (`1.0e31f32` is one token; the `.copysign` after it is not),
//! * multi-char operators, so `==`/`!=`/`+=` can be matched as single
//!   tokens.
//!
//! Output is a flat token stream with 1-based line/column positions; the
//! scope tracking that turns positions into "inside `#[cfg(test)]`" or
//! "inside a rayon closure" verdicts lives in [`crate::scope`].

/// What a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers keep their `r#` prefix).
    Ident,
    /// A lifetime or loop label such as `'a` (no closing quote).
    Lifetime,
    /// Integer literal, including hex/octal/binary forms.
    Int,
    /// Float literal (has a fraction, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`. Text is the raw source slice, quotes included.
    Str,
    /// Char or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Punctuation; multi-char operators (`==`, `+=`, `::`, …) are one
    /// token.
    Punct,
    /// A `//`-family comment. Text keeps the full prefix so directive
    /// parsing can tell `//` from `///` and `//!`.
    LineComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True for identifier tokens with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for punctuation tokens with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Multi-char operators, longest first so maximal munch works.
const OPERATORS: [&str; 22] = [
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenise `src`. Unknown bytes become single-char [`TokKind::Punct`]
/// tokens — the linter never fails on exotic input, it just sees opaque
/// punctuation.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            toks.push(lex_line_comment(&mut cur, line, col));
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            skip_block_comment(&mut cur);
            continue;
        }
        if c == '"' {
            toks.push(lex_string(&mut cur, line, col));
            continue;
        }
        if c == 'b' || c == 'r' {
            if let Some(tok) = try_lex_prefixed(&mut cur, line, col) {
                toks.push(tok);
                continue;
            }
        }
        if c == '\'' {
            toks.push(lex_quote(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            toks.push(lex_number(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            toks.push(lex_ident(&mut cur, line, col));
            continue;
        }
        toks.push(lex_punct(&mut cur, line, col));
    }
    toks
}

fn lex_line_comment(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::LineComment,
        text,
        line,
        col,
    }
}

fn skip_block_comment(cur: &mut Cursor) {
    // `/*` already peeked; consume with nesting.
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

fn lex_string(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push(cur.bump().expect("opening quote")); // "
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(cur.bump().expect("escape lead"));
            if let Some(e) = cur.bump() {
                text.push(e);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '"' {
            break;
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// `b"…"`, `b'…'`, `br#"…"#`, `r"…"`, `r#"…"#`, or a raw identifier
/// (`r#type`). Returns `None` when the `b`/`r` is just an ordinary
/// identifier start.
fn try_lex_prefixed(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let c = cur.peek(0)?;
    if c == 'b' {
        match cur.peek(1) {
            Some('"') => {
                cur.bump(); // b
                let mut tok = lex_string(cur, line, col);
                tok.text.insert(0, 'b');
                Some(tok)
            }
            Some('\'') => {
                cur.bump(); // b
                let mut tok = lex_quote(cur, line, col);
                tok.text.insert(0, 'b');
                tok.kind = TokKind::Char;
                Some(tok)
            }
            Some('r') if matches!(cur.peek(2), Some('"') | Some('#')) => {
                cur.bump(); // b
                lex_raw_string(cur, line, col)
            }
            _ => None,
        }
    } else {
        // c == 'r'
        match cur.peek(1) {
            Some('"') => lex_raw_string(cur, line, col),
            Some('#') => {
                // Either a hashed raw string or a raw identifier.
                let mut n = 0;
                while cur.peek(1 + n) == Some('#') {
                    n += 1;
                }
                if cur.peek(1 + n) == Some('"') {
                    lex_raw_string(cur, line, col)
                } else {
                    // r#ident
                    cur.bump(); // r
                    cur.bump(); // #
                    let mut tok = lex_ident(cur, line, col);
                    tok.text.insert_str(0, "r#");
                    tok.line = line;
                    tok.col = col;
                    Some(tok)
                }
            }
            _ => None,
        }
    }
}

/// At `r` of `r"…"` / `r#"…"#` (any hash count). Consumes through the
/// closing fence.
fn lex_raw_string(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let mut text = String::new();
    text.push(cur.bump()?); // r
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push(cur.bump()?);
    }
    if cur.peek(0) != Some('"') {
        return None;
    }
    text.push(cur.bump()?); // "
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '"' {
            let mut matched = 0usize;
            while matched < hashes && cur.peek(0) == Some('#') {
                matched += 1;
                text.push(cur.bump().expect("peeked hash"));
            }
            if matched == hashes {
                break;
            }
        }
    }
    Some(Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    })
}

/// At a `'`: decide char literal vs lifetime. `'a'` and `'\n'` are chars;
/// `'a`, `'static`, `'_` are lifetimes/labels.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push(cur.bump().expect("quote")); // '
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume to the closing quote.
            while let Some(c) = cur.peek(0) {
                if c == '\\' {
                    text.push(cur.bump().expect("escape lead"));
                    if let Some(e) = cur.bump() {
                        text.push(e);
                    }
                    continue;
                }
                text.push(c);
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        Some(c) if cur.peek(1) == Some('\'') && c != '\'' => {
            // 'x'
            text.push(cur.bump().expect("char body"));
            text.push(cur.bump().expect("closing quote"));
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        Some(c) if is_ident_start(c) => {
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            }
        }
        _ => Tok {
            kind: TokKind::Punct,
            text,
            line,
            col,
        },
    }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    let mut float = false;
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x') | Some('o') | Some('b')) {
        text.push(cur.bump().expect("0"));
        text.push(cur.bump().expect("radix"));
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_hexdigit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        // Fraction: `1.5` and trailing `2.` are floats; `1..3` (range) and
        // `1.max(2)` (method call) keep the int.
        if cur.peek(0) == Some('.') {
            match cur.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    float = true;
                    text.push(cur.bump().expect("dot"));
                    while let Some(c) = cur.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                }
                Some(d) if d == '.' || is_ident_start(d) => {}
                _ => {
                    float = true;
                    text.push(cur.bump().expect("trailing dot"));
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(0), Some('e') | Some('E')) {
            let (e1, e2) = (cur.peek(1), cur.peek(2));
            let exp = match e1 {
                Some(d) if d.is_ascii_digit() => true,
                Some('+') | Some('-') => matches!(e2, Some(d) if d.is_ascii_digit()),
                _ => false,
            };
            if exp {
                float = true;
                text.push(cur.bump().expect("e"));
                if matches!(cur.peek(0), Some('+') | Some('-')) {
                    text.push(cur.bump().expect("sign"));
                }
                while let Some(c) = cur.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }
    // Type suffix (`f32`, `u64`, …) — part of the literal token.
    if matches!(cur.peek(0), Some(c) if is_ident_start(c)) {
        let mut suffix = String::new();
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            suffix.push(c);
            cur.bump();
        }
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
    }
    Tok {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text,
        line,
        col,
    }
}

fn lex_ident(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::Ident,
        text,
        line,
        col,
    }
}

fn lex_punct(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    for op in OPERATORS {
        if op
            .chars()
            .enumerate()
            .all(|(k, oc)| cur.peek(k) == Some(oc))
        {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            return Tok {
                kind: TokKind::Punct,
                text: op.to_string(),
                line,
                col,
            };
        }
    }
    let c = cur.bump().expect("peeked punct");
    Tok {
        kind: TokKind::Punct,
        text: c.to_string(),
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("let c = 'v'; fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(toks.contains(&(TokKind::Char, "'v'".into())));
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokKind::Lifetime).count(),
            3,
            "{toks:?}"
        );
    }

    #[test]
    fn escaped_char_literals() {
        for lit in ["'\\n'", "'\\''", "'\\\\'", "'\\u{1F600}'", "b'x'"] {
            let toks = kinds(lit);
            assert_eq!(toks.len(), 1, "{lit}");
            assert_eq!(toks[0].0, TokKind::Char, "{lit}");
        }
    }

    #[test]
    fn raw_strings_swallow_their_payload() {
        let toks = kinds(r###"let s = r#"vec![1]; "quoted" .unwrap()"#; s"###);
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokKind::Str).count(),
            1,
            "{toks:?}"
        );
        assert!(!toks.iter().any(|t| t.1 == "vec"), "{toks:?}");
        assert!(!toks.iter().any(|t| t.1 == "unwrap"), "{toks:?}");
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokKind::Ident, "r#type".into())));
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let toks = kinds("a /* x /* vec![] */ .unwrap() */ b");
        assert_eq!(
            toks,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())]
        );
    }

    #[test]
    fn float_suffix_then_method_call() {
        let toks = kinds("1.0e31f32.copysign(x); 2.; 1..3; 1.max(2)");
        assert!(toks.contains(&(TokKind::Float, "1.0e31f32".into())));
        assert!(toks.contains(&(TokKind::Ident, "copysign".into())));
        assert!(toks.contains(&(TokKind::Float, "2.".into())));
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Int, "1".into())));
        assert!(toks.contains(&(TokKind::Ident, "max".into())));
    }

    #[test]
    fn operators_are_single_tokens() {
        let toks = kinds("a == b != c += 1; x ..= y :: z");
        for op in ["==", "!=", "+=", "..=", "::"] {
            assert!(toks.contains(&(TokKind::Punct, op.into())), "{op}");
        }
    }

    #[test]
    fn comments_keep_their_prefix() {
        let toks = kinds("// plain\n/// doc\n//! inner\nx");
        let comments: Vec<&str> = toks
            .iter()
            .filter(|t| t.0 == TokKind::LineComment)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(comments, vec!["// plain", "/// doc", "//! inner"]);
    }

    #[test]
    fn positions_are_one_based_and_track_newlines() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
