//! Intraprocedural dataflow passes over [`crate::parse`] fn bodies.
//!
//! Two lint families live here:
//!
//! * **`encoded-typestate`** — abstract-interprets matrix values through
//!   `GuardedSection` chains with the lattice {Raw, Encoded, Verified,
//!   Stale}. Variables are grouped into union-find components: a `let`
//!   binding unions its pattern names with every known variable on the
//!   right-hand side, and every producer/verifier call unions its
//!   receiver with its arguments. A component becomes *Encoded* at a
//!   producer call (`gemm_encode_cols` & friends), *Verified* at a
//!   verify/exit/heal call, and *Stale* once a finding has been
//!   reported for it (so each bug is reported once). Findings:
//!   raw mutation of an Encoded component, an Encoded component feeding
//!   a nonlinearity, and an Encoded component escaping the fn body
//!   without ever reaching a verifier.
//! * **`unsafe-audit`** — every `unsafe` block / fn / impl / trait in a
//!   Full-profile file must carry a `// SAFETY:` directive whose target
//!   line is the `unsafe` token's line (place it directly above the
//!   `unsafe` line, *after* any attributes, or trailing on the same
//!   line). `from_raw_parts*` calls are additionally required to tie
//!   their length expression to an asserted bound in the same fn body.
//!
//! Both passes are intentionally intraprocedural: the component state
//! dies at the fn boundary, which is exactly the paper's contract — an
//! encoded operand must be verified *before* it escapes the guarded
//! section that produced it.

use crate::directives::Directives;
use crate::lexer::{Tok, TokKind};
use crate::lints::Profile;
use crate::parse::ParsedFile;
use crate::scope::Context;
use crate::Finding;
use std::collections::BTreeMap;

/// Lint name: encoded value mutated / escaping / fed onward unverified.
pub const ENCODED_TYPESTATE: &str = "encoded-typestate";
/// Lint name: undocumented or unbounded `unsafe` surface.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";

/// Methods that put a component into the Encoded state.
const PRODUCERS: [&str; 5] = [
    "gemm_encode_cols",
    "gemm_encode_rows",
    "gemm_adopt_cols",
    "encode_cols",
    "encode_rows",
];

/// Methods that move a component to Verified (checksum checked, value
/// re-encoded, or ownership handed back through a checked exit).
const VERIFIERS: [&str; 7] = [
    "detect",
    "exit_cols",
    "exit_reencode_cols",
    "adopt_cols",
    "heal_operand_cols",
    "heal_operand_rows",
    "replay_nn",
];

/// Raw mutators: writing through these invalidates live checksums.
const MUTATORS: [&str; 3] = ["set", "data_mut", "row_mut"];

/// Files where encoded-typestate does not apply: the tensor crate and
/// the guarded-section internals *implement* the encode/verify
/// machinery (their raw mutations are the checksum updates themselves),
/// and the lint crate only talks about these names.
pub fn typestate_whitelisted(rel_path: &str) -> bool {
    rel_path.starts_with("crates/tensor/")
        || rel_path.starts_with("crates/lint/")
        || matches!(
            rel_path,
            "crates/core/src/section.rs"
                | "crates/core/src/checked.rs"
                | "crates/core/src/checksum.rs"
                | "crates/core/src/eec.rs"
        )
}

/// Abstract state of one union-find component.
#[derive(Clone, Debug, PartialEq)]
enum State {
    /// No protection claimed.
    Raw,
    /// Producer ran; checksums are live and unverified.
    Encoded {
        line: u32,
        col: u32,
        name: String,
        producer: &'static str,
    },
    /// A verifier consumed the component's checksums.
    Verified,
    /// A finding was already reported; suppress follow-on reports.
    Stale,
}

/// Union-find over the variables of one fn body.
#[derive(Default)]
struct Flow {
    parent: Vec<usize>,
    state: Vec<State>,
}

impl Flow {
    fn fresh(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.state.push(State::Raw);
        self.parent.len() - 1
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        // Encoded dominates (an unverified obligation survives the
        // merge), then Verified, then Stale.
        let merged = match (&self.state[ra], &self.state[rb]) {
            (e @ State::Encoded { .. }, _) | (_, e @ State::Encoded { .. }) => e.clone(),
            (State::Verified, _) | (_, State::Verified) => State::Verified,
            (State::Stale, _) | (_, State::Stale) => State::Stale,
            _ => State::Raw,
        };
        self.parent[rb] = ra;
        self.state[ra] = merged;
        ra
    }

    fn set(&mut self, x: usize, s: State) {
        let r = self.find(x);
        self.state[r] = s;
    }

    fn state_of(&mut self, x: usize) -> State {
        let r = self.find(x);
        self.state[r].clone()
    }
}

/// Run the encoded-typestate pass over every non-test fn body.
pub fn encoded_typestate(
    rel_path: &str,
    toks: &[Tok],
    parsed: &ParsedFile,
    out: &mut Vec<Finding>,
) {
    for f in &parsed.fns {
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else {
            continue;
        };
        // Nested fn bodies are separate scopes: skip their sub-ranges.
        let mut skips: Vec<(usize, usize)> = parsed
            .fns
            .iter()
            .filter_map(|g| g.body)
            .filter(|&(s, e)| s > start && e < end)
            .collect();
        skips.sort_unstable();
        scan_fn(rel_path, toks, (start, end), &skips, out);
    }
}

fn scan_fn(
    rel_path: &str,
    toks: &[Tok],
    (start, end): (usize, usize),
    skips: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    let mut fl = Flow::default();
    let mut vars: BTreeMap<String, usize> = BTreeMap::new();
    let mut i = start;
    while i < end {
        if let Some(&(_, sub_end)) = skips.iter().find(|&&(s, e)| s <= i && i < e) {
            i = sub_end;
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            // Indexed writes never start at a punct; nothing else to do.
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        if name == "let" {
            handle_let(toks, i, end, &mut fl, &mut vars);
        } else if PRODUCERS.contains(&name) && is_method_call(toks, i) {
            let parts = call_participants(toks, i, &mut fl, &mut vars, true);
            if let Some(root) = union_all(&mut fl, &parts) {
                let display = parts
                    .iter()
                    .find_map(|(n, _)| (!n.is_empty()).then(|| n.clone()))
                    .unwrap_or_else(|| name.to_string());
                let producer = PRODUCERS.iter().find(|p| **p == name).copied().unwrap();
                fl.set(
                    root,
                    State::Encoded {
                        line: t.line,
                        col: t.col,
                        name: display,
                        producer,
                    },
                );
            }
        } else if VERIFIERS.contains(&name) && is_method_call(toks, i) {
            let parts = call_participants(toks, i, &mut fl, &mut vars, true);
            if let Some(root) = union_all(&mut fl, &parts) {
                fl.set(root, State::Verified);
            }
        } else if MUTATORS.contains(&name) && is_method_call(toks, i) {
            if let Some(recv) = receiver_ident(toks, i) {
                if let Some(&node) = vars.get(recv) {
                    if let State::Encoded { name: enc, .. } = fl.state_of(node) {
                        out.push(Finding::new(
                            rel_path,
                            t.line,
                            t.col,
                            ENCODED_TYPESTATE,
                            format!(
                                "raw mutation of encoded `{enc}` via `{name}()` invalidates \
                                 its checksums; verify or re-encode first"
                            ),
                        ));
                        fl.set(node, State::Stale);
                    }
                }
            }
        } else if is_nonlinearity(name) && next_is(toks, i, "(") {
            let parts = call_participants(toks, i, &mut fl, &mut vars, false);
            for (pname, node) in &parts {
                if let State::Encoded { .. } = fl.state_of(*node) {
                    out.push(Finding::new(
                        rel_path,
                        t.line,
                        t.col,
                        ENCODED_TYPESTATE,
                        format!(
                            "encoded `{pname}` feeds nonlinearity `{name}` before verification"
                        ),
                    ));
                    fl.set(*node, State::Stale);
                    break;
                }
            }
        } else if vars.contains_key(name) {
            check_indexed_write(rel_path, toks, i, end, &mut fl, &vars, out);
        }
        i += 1;
    }
    // Escape check: any component still Encoded at fn exit.
    let mut seen_roots: Vec<usize> = Vec::new();
    let nodes: Vec<usize> = vars.values().copied().collect();
    for node in nodes {
        let r = fl.find(node);
        if seen_roots.contains(&r) {
            continue;
        }
        seen_roots.push(r);
        if let State::Encoded {
            line,
            col,
            name,
            producer,
        } = fl.state_of(r)
        {
            out.push(Finding::new(
                rel_path,
                line,
                col,
                ENCODED_TYPESTATE,
                format!(
                    "value encoded by `{producer}` (`{name}`) never reaches a \
                     verify/exit point in this fn"
                ),
            ));
        }
    }
}

/// `var[..] = …` / `var[..] += …`: an indexed write through a known
/// variable; flag when its component is Encoded.
fn check_indexed_write(
    rel_path: &str,
    toks: &[Tok],
    i: usize,
    end: usize,
    fl: &mut Flow,
    vars: &BTreeMap<String, usize>,
    out: &mut Vec<Finding>,
) {
    let Some(open) = next_code_idx(toks, i + 1) else {
        return;
    };
    if open >= end || !toks[open].is_punct("[") {
        return;
    }
    let Some(close) = match_delim(toks, open, "[", "]") else {
        return;
    };
    let Some(after) = next_code_idx(toks, close + 1) else {
        return;
    };
    if after >= end {
        return;
    }
    let is_assign = toks[after].kind == TokKind::Punct
        && matches!(toks[after].text.as_str(), "=" | "+=" | "-=" | "*=" | "/=");
    if !is_assign {
        return;
    }
    let node = vars[toks[i].text.as_str()];
    if let State::Encoded { name: enc, .. } = fl.state_of(node) {
        out.push(Finding::new(
            rel_path,
            toks[i].line,
            toks[i].col,
            ENCODED_TYPESTATE,
            format!("raw indexed write to encoded `{enc}` invalidates its checksums"),
        ));
        fl.set(node, State::Stale);
    }
}

/// Handle a `let` statement: bind fresh nodes for the pattern names and
/// union them with every already-known variable on the right-hand side.
fn handle_let(
    toks: &[Tok],
    i: usize,
    end: usize,
    fl: &mut Flow,
    vars: &mut BTreeMap<String, usize>,
) {
    // `if let` / `while let` conditions terminate at their body `{`.
    let cond_let =
        prev_code_idx(toks, i).is_some_and(|p| toks[p].is_ident("if") || toks[p].is_ident("while"));
    // Pattern names: idents up to `=` (or `;`/`{` for pattern-only lets).
    let mut pat: Vec<String> = Vec::new();
    let mut j = i + 1;
    let mut eq: Option<usize> = None;
    while j < end {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct if t.text == "=" => {
                eq = Some(j);
                break;
            }
            TokKind::Punct if t.text == ";" || t.text == "{" => break,
            TokKind::Ident if !is_flow_keyword(&t.text) && t.text != "self" => {
                pat.push(t.text.clone());
            }
            _ => {}
        }
        j += 1;
    }
    // RHS variable components, collected *before* rebinding the pattern
    // names (so `let x = x.scaled();` links to the old `x`). Unknown
    // idents in variable position get fresh nodes now, so a later
    // producer call on the same statement joins the same component.
    let mut rhs_nodes: Vec<usize> = Vec::new();
    if let Some(eq) = eq {
        let mut depth = 0i32;
        let mut k = eq + 1;
        while k < end {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if cond_let && depth == 0 => break,
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && is_var_position(toks, k) {
                let node = *vars.entry(t.text.clone()).or_insert_with(|| fl.fresh());
                rhs_nodes.push(node);
            }
            k += 1;
        }
    }
    let mut all: Vec<usize> = rhs_nodes;
    for name in pat {
        let node = fl.fresh();
        vars.insert(name, node);
        all.push(node);
    }
    if all.len() > 1 {
        let first = all[0];
        for &n in &all[1..] {
            fl.union(first, n);
        }
    }
}

/// The receiver ident of `recv.method(…)` at method-name index `i`.
fn receiver_ident(toks: &[Tok], i: usize) -> Option<&str> {
    let dot = prev_code_idx(toks, i)?;
    if !toks[dot].is_punct(".") {
        return None;
    }
    let r = prev_code_idx(toks, dot)?;
    (toks[r].kind == TokKind::Ident && toks[r].text != "self").then(|| toks[r].text.as_str())
}

/// Receiver + argument variables of a call at name index `i`. With
/// `create`, unknown idents in variable position become fresh nodes
/// (producers/verifiers track values we have not seen bound locally,
/// e.g. fields lifted through `self.sec`).
fn call_participants(
    toks: &[Tok],
    i: usize,
    fl: &mut Flow,
    vars: &mut BTreeMap<String, usize>,
    create: bool,
) -> Vec<(String, usize)> {
    let mut parts: Vec<(String, usize)> = Vec::new();
    let mut add = |name: &str, fl: &mut Flow, vars: &mut BTreeMap<String, usize>| {
        if let Some(&node) = vars.get(name) {
            parts.push((name.to_string(), node));
        } else if create {
            let node = fl.fresh();
            vars.insert(name.to_string(), node);
            parts.push((name.to_string(), node));
        }
    };
    if let Some(recv) = receiver_ident(toks, i) {
        let recv = recv.to_string();
        add(&recv, fl, vars);
    }
    if let Some(open) = next_code_idx(toks, i + 1) {
        if toks[open].is_punct("(") {
            if let Some(close) = match_delim(toks, open, "(", ")") {
                for k in open + 1..close {
                    if toks[k].kind == TokKind::Ident && is_var_position(toks, k) {
                        let name = toks[k].text.clone();
                        add(&name, fl, vars);
                    }
                }
            }
        }
    }
    parts
}

fn union_all(fl: &mut Flow, parts: &[(String, usize)]) -> Option<usize> {
    let mut iter = parts.iter();
    let (_, first) = iter.next()?;
    let mut root = fl.find(*first);
    for (_, n) in iter {
        root = fl.union(root, *n);
    }
    Some(root)
}

/// Is the ident at `k` a plain variable use (not a path segment, field
/// access, call name, or macro)?
fn is_var_position(toks: &[Tok], k: usize) -> bool {
    let t = &toks[k];
    if is_flow_keyword(&t.text) || t.text == "self" {
        return false;
    }
    if let Some(p) = prev_code_idx(toks, k) {
        if toks[p].is_punct(".") || toks[p].is_punct("::") {
            return false;
        }
    }
    if let Some(n) = next_code_idx(toks, k + 1) {
        if toks[n].is_punct("(") || toks[n].is_punct("::") || toks[n].is_punct("!") {
            return false;
        }
    }
    true
}

fn is_nonlinearity(name: &str) -> bool {
    name.starts_with("softmax") || name.starts_with("gelu") || name.starts_with("layer_norm")
}

/// Keywords and value-literal idents that are never variables here.
fn is_flow_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "ref"
            | "as"
            | "move"
            | "if"
            | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "in"
            | "return"
            | "break"
            | "continue"
            | "true"
            | "false"
            | "fn"
            | "unsafe"
            | "const"
            | "static"
            | "use"
            | "pub"
            | "struct"
            | "enum"
            | "impl"
            | "where"
            | "dyn"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
    )
}

fn is_method_call(toks: &[Tok], i: usize) -> bool {
    prev_code_idx(toks, i).is_some_and(|p| toks[p].is_punct(".")) && next_is(toks, i, "(")
}

fn next_is(toks: &[Tok], i: usize, punct: &str) -> bool {
    next_code_idx(toks, i + 1).is_some_and(|n| toks[n].is_punct(punct))
}

fn next_code_idx(toks: &[Tok], i: usize) -> Option<usize> {
    toks.iter()
        .enumerate()
        .skip(i)
        .find(|(_, t)| t.kind != TokKind::LineComment)
        .map(|(j, _)| j)
}

fn prev_code_idx(toks: &[Tok], i: usize) -> Option<usize> {
    toks[..i]
        .iter()
        .rposition(|t| t.kind != TokKind::LineComment)
}

/// Index of the delimiter matching `open_idx` (which holds `open`).
fn match_delim(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Tallied `unsafe` surface of one file.
#[derive(Debug, Default, Clone, Copy)]
pub struct UnsafeTally {
    /// Non-test `unsafe` sites in Full-profile code.
    pub sites: usize,
    /// Of those, sites carrying a `// SAFETY:` directive.
    pub documented: usize,
}

/// Run the unsafe-audit pass: SAFETY adjacency for every unsafe site,
/// plus the `from_raw_parts*` asserted-length rule.
pub fn unsafe_audit(
    rel_path: &str,
    toks: &[Tok],
    ctx: &Context,
    dir: &Directives,
    parsed: &ParsedFile,
    profile: Profile,
    out: &mut Vec<Finding>,
) -> UnsafeTally {
    let mut tally = UnsafeTally::default();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let Some(kind) = classify_unsafe(toks, i) else {
            continue; // `unsafe fn(…)` pointer type, not a site
        };
        let safety = dir.safeties.iter().find(|s| s.target_line == t.line);
        let exempt = profile == Profile::Relaxed || ctx.in_test.get(i).copied().unwrap_or(false);
        if exempt {
            // Test-region unsafe is exempt, but its SAFETY comment (if
            // any) still counts as used so it is not flagged dangling.
            if let Some(s) = safety {
                s.used.set(true);
            }
            continue;
        }
        tally.sites += 1;
        match safety {
            Some(s) => {
                s.used.set(true);
                tally.documented += 1;
            }
            None => out.push(Finding::new(
                rel_path,
                t.line,
                t.col,
                UNSAFE_AUDIT,
                format!("`unsafe {kind}` without an adjacent `// SAFETY:` justification"),
            )),
        }
    }
    // `from_raw_parts*`: the length expression must mention an ident
    // that also appears inside an assert extent of the same fn body.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !t.text.starts_with("from_raw_parts") {
            continue;
        }
        if profile == Profile::Relaxed || ctx.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(open) = next_code_idx(toks, i + 1) else {
            continue;
        };
        if !toks[open].is_punct("(") {
            continue;
        }
        let Some(close) = match_delim(toks, open, "(", ")") else {
            continue;
        };
        let len_idents = second_arg_idents(toks, open, close);
        let body = parsed
            .fns
            .iter()
            .filter_map(|f| f.body)
            .filter(|&(s, e)| s <= i && i < e)
            .max_by_key(|&(s, _)| s);
        let bound = body.is_some_and(|(s, e)| {
            (s..e).any(|k| {
                ctx.in_assert.get(k).copied().unwrap_or(false)
                    && toks[k].kind == TokKind::Ident
                    && len_idents.contains(&toks[k].text)
            })
        });
        if !bound {
            out.push(Finding::new(
                rel_path,
                t.line,
                t.col,
                UNSAFE_AUDIT,
                format!(
                    "length of `{}` is not tied to an asserted bound in this fn body",
                    t.text
                ),
            ));
        }
    }
    tally
}

/// Classify the `unsafe` token at `i`: `Some("block" | "fn" | "impl" |
/// "trait")`, or `None` for `unsafe fn(…)` pointer types.
fn classify_unsafe(toks: &[Tok], i: usize) -> Option<&'static str> {
    let j = next_code_idx(toks, i + 1)?;
    match toks[j].text.as_str() {
        "{" if toks[j].kind == TokKind::Punct => Some("block"),
        "impl" => Some("impl"),
        "trait" => Some("trait"),
        "fn" => fn_item_kind(toks, j),
        "extern" => {
            // `unsafe extern "C" fn name` — skip the ABI string.
            let mut k = next_code_idx(toks, j + 1)?;
            if toks[k].kind == TokKind::Str {
                k = next_code_idx(toks, k + 1)?;
            }
            if toks[k].is_ident("fn") {
                fn_item_kind(toks, k)
            } else {
                // `unsafe extern "C" { … }` block (Rust 2024 grammar).
                Some("block")
            }
        }
        _ => None,
    }
}

/// `fn` at `j` names an item (ident follows) rather than a pointer type.
fn fn_item_kind(toks: &[Tok], j: usize) -> Option<&'static str> {
    let k = next_code_idx(toks, j + 1)?;
    (toks[k].kind == TokKind::Ident).then_some("fn")
}

/// Identifiers of the second top-level argument of the call `(open..close)`.
fn second_arg_idents(toks: &[Tok], open: usize, close: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut depth = 0i32;
    let mut arg = 0usize;
    for t in &toks[open + 1..close] {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => arg += 1,
                _ => {}
            }
        } else if arg == 1 && t.kind == TokKind::Ident && !is_flow_keyword(&t.text) {
            idents.push(t.text.clone());
        }
    }
    idents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::{directives, parse, scope};

    fn typestate(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let ctx = scope::analyze(&toks);
        let parsed = parse::parse_file(&toks, &ctx);
        let mut out = Vec::new();
        encoded_typestate("crates/model/src/x.rs", &toks, &parsed, &mut out);
        out
    }

    fn audit(src: &str) -> (Vec<Finding>, UnsafeTally) {
        let toks = lex(src);
        let ctx = scope::analyze(&toks);
        let parsed = parse::parse_file(&toks, &ctx);
        let dir = directives::parse("crates/model/src/x.rs", &toks, &ctx.code_lines);
        let mut out = Vec::new();
        let tally = unsafe_audit(
            "crates/model/src/x.rs",
            &toks,
            &ctx,
            &dir,
            &parsed,
            Profile::Full,
            &mut out,
        );
        (out, tally)
    }

    #[test]
    fn encoded_value_escaping_unverified_is_flagged() {
        let f = typestate(
            "fn forward(sec: &mut GuardedSection) {\n\
             let scores = sec.gemm_encode_cols(&q, &k);\n\
             emit(&scores);\n\
             }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, ENCODED_TYPESTATE);
        assert!(f[0].message.contains("never reaches"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn verified_value_escaping_is_clean() {
        let f = typestate(
            "fn forward() {\n\
             let scores = sec.gemm_encode_cols(&q, &k);\n\
             sec.detect(&scores);\n\
             emit(&scores);\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn verification_travels_through_bindings() {
        // Verifying via the section variable covers the whole component.
        let f = typestate(
            "fn forward() {\n\
             let scores = sec.gemm_encode_cols(&q, &k);\n\
             let probs = scores;\n\
             sec.exit_reencode_cols(probs);\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn raw_mutation_of_encoded_operand_is_flagged_once() {
        let f = typestate(
            "fn forward() {\n\
             let m = sec.gemm_encode_cols(&q, &k);\n\
             m.set(0, 0, 1.0);\n\
             }\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("raw mutation"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn mutation_before_encoding_is_clean() {
        let f = typestate(
            "fn forward() {\n\
             let m = build();\n\
             m.set(0, 0, 1.0);\n\
             let e = sec.encode_cols(m);\n\
             sec.detect(&e);\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn indexed_write_to_encoded_operand_is_flagged() {
        let f = typestate(
            "fn forward() {\n\
             let m = sec.gemm_encode_cols(&q, &k);\n\
             m[0] = 3.0;\n\
             }\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("indexed write"));
    }

    #[test]
    fn encoded_value_feeding_nonlinearity_is_flagged() {
        let f = typestate(
            "fn forward() {\n\
             let scores = sec.gemm_encode_cols(&q, &k);\n\
             softmax_rows(&mut scores);\n\
             }\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("nonlinearity"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn test_fns_are_not_analyzed() {
        let f =
            typestate("#[test]\nfn check() { let m = sec.gemm_encode_cols(&q, &k); emit(&m); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn undocumented_unsafe_sites_are_flagged_and_tallied() {
        let (f, tally) = audit(
            "unsafe impl Send for P {}\n\
             // SAFETY: raw pointer is unique per rayon task\n\
             unsafe impl Sync for P {}\n\
             fn go() { let x = unsafe { read() }; }\n",
        );
        assert_eq!(tally.sites, 3);
        assert_eq!(tally.documented, 1);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.lint == UNSAFE_AUDIT));
    }

    #[test]
    fn fn_pointer_types_are_not_unsafe_sites() {
        let (f, tally) = audit("struct H { hook: unsafe fn(usize) -> f32 }\n");
        assert!(f.is_empty());
        assert_eq!(tally.sites, 0);
    }

    #[test]
    fn from_raw_parts_needs_an_asserted_bound() {
        let (f, _) = audit(
            "fn stage(p: *mut f32, k: usize) {\n\
             // SAFETY: staging rows are disjoint\n\
             let s = unsafe { std::slice::from_raw_parts_mut(p, 2 * k) };\n\
             }\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("asserted bound"));
    }

    #[test]
    fn asserted_bound_satisfies_from_raw_parts() {
        let (f, tally) = audit(
            "fn stage(p: *mut f32, k: usize, cap: usize) {\n\
             assert!(2 * k <= cap);\n\
             // SAFETY: bound asserted above\n\
             let s = unsafe { std::slice::from_raw_parts_mut(p, 2 * k) };\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(tally.sites, 1);
        assert_eq!(tally.documented, 1);
    }

    #[test]
    fn test_region_unsafe_is_exempt_but_marks_safety_used() {
        let src = "#[cfg(test)]\nmod tests {\n\
             // SAFETY: test-only probe\n\
             fn f() { let x = unsafe { read() }; }\n\
             }\n";
        let toks = lex(src);
        let ctx = scope::analyze(&toks);
        let parsed = parse::parse_file(&toks, &ctx);
        let dir = directives::parse("crates/model/src/x.rs", &toks, &ctx.code_lines);
        let mut out = Vec::new();
        let tally = unsafe_audit(
            "crates/model/src/x.rs",
            &toks,
            &ctx,
            &dir,
            &parsed,
            Profile::Full,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(tally.sites, 0);
        assert!(dir.safeties[0].used.get());
    }
}
