//! Workspace symbol table and conservative call graph.
//!
//! Built once per run from every full-profile file's parsed items and
//! shared by all reachability lints. Resolution is name-based with
//! receiver-type hints where they are cheap:
//!
//! * free calls bind to free fns (same-file candidates win over
//!   same-name fns elsewhere — shadowing locality), `Type::name(…)` and
//!   `module::name(…)` paths filter by qualifier,
//! * method calls bind by receiver type when it is recoverable from
//!   `self`, a typed param/local, or a struct field
//!   (`self.engine.step(…)` uses the field's declared type),
//! * hint-less method calls fan out **conservatively** to every
//!   same-name workspace method, capped at [`FANOUT_CAP`] targets —
//!   beyond the cap the call is counted as unresolved and adds no edges,
//! * names that collide with ubiquitous std methods (`STD_METHODS`)
//!   resolve as external unless a receiver hint proves otherwise, and
//!   calls through locally-bound values (closures, fn params) never
//!   bind to same-name items.
//!
//! A call with no same-name workspace item is *external* (std/vendor):
//! it cannot affect the graph and counts as resolved. The resolution
//! rate reported to CI is `resolved / total` over every call site seen.

use crate::lexer::{Tok, TokKind};
use crate::parse::ParsedFile;
use crate::scope::Context;
use std::collections::{BTreeMap, BTreeSet};

/// Max conservative fan-out for a hint-less method call.
pub const FANOUT_CAP: usize = 8;

/// Ubiquitous std method names: hint-less calls to these are external.
#[rustfmt::skip]
const STD_METHODS: [&str; 40] = [
    "map", "get", "get_mut", "iter", "iter_mut", "into_iter", "len", "is_empty", "push", "pop",
    "insert", "remove", "clone", "to_vec", "next", "last", "first", "first_mut", "chunks",
    "chunks_mut", "windows", "contains", "extend", "drain", "clear", "sum", "fold", "reduce",
    "collect", "filter", "rev", "zip", "enumerate", "take", "skip", "min", "max", "abs", "sqrt",
    "fill",
];

/// Ordered-reduction adapters (shared with the syntactic lint).
const ORDERED_REDUCERS: [&str; 4] = ["sum", "product", "reduce", "fold"];

/// How a call site was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Bound to ≥ 1 workspace fns (possibly conservatively).
    Bound,
    /// No workspace candidate / std-colliding / locally shadowed: the
    /// call cannot add graph edges and is exact by construction.
    External,
    /// Workspace candidates exist but could not be bound (fan-out over
    /// [`FANOUT_CAP`], or a free call naming only methods).
    Unresolved,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// File index (into the graph's file list).
    pub file: usize,
    /// 1-based source position of the callee name.
    pub line: u32,
    pub col: u32,
    /// Callee name as written.
    pub name: String,
    /// Calling function (index into [`Graph::fns`]).
    pub caller: usize,
    /// Resolved workspace targets (fn indexes).
    pub targets: Vec<usize>,
    /// Whether the site sits inside a rayon parallel chain.
    pub in_par_chain: bool,
    /// Whether the site sits inside an `is_x86_feature_detected!`-gated
    /// branch.
    pub gated: bool,
    /// Whether this is a `.name(…)` method call.
    pub is_method: bool,
    /// How the site resolved.
    pub resolution: Resolution,
}

/// A function in the graph: parsed item plus the per-body facts the
/// reachability lints consume.
#[derive(Debug)]
pub struct FnNode {
    /// Bare name.
    pub name: String,
    /// `impl`/`trait` owner for methods.
    pub owner: Option<String>,
    /// File index.
    pub file: usize,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Declared under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
    /// Carries a `#[target_feature(…)]` attribute.
    pub has_target_feature: bool,
    /// Has a `{ … }` body (false for bodiless trait declarations).
    pub has_body: bool,
    /// Call sites in this body (indexes into [`Graph::sites`]).
    pub calls: Vec<usize>,
    /// Panic-capable constructs: (line, col, description).
    pub panic_sites: Vec<(u32, u32, &'static str)>,
    /// Heap-allocation constructs: (line, col, description).
    pub alloc_sites: Vec<(u32, u32, &'static str)>,
    /// First ordered float-reduction evidence in the body, if any:
    /// a compound assignment or ordered reducer in a float-bearing fn.
    pub ordered_reduction: Option<(u32, u32)>,
}

impl FnNode {
    /// `Owner::name` for methods, bare `name` for free fns.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Workspace-relative paths, indexed by `CallSite::file`/`FnNode::file`.
    pub files: Vec<String>,
    /// Every non-test fn with a body, plus bodiless trait declarations
    /// (no calls, no sites — they exist for owner lookups only).
    pub fns: Vec<FnNode>,
    /// Every call site, in (file, body, position) order.
    pub sites: Vec<CallSite>,
    /// Total calls seen / resolved (bound + external) / unresolved.
    pub calls_total: usize,
    pub calls_resolved: usize,
    pub calls_unresolved: usize,
}

impl Graph {
    /// `resolved / total`, 1.0 for an empty graph.
    pub fn resolution_rate(&self) -> f64 {
        if self.calls_total == 0 {
            1.0
        } else {
            self.calls_resolved as f64 / self.calls_total as f64
        }
    }

    /// Find fns by `(owner, name)`.
    pub fn find_methods(&self, owner: &str, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == name && f.owner.as_deref() == Some(owner))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Per-file inputs to the graph build.
pub struct FileInput<'a> {
    pub rel: &'a str,
    pub toks: &'a [Tok],
    pub ctx: &'a Context,
    pub parsed: &'a ParsedFile,
}

/// Build the graph from every full-profile file.
pub fn build(files: &[FileInput<'_>]) -> Graph {
    let mut g = Graph::default();
    // Pass 1: register fns and struct fields.
    let mut field_types: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut field_unique: BTreeMap<String, Option<String>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        g.files.push(f.rel.to_string());
        for (sname, fields) in &f.parsed.structs {
            for (fname, fty) in fields {
                field_types.insert((sname.clone(), fname.clone()), fty.clone());
                field_unique
                    .entry(fname.clone())
                    .and_modify(|e| {
                        if e.as_deref() != Some(fty.as_str()) {
                            *e = None; // ambiguous across structs
                        }
                    })
                    .or_insert_with(|| Some(fty.clone()));
            }
        }
        for item in &f.parsed.fns {
            if item.is_test {
                continue;
            }
            g.fns.push(FnNode {
                name: item.name.clone(),
                owner: item.owner.clone(),
                file: fi,
                line: item.line,
                is_test: item.is_test,
                has_target_feature: item.has_target_feature,
                has_body: item.body.is_some(),
                calls: Vec::new(),
                panic_sites: Vec::new(),
                alloc_sites: Vec::new(),
                ordered_reduction: None,
            });
        }
    }
    // Symbol table: name → fn indexes.
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }
    // File stems (`crates/tensor/src/float.rs` → `float`), for binding
    // module-qualified free calls to the module that defines them.
    let stems: Vec<String> = g
        .files
        .iter()
        .map(|f| {
            f.rsplit('/')
                .next()
                .unwrap_or(f)
                .trim_end_matches(".rs")
                .to_string()
        })
        .collect();

    // Pass 2: walk bodies — extract sites, panic/alloc facts, resolve.
    let mut fn_cursor = 0usize;
    for (fi, f) in files.iter().enumerate() {
        // Map parsed items (with bodies) back to graph nodes, in order.
        let nodes: Vec<(usize, &crate::parse::FnItem)> = f
            .parsed
            .fns
            .iter()
            .filter(|it| !it.is_test)
            .map(|it| {
                let id = fn_cursor;
                fn_cursor += 1;
                (id, it)
            })
            .collect();
        // Nested-fn body ranges, for exclusion from parents.
        let ranges: Vec<(usize, usize)> = nodes.iter().filter_map(|(_, it)| it.body).collect();
        for (id, item) in &nodes {
            let Some((lo, hi)) = item.body else { continue };
            let nested: Vec<(usize, usize)> = ranges
                .iter()
                .copied()
                .filter(|&(a, b)| a > lo && b < hi)
                .collect();
            let owner = g.fns[*id].owner.clone();
            let facts = walk_body(
                f,
                fi,
                *id,
                (lo, hi),
                &nested,
                item,
                owner.as_deref(),
                &by_name,
                &field_types,
                &field_unique,
                &g.fns,
                &stems,
            );
            let node = &mut g.fns[*id];
            node.panic_sites = facts.panic_sites;
            node.alloc_sites = facts.alloc_sites;
            node.ordered_reduction = facts.ordered_reduction;
            for site in facts.sites {
                g.calls_total += 1;
                match site.resolution {
                    Resolution::Unresolved => g.calls_unresolved += 1,
                    _ => g.calls_resolved += 1,
                }
                let si = g.sites.len();
                g.fns[*id].calls.push(si);
                g.sites.push(site);
            }
        }
    }
    g
}

/// Facts extracted from one body walk.
#[derive(Default)]
struct BodyFacts {
    sites: Vec<CallSite>,
    panic_sites: Vec<(u32, u32, &'static str)>,
    alloc_sites: Vec<(u32, u32, &'static str)>,
    ordered_reduction: Option<(u32, u32)>,
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

#[allow(clippy::too_many_arguments)] // internal plumbing of one build pass
fn walk_body(
    f: &FileInput<'_>,
    file_idx: usize,
    caller: usize,
    (lo, hi): (usize, usize),
    nested: &[(usize, usize)],
    item: &crate::parse::FnItem,
    owner: Option<&str>,
    by_name: &BTreeMap<String, Vec<usize>>,
    field_types: &BTreeMap<(String, String), String>,
    field_unique: &BTreeMap<String, Option<String>>,
    fns: &[FnNode],
    stems: &[String],
) -> BodyFacts {
    let toks = f.toks;
    let ctx = f.ctx;
    let mut out = BodyFacts::default();

    // Local value bindings: typed lets become receiver hints; every let
    // (and every param) shadows same-name items for call resolution.
    let mut local_types: BTreeMap<String, String> = item.params.iter().cloned().collect();
    let mut local_values: BTreeSet<String> = item.params.iter().map(|(n, _)| n.clone()).collect();
    let mut i = lo;
    while i < hi {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                local_values.insert(name.text.clone());
                if toks.get(j + 1).is_some_and(|t| t.is_punct(":")) {
                    if let Some((ty, _)) = crate::parse::type_last_segment(toks, j + 2) {
                        local_types.insert(name.text.clone(), ty);
                    }
                }
            }
        }
        i += 1;
    }

    let mut has_float = false;
    for t in &toks[lo..hi] {
        if t.kind == TokKind::Float || t.is_ident("f32") || t.is_ident("f64") {
            has_float = true;
            break;
        }
    }

    let in_nested = |i: usize| nested.iter().any(|&(a, b)| i >= a && i < b);

    let mut i = lo;
    while i < hi {
        if in_nested(i) || toks[i].kind == TokKind::LineComment || ctx.in_test[i] {
            i += 1;
            continue;
        }
        // Skip attribute groups (`#[…]`) — their idents are not calls.
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|b| b.is_punct("[")) {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < hi {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        let t = &toks[i];

        // --- panic facts -------------------------------------------------
        if t.kind == TokKind::Ident {
            if (t.text == "unwrap" || t.text == "expect")
                && prev_code(toks, i).is_some_and(|p| p.is_punct("."))
                && next_code(toks, i).is_some_and(|n| n.is_punct("("))
            {
                let desc = if t.text == "unwrap" {
                    "`.unwrap()`"
                } else {
                    "`.expect(…)`"
                };
                out.panic_sites.push((t.line, t.col, desc));
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && next_code(toks, i).is_some_and(|n| n.is_punct("!"))
            {
                out.panic_sites.push((t.line, t.col, "panic-family macro"));
            }
        }
        if t.is_punct("[") && !ctx.in_assert[i] {
            let expr_head = matches!(
                prev_code(toks, i),
                Some(p) if (p.kind == TokKind::Ident && !is_bracket_keyword(&p.text))
                    || p.is_punct(")")
                    || p.is_punct("]")
            );
            if expr_head {
                out.panic_sites.push((t.line, t.col, "slice indexing"));
            }
        }

        // --- alloc facts -------------------------------------------------
        if t.kind == TokKind::Ident {
            let alloc: Option<&'static str> = match t.text.as_str() {
                "vec" if next_code(toks, i).is_some_and(|n| n.is_punct("!")) => Some("`vec!`"),
                "new" | "with_capacity" => {
                    let head = toks[..i]
                        .iter()
                        .rev()
                        .filter(|x| x.kind != TokKind::LineComment)
                        .nth(1);
                    match (prev_code(toks, i), head) {
                        (Some(p), Some(h))
                            if p.is_punct("::") && (h.is_ident("Vec") || h.is_ident("Box")) =>
                        {
                            Some("heap allocation")
                        }
                        _ => None,
                    }
                }
                "to_vec" | "clone"
                    if prev_code(toks, i).is_some_and(|p| p.is_punct("."))
                        && next_code(toks, i).is_some_and(|n| n.is_punct("(")) =>
                {
                    Some("owned-buffer copy")
                }
                _ => None,
            };
            if let Some(desc) = alloc {
                out.alloc_sites.push((t.line, t.col, desc));
            }
        }

        // --- ordered-reduction evidence ---------------------------------
        if out.ordered_reduction.is_none() && has_float {
            let compound = t.kind == TokKind::Punct
                && matches!(t.text.as_str(), "+=" | "-=" | "*=" | "/=")
                && !rhs_is_int_literal(toks, i);
            let reducer = t.kind == TokKind::Ident
                && ORDERED_REDUCERS.contains(&t.text.as_str())
                && prev_code(toks, i).is_some_and(|p| p.is_punct("."))
                && next_code(toks, i).is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
            if compound || reducer {
                out.ordered_reduction = Some((t.line, t.col));
            }
        }

        // --- call sites --------------------------------------------------
        if t.kind == TokKind::Ident && !is_call_keyword(&t.text) {
            let next = next_code(toks, i);
            let is_direct_call = next.is_some_and(|n| n.is_punct("("));
            // Turbofish: `name::<T>(…)`.
            let is_turbofish_call =
                next.is_some_and(|n| n.is_punct("::")) && after_turbofish_is_paren(toks, i);
            if is_direct_call || is_turbofish_call {
                let prev = prev_code(toks, i);
                let is_def = prev.is_some_and(|p| p.is_ident("fn"));
                let is_macro = false; // `name!(` never matches: next is `!`
                if !is_def && !is_macro {
                    let site = resolve_site(
                        toks,
                        ctx,
                        i,
                        file_idx,
                        caller,
                        owner,
                        &local_types,
                        &local_values,
                        by_name,
                        field_types,
                        field_unique,
                        fns,
                        stems,
                    );
                    out.sites.push(site);
                }
            }
        }
        i += 1;
    }
    out
}

/// After `name::`, skip one `<…>` group; is the next token `(`?
fn after_turbofish_is_paren(toks: &[Tok], name_idx: usize) -> bool {
    let mut j = name_idx + 1;
    // skip to `::`
    while j < toks.len() && toks[j].kind == TokKind::LineComment {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct("::")) {
        return false;
    }
    j += 1;
    while j < toks.len() && toks[j].kind == TokKind::LineComment {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct("<")) {
        return false;
    }
    let mut angle = 1i32;
    j += 1;
    while j < toks.len() && angle > 0 {
        if toks[j].is_punct("<") {
            angle += 1;
        } else if toks[j].is_punct(">") {
            angle -= 1;
        }
        j += 1;
    }
    while j < toks.len() && toks[j].kind == TokKind::LineComment {
        j += 1;
    }
    toks.get(j).is_some_and(|t| t.is_punct("("))
}

#[allow(clippy::too_many_arguments)] // internal plumbing of one build pass
fn resolve_site(
    toks: &[Tok],
    ctx: &Context,
    i: usize,
    file_idx: usize,
    caller: usize,
    owner: Option<&str>,
    local_types: &BTreeMap<String, String>,
    local_values: &BTreeSet<String>,
    by_name: &BTreeMap<String, Vec<usize>>,
    field_types: &BTreeMap<(String, String), String>,
    field_unique: &BTreeMap<String, Option<String>>,
    fns: &[FnNode],
    stems: &[String],
) -> CallSite {
    let t = &toks[i];
    let name = t.text.clone();
    let is_method = prev_code(toks, i).is_some_and(|p| p.is_punct("."));
    let mut site = CallSite {
        file: file_idx,
        line: t.line,
        col: t.col,
        name: name.clone(),
        caller,
        targets: Vec::new(),
        in_par_chain: ctx.in_par_chain.get(i).copied().unwrap_or(false),
        gated: ctx.in_feature_gate.get(i).copied().unwrap_or(false),
        is_method,
        resolution: Resolution::External,
    };
    let candidates = by_name.get(name.as_str()).cloned().unwrap_or_default();
    if candidates.is_empty() {
        return site; // external — std/vendor, cannot affect the graph
    }

    if !is_method {
        // Locally-bound values (closures, fn-pointer params) shadow items.
        if local_values.contains(&name) {
            return site;
        }
        let qualifier = free_call_qualifier(toks, i);
        match qualifier {
            Some(q) => {
                let q = if q == "Self" {
                    owner.unwrap_or("Self").to_string()
                } else {
                    q
                };
                let filtered: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| fns[c].owner.as_deref() == Some(q.as_str()))
                    .collect();
                if !filtered.is_empty() {
                    site.targets = filtered;
                    site.resolution = Resolution::Bound;
                } else {
                    // Module-qualified free fn: `crate::`/`super::`/`self::`
                    // paths are workspace-internal, so any free candidate
                    // binds; other qualifiers (`float::exactly_zero`) bind
                    // only to free fns whose defining file matches the
                    // module name — a std path sharing a name with a
                    // workspace fn (`std::mem::take` vs `workspace::take`)
                    // must stay external.
                    let internal = matches!(q.as_str(), "crate" | "super" | "self");
                    let free: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| {
                            fns[c].owner.is_none() && (internal || stems[fns[c].file] == q)
                        })
                        .collect();
                    if !free.is_empty() {
                        site.targets = free;
                        site.resolution = Resolution::Bound;
                    } else if internal {
                        site.resolution = Resolution::Unresolved;
                    } else {
                        site.resolution = Resolution::External;
                    }
                }
            }
            None => {
                let free: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| fns[c].owner.is_none())
                    .collect();
                if free.is_empty() {
                    site.resolution = Resolution::Unresolved; // UFCS? methods only
                } else {
                    // Same-file candidates shadow same-name fns elsewhere.
                    let local: Vec<usize> = free
                        .iter()
                        .copied()
                        .filter(|&c| fns[c].file == file_idx)
                        .collect();
                    site.targets = if local.is_empty() { free } else { local };
                    site.resolution = Resolution::Bound;
                }
            }
        }
        return site;
    }

    // Method call: recover a receiver type where cheap.
    let hint = receiver_hint(toks, i, owner, local_types, field_types, field_unique);
    let methods: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| fns[c].owner.is_some())
        .collect();
    match hint {
        Some(ty) => {
            let exact: Vec<usize> = methods
                .iter()
                .copied()
                .filter(|&c| fns[c].owner.as_deref() == Some(ty.as_str()))
                .collect();
            if exact.iter().any(|&c| fns[c].has_body) {
                site.targets = exact;
                site.resolution = Resolution::Bound;
            } else if !exact.is_empty() {
                // The receiver is typed as the trait itself (`&dyn T` /
                // `&impl T`): the bodiless declaration says nothing about
                // behaviour, so fan out conservatively to every impl.
                if methods.len() <= FANOUT_CAP {
                    site.targets = methods;
                    site.resolution = Resolution::Bound;
                } else {
                    site.resolution = Resolution::Unresolved;
                }
            } else if STD_METHODS.contains(&name.as_str()) || methods.is_empty() {
                site.resolution = Resolution::External;
            } else if methods.len() <= FANOUT_CAP {
                site.targets = methods;
                site.resolution = Resolution::Bound;
            } else {
                site.resolution = Resolution::Unresolved;
            }
        }
        None => {
            if STD_METHODS.contains(&name.as_str()) || methods.is_empty() {
                site.resolution = Resolution::External;
            } else if methods.len() <= FANOUT_CAP {
                site.targets = methods;
                site.resolution = Resolution::Bound;
            } else {
                site.resolution = Resolution::Unresolved;
            }
        }
    }
    site
}

/// For a free call at `i`, the immediately-preceding path segment
/// (`Type::name(` → `Type`), if any.
fn free_call_qualifier(toks: &[Tok], i: usize) -> Option<String> {
    let mut it = toks[..i]
        .iter()
        .rev()
        .filter(|t| t.kind != TokKind::LineComment);
    let sep = it.next()?;
    if !sep.is_punct("::") {
        return None;
    }
    let seg = it.next()?;
    // `<T>::name` / `>::name` — give up on qualified-generic paths.
    (seg.kind == TokKind::Ident).then(|| seg.text.clone())
}

/// Receiver-type hint for a method call at `i`, where cheap:
/// `self.m(…)` → impl owner; `x.m(…)` → typed param/local; `self.f.m(…)`
/// → owner struct's field type; `x.f.m(…)` → typed base's field type or
/// a globally-unique field name.
fn receiver_hint(
    toks: &[Tok],
    i: usize,
    owner: Option<&str>,
    local_types: &BTreeMap<String, String>,
    field_types: &BTreeMap<(String, String), String>,
    field_unique: &BTreeMap<String, Option<String>>,
) -> Option<String> {
    let mut it = toks[..i]
        .iter()
        .rev()
        .filter(|t| t.kind != TokKind::LineComment);
    let dot = it.next()?; // the `.` before the method name
    if !dot.is_punct(".") {
        return None;
    }
    let recv = it.next()?;
    if recv.kind != TokKind::Ident {
        return None; // `(expr).m()`, `a[i].m()`, chained `… ).m()`
    }
    // What precedes the receiver: another `.` makes it a field access.
    let before = it.next();
    let prev_is_dot = before.as_ref().is_some_and(|t| t.is_punct("."));
    if !prev_is_dot {
        if recv.text == "self" {
            return owner.map(str::to_string);
        }
        return local_types.get(&recv.text).cloned();
    }
    // `base.field.m(…)`: type the base, then the field.
    let base = it.next()?;
    if base.kind != TokKind::Ident {
        return None;
    }
    let base_ty = if base.text == "self" {
        owner.map(str::to_string)
    } else {
        local_types.get(&base.text).cloned()
    };
    if let Some(bt) = base_ty {
        if let Some(ft) = field_types.get(&(bt, recv.text.clone())) {
            return Some(ft.clone());
        }
    }
    // Fall back: field name unique across all structs.
    field_unique.get(&recv.text).cloned().flatten()
}

fn rhs_is_int_literal(toks: &[Tok], i: usize) -> bool {
    let mut it = toks[i + 1..]
        .iter()
        .filter(|x| x.kind != TokKind::LineComment);
    matches!(it.next(), Some(nx) if nx.kind == TokKind::Int)
        && matches!(it.next(), Some(after) if after.is_punct(";"))
}

fn prev_code(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[..i]
        .iter()
        .rev()
        .find(|t| t.kind != TokKind::LineComment)
}

fn next_code(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[i + 1..]
        .iter()
        .find(|t| t.kind != TokKind::LineComment)
}

fn is_bracket_keyword(s: &str) -> bool {
    matches!(s, "mut" | "dyn" | "in" | "return" | "break")
}

/// Identifiers that look like calls when followed by `(` but are syntax.
fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "return"
            | "loop"
            | "for"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "break"
            | "continue"
            | "else"
            | "unsafe"
            | "await"
            | "where"
            | "let"
            | "mut"
            | "impl"
            | "dyn"
            | "fn"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse;
    use crate::scope;

    fn graph(srcs: &[(&str, &str)]) -> Graph {
        let lexed: Vec<(String, Vec<Tok>)> = srcs
            .iter()
            .map(|(rel, src)| (rel.to_string(), lex(src)))
            .collect();
        let ctxs: Vec<Context> = lexed.iter().map(|(_, t)| scope::analyze(t)).collect();
        let parsed: Vec<parse::ParsedFile> = lexed
            .iter()
            .zip(&ctxs)
            .map(|((_, t), c)| parse::parse_file(t, c))
            .collect();
        let inputs: Vec<FileInput<'_>> = lexed
            .iter()
            .zip(&ctxs)
            .zip(&parsed)
            .map(|(((rel, toks), ctx), p)| FileInput {
                rel,
                toks,
                ctx,
                parsed: p,
            })
            .collect();
        build(&inputs)
    }

    fn targets_of(g: &Graph, caller: &str, callee: &str) -> Vec<String> {
        let site = g
            .sites
            .iter()
            .find(|s| s.name == callee && g.fns[s.caller].name == caller)
            .unwrap_or_else(|| panic!("no site {caller} → {callee}"));
        site.targets.iter().map(|&t| g.fns[t].qualified()).collect()
    }

    #[test]
    fn free_call_binds_to_free_fn_not_method() {
        let g = graph(&[(
            "a.rs",
            "fn refresh() {}\n\
             struct S;\n\
             impl S { fn refresh(&self) {} fn go(&self) { refresh(); } }\n",
        )]);
        assert_eq!(targets_of(&g, "go", "refresh"), vec!["refresh"]);
    }

    #[test]
    fn self_method_binds_to_impl_owner() {
        let g = graph(&[(
            "a.rs",
            "struct A; struct B;\n\
             impl A { fn m(&self) {} fn go(&self) { self.m(); } }\n\
             impl B { fn m(&self) {} }\n",
        )]);
        assert_eq!(targets_of(&g, "go", "m"), vec!["A::m"]);
    }

    #[test]
    fn field_receiver_uses_struct_field_type() {
        let g = graph(&[(
            "a.rs",
            "struct Engine;\n\
             impl Engine { fn step(&mut self) {} }\n\
             struct Gate { engine: Engine }\n\
             struct Other;\n\
             impl Other { fn step(&mut self) {} }\n\
             impl Gate { fn tick(&mut self) { self.engine.step(); } }\n",
        )]);
        assert_eq!(targets_of(&g, "tick", "step"), vec!["Engine::step"]);
    }

    #[test]
    fn hintless_method_fans_out_conservatively() {
        let g = graph(&[(
            "a.rs",
            "struct A; struct B;\n\
             impl A { fn fire(&self) {} }\n\
             impl B { fn fire(&self) {} }\n\
             fn go(xs: &[Box<X>]) { for x in xs { x.fire(); } }\n",
        )]);
        let mut t = targets_of(&g, "go", "fire");
        t.sort();
        assert_eq!(t, vec!["A::fire", "B::fire"]);
    }

    #[test]
    fn std_colliding_names_stay_external_without_hints() {
        let g = graph(&[(
            "a.rs",
            "struct M;\n\
             impl M { fn map(&self) {} }\n\
             fn go(v: &[u8]) { let _ = v.iter().map(|x| x); }\n",
        )]);
        let site = g
            .sites
            .iter()
            .find(|s| s.name == "map" && g.fns[s.caller].name == "go")
            .unwrap();
        assert_eq!(site.resolution, Resolution::External);
        assert!(site.targets.is_empty());
    }

    #[test]
    fn local_closures_shadow_same_name_fns() {
        let g = graph(&[(
            "a.rs",
            "fn run() {}\n\
             fn go() { let run = || {}; run(); }\n",
        )]);
        let site = g
            .sites
            .iter()
            .find(|s| s.name == "run" && g.fns[s.caller].name == "go")
            .unwrap();
        assert_eq!(site.resolution, Resolution::External);
    }

    #[test]
    fn panic_and_alloc_facts_are_per_fn() {
        let g = graph(&[(
            "a.rs",
            "fn risky(v: &[u8]) -> u8 { v[0] }\n\
             fn grabby() -> Vec<u8> { vec![0] }\n\
             fn safe() {}\n",
        )]);
        let risky = g.fns.iter().find(|f| f.name == "risky").unwrap();
        assert_eq!(risky.panic_sites.len(), 1);
        let grabby = g.fns.iter().find(|f| f.name == "grabby").unwrap();
        assert_eq!(grabby.alloc_sites.len(), 1);
        let safe = g.fns.iter().find(|f| f.name == "safe").unwrap();
        assert!(safe.panic_sites.is_empty() && safe.alloc_sites.is_empty());
    }

    #[test]
    fn test_fns_never_enter_the_graph() {
        let g = graph(&[(
            "a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() { super::live(); } }\n",
        )]);
        assert!(g.fns.iter().all(|f| f.name != "helper"));
    }

    #[test]
    fn resolution_rate_counts_externals_as_resolved() {
        let g = graph(&[("a.rs", "fn go(v: &[u8]) { v.len(); }\n")]);
        assert!(g.resolution_rate() >= 1.0 - 1e-9);
    }
}
