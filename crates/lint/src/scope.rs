//! Scope and context tracking over the token stream.
//!
//! Turns the flat lexer output into per-token verdicts the lints need:
//!
//! * **test regions** — `#[cfg(test)]` modules and `#[test]` functions
//!   (every lint skips them; tests may allocate, panic and compare),
//! * **parallel-chain extents** — the span of a statement from a rayon
//!   parallel source (`.par_iter()`, `.into_par_iter()`,
//!   `.par_chunks_mut(…)`, …) to its end, including closure bodies passed
//!   into the chain,
//! * **assert-macro extents** — `assert!`/`debug_assert!`-family argument
//!   lists (diagnostic code; slice indexing there is not a serving-path
//!   panic distinct from the assert itself),
//! * **feature-gate extents** — the brace group that follows an
//!   `is_x86_feature_detected!` check; calls inside it count as gated
//!   dispatch for the `target-feature-reach` lint,
//! * **`HashMap`/`HashSet` bindings** — names bound with a hash-map type
//!   via `let`, field or parameter annotations, so iteration over them
//!   can be flagged,
//! * **code lines** — lines carrying at least one non-comment token
//!   (anchors above-the-line allows).

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// Rayon adapters that start a parallel chain.
const PAR_SOURCES: [&str; 8] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_chunks_exact",
    "par_chunks_exact_mut",
    "par_bridge",
];

/// Macros whose arguments are diagnostic-only for indexing purposes.
const ASSERT_MACROS: [&str; 6] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Per-token context flags plus file-level facts.
pub struct Context {
    /// Token index → inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: Vec<bool>,
    /// Token index → inside a parallel-iterator chain statement.
    pub in_par_chain: Vec<bool>,
    /// Token index → inside the argument list of an assert-family macro.
    pub in_assert: Vec<bool>,
    /// Token index → inside the brace group guarded by an
    /// `is_x86_feature_detected!` check.
    pub in_feature_gate: Vec<bool>,
    /// Names bound to `HashMap`/`HashSet` values in this file.
    pub hash_bindings: BTreeSet<String>,
    /// Sorted lines that carry at least one non-comment token.
    pub code_lines: Vec<u32>,
}

/// Analyse `toks` into a [`Context`].
pub fn analyze(toks: &[Tok]) -> Context {
    let n = toks.len();
    let mut in_test = vec![false; n];
    let mut in_par_chain = vec![false; n];
    let mut in_assert = vec![false; n];
    let mut in_feature_gate = vec![false; n];
    let mut hash_bindings = BTreeSet::new();
    let mut code_line_set = BTreeSet::new();

    // Brace-scope stack: `true` levels are test regions.
    let mut scopes: Vec<bool> = Vec::new();
    // Set by `#[cfg(test)]` / `#[test]` attributes, consumed by the next
    // `{` (the item body) and cleared by `;` (attribute on a non-block
    // item such as `use`).
    let mut pending_test_attr = false;
    // Brace-scope stack for feature gates, parallel to `scopes`: a level
    // is `true` inside the brace group opened after an
    // `is_x86_feature_detected!` check (and anything nested in it).
    let mut gate_scopes: Vec<bool> = Vec::new();
    // Set by `is_x86_feature_detected`, consumed by the next `{` (the
    // gated branch body) and cleared by `;` (the check was bound to a
    // variable instead — conservatively not a gate).
    let mut pending_gate = false;

    let mut brace_depth = 0usize;
    let mut paren_depth = 0usize;
    // (brace depth, paren depth) where the active par chain started.
    let mut par_start: Option<(usize, usize)> = None;
    // Paren depths at which an assert-family macro's argument list opened.
    let mut assert_parens: Vec<usize> = Vec::new();

    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        if t.kind != TokKind::LineComment {
            code_line_set.insert(t.line);
        }

        // Attributes: `#[…]` — scan the bracket group for `test`.
        if t.is_punct("#") && matches!(toks.get(i + 1), Some(b) if b.is_punct("[")) {
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            while j < n {
                let a = &toks[j];
                if a.is_punct("[") {
                    depth += 1;
                } else if a.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            pending_test_attr |= has_test;
            // Attribute tokens inherit the current region's flags.
            let flag = scopes.last().copied().unwrap_or(false);
            in_test[i..=j.min(n - 1)].fill(flag);
            i = j + 1;
            continue;
        }

        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "{" => {
                    let parent = scopes.last().copied().unwrap_or(false);
                    scopes.push(parent || pending_test_attr);
                    pending_test_attr = false;
                    let gate_parent = gate_scopes.last().copied().unwrap_or(false);
                    gate_scopes.push(gate_parent || pending_gate);
                    pending_gate = false;
                    brace_depth += 1;
                }
                "}" => {
                    scopes.pop();
                    gate_scopes.pop();
                    brace_depth = brace_depth.saturating_sub(1);
                    if let Some((bd, _)) = par_start {
                        if brace_depth < bd {
                            par_start = None;
                        }
                    }
                }
                "(" => {
                    // Opened by an assert-family macro? (`ident ! (`)
                    if i >= 2
                        && toks[i - 1].is_punct("!")
                        && toks[i - 2].kind == TokKind::Ident
                        && ASSERT_MACROS.contains(&toks[i - 2].text.as_str())
                    {
                        assert_parens.push(paren_depth);
                    }
                    paren_depth += 1;
                }
                ")" => {
                    paren_depth = paren_depth.saturating_sub(1);
                    if assert_parens.last() == Some(&paren_depth) {
                        assert_parens.pop();
                    }
                    if let Some((bd, pd)) = par_start {
                        if paren_depth < pd && brace_depth <= bd {
                            par_start = None;
                        }
                    }
                }
                ";" => {
                    pending_test_attr = false;
                    pending_gate = false;
                    if let Some((bd, pd)) = par_start {
                        if brace_depth == bd && paren_depth <= pd {
                            par_start = None;
                        }
                    }
                }
                _ => {}
            },
            TokKind::Ident => {
                // Parallel source: `.par_iter()` etc.
                if PAR_SOURCES.contains(&t.text.as_str())
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && par_start.is_none()
                {
                    par_start = Some((brace_depth, paren_depth));
                }
                // HashMap/HashSet binding: nearest preceding `:` with an
                // identifier before it (let/field/param annotations), or a
                // `let <name> = …` statement that mentions the type before
                // its `;`.
                if t.text == "HashMap" || t.text == "HashSet" {
                    if let Some(name) = annotated_name(toks, i) {
                        hash_bindings.insert(name);
                    }
                }
                if t.text == "let" {
                    if let Some(name) = let_hash_binding(toks, i) {
                        hash_bindings.insert(name);
                    }
                }
                if t.text == "is_x86_feature_detected" {
                    pending_gate = true;
                }
            }
            _ => {}
        }

        in_test[i] = scopes.last().copied().unwrap_or(false) || pending_test_attr;
        in_par_chain[i] = par_start.is_some();
        in_assert[i] = !assert_parens.is_empty();
        in_feature_gate[i] = gate_scopes.last().copied().unwrap_or(false);
        i += 1;
    }

    Context {
        in_test,
        in_par_chain,
        in_assert,
        in_feature_gate,
        hash_bindings,
        code_lines: code_line_set.into_iter().collect(),
    }
}

/// For a `HashMap`/`HashSet` token at `i`, find the annotated name in
/// patterns like `votes: HashMap<…>` or `let m: &HashMap<…>` — the
/// identifier just before the nearest preceding `:` (within the same
/// statement, a few tokens back).
fn annotated_name(toks: &[Tok], i: usize) -> Option<String> {
    let lo = i.saturating_sub(8);
    let mut j = i;
    while j > lo {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_punct("::") {
            return None;
        }
        if t.is_punct(":") {
            let prev = toks.get(j.checked_sub(1)?)?;
            if prev.kind == TokKind::Ident && !is_keyword(&prev.text) {
                return Some(prev.text.clone());
            }
            return None;
        }
    }
    None
}

/// For a `let` token at `i`, bind `name` when the statement mentions
/// `HashMap`/`HashSet` before its terminating `;` (covers
/// `let m = HashMap::new();`).
fn let_hash_binding(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i + 1;
    if matches!(toks.get(j), Some(t) if t.is_ident("mut")) {
        j += 1;
    }
    let name = toks.get(j)?;
    if name.kind != TokKind::Ident || is_keyword(&name.text) {
        return None;
    }
    let mut k = j + 1;
    while let Some(t) = toks.get(k) {
        if t.is_punct(";") || t.is_punct("{") {
            break;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            return Some(name.text.clone());
        }
        k += 1;
    }
    None
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let" | "mut" | "ref" | "pub" | "fn" | "if" | "else" | "match" | "for" | "while" | "in"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(src: &str) -> (Vec<Tok>, Context) {
        let toks = lex(src);
        let c = analyze(&toks);
        (toks, c)
    }

    fn flag_at(toks: &[Tok], flags: &[bool], ident: &str) -> bool {
        let i = toks
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("ident {ident} not found"));
        flags[i]
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn helper() { body(); }\n}\n";
        let (toks, c) = ctx(src);
        assert!(!flag_at(&toks, &c.in_test, "live"));
        assert!(flag_at(&toks, &c.in_test, "body"));
    }

    #[test]
    fn test_fn_attribute_marks_its_body() {
        let src = "#[test]\nfn check() { inner(); }\nfn live() { outer(); }\n";
        let (toks, c) = ctx(src);
        assert!(flag_at(&toks, &c.in_test, "inner"));
        assert!(!flag_at(&toks, &c.in_test, "outer"));
    }

    #[test]
    fn par_chain_extends_into_closures_and_ends_at_semicolon() {
        let src = "xs.par_iter().for_each(|x| { acc(x); });\nafter();\n";
        let (toks, c) = ctx(src);
        assert!(flag_at(&toks, &c.in_par_chain, "acc"));
        assert!(!flag_at(&toks, &c.in_par_chain, "after"));
    }

    #[test]
    fn par_chain_as_argument_ends_at_closing_paren() {
        let src = "take(v.into_par_iter().map(f).collect());\nnext();\n";
        let (toks, c) = ctx(src);
        assert!(flag_at(&toks, &c.in_par_chain, "collect"));
        assert!(!flag_at(&toks, &c.in_par_chain, "next"));
    }

    #[test]
    fn assert_macro_arguments_are_marked() {
        let src = "debug_assert!(w[0] <= w[1]);\nuse_it(w[0]);\n";
        let (toks, c) = ctx(src);
        let first = toks.iter().position(|t| t.is_ident("w")).unwrap();
        assert!(c.in_assert[first]);
        let last = toks.iter().rposition(|t| t.is_ident("w")).unwrap();
        assert!(!c.in_assert[last]);
    }

    #[test]
    fn hash_bindings_from_let_field_and_param() {
        let src = "struct S { map: HashMap<String, f32> }\n\
                   fn f(seen: &HashSet<u64>) { let mut votes = HashMap::new(); }\n\
                   fn g() { let plain = Vec::new(); }\n";
        let (_, c) = ctx(src);
        assert!(c.hash_bindings.contains("map"));
        assert!(c.hash_bindings.contains("seen"));
        assert!(c.hash_bindings.contains("votes"));
        assert!(!c.hash_bindings.contains("plain"));
    }

    #[test]
    fn use_statements_do_not_bind() {
        let (_, c) = ctx("use std::collections::HashMap;\n");
        assert!(c.hash_bindings.is_empty());
    }

    #[test]
    fn feature_gate_covers_the_guarded_branch_only() {
        let src = "fn d(xs: &[f32]) -> f32 {\n\
                   if is_x86_feature_detected!(\"avx2\") { gated(xs) } else { fallback(xs) }\n\
                   }\n";
        let (toks, c) = ctx(src);
        assert!(flag_at(&toks, &c.in_feature_gate, "gated"));
        assert!(!flag_at(&toks, &c.in_feature_gate, "fallback"));
    }

    #[test]
    fn feature_gate_bound_to_a_variable_is_not_a_gate() {
        let src = "fn d() { let ok = is_x86_feature_detected!(\"avx2\"); if ok { hasty(); } }\n";
        let (toks, c) = ctx(src);
        assert!(!flag_at(&toks, &c.in_feature_gate, "hasty"));
    }
}
