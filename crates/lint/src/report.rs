//! Text and JSON rendering of a [`crate::Report`].
//!
//! The JSON writer is hand-rolled (vendored-only environment); the
//! schema is flat and append-friendly so `BENCH_lint.json` can be
//! tracked like the other bench artifacts.

use crate::Report;
use std::fmt::Write as _;

/// Human-readable rendering: one `file:line:col · lint · message` per
/// finding plus a summary line.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{f}");
    }
    let _ = writeln!(
        out,
        "attn_lint: {} files scanned, {} finding{}, {} suppression{} honoured, {} ms",
        report.files_scanned,
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.suppressions_used,
        if report.suppressions_used == 1 {
            ""
        } else {
            "s"
        },
        report.wall_ms
    );
    out
}

/// Machine-readable rendering (schema `attn-lint-report/v1`).
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"attn-lint-report/v1\",\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"wall_ms\": {},", report.wall_ms);
    let _ = writeln!(out, "  \"total_findings\": {},", report.findings.len());
    let _ = writeln!(
        out,
        "  \"suppressions_used\": {},",
        report.suppressions_used
    );
    out.push_str("  \"counts\": {");
    let counts = report.counts();
    for (i, (name, n)) in counts.iter().enumerate() {
        let sep = if i + 1 == counts.len() { "" } else { ", " };
        let _ = write!(out, "\"{name}\": {n}{sep}");
    }
    out.push_str("},\n");
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 == report.findings.len() {
            "\n  "
        } else {
            ","
        };
        let _ = write!(
            out,
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"lint\": {}, \"message\": {}}}{sep}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.lint),
            json_str(&f.message)
        );
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    #[test]
    fn json_is_well_formed_and_escaped() {
        let report = Report {
            files_scanned: 1,
            findings: vec![Finding {
                file: "crates/x/src/a.rs".into(),
                line: 3,
                col: 7,
                lint: "float-eq",
                message: "raw `==` with \"quotes\"\nand newline".into(),
            }],
            suppressions_used: 2,
            wall_ms: 5,
        };
        let json = render_json(&report);
        assert!(json.contains("\"total_findings\": 1"));
        assert!(json.contains("\\\"quotes\\\"\\nand newline"));
        assert!(json.contains("\"float-eq\": 1"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_summary_counts() {
        let report = Report {
            files_scanned: 4,
            findings: vec![],
            suppressions_used: 1,
            wall_ms: 2,
        };
        let text = render_text(&report);
        assert!(text.contains("4 files scanned, 0 findings, 1 suppression honoured"));
    }
}
