//! Text and JSON rendering of a [`crate::Report`] and a
//! [`crate::reach::Coverage`].
//!
//! The JSON writers are hand-rolled (vendored-only environment); both
//! schemas are flat and append-friendly so `BENCH_lint.json` and
//! `BENCH_coverage.json` can be tracked like the other bench artifacts.
//!
//! Schema history:
//!
//! * `attn-lint-report/v1` — files/findings/suppressions/counts.
//! * `attn-lint-report/v2` — adds per-pass wall time (`lint_us`), the
//!   call-graph resolution stats (`calls`), and the serving entry-point
//!   list the reachability lints anchored on (`entry_points`).
//! * `attn-lint-report/v3` — adds the shared-prepare timing
//!   (`prepare_us`, `coverage_reuse_saved_us`), the `unsafe` inventory
//!   (`unsafe`: sites/documented/safety_coverage), per-lint suppression
//!   counts (`suppression_counts`), and the full `suppressions` array
//!   (sorted, so the committed artifact is byte-stable).
//! * `attn-lint-coverage/v1` — the `--coverage` artifact: every op on
//!   the forward/decode/train paths with guarded/unguarded status.

use crate::reach::Coverage;
use crate::Report;
use std::fmt::Write as _;

/// Human-readable rendering: one `file:line:col · lint · message` per
/// finding plus a summary line.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{f}");
    }
    let _ = writeln!(
        out,
        "attn_lint: {} files scanned, {} finding{}, {} suppression{} honoured, \
         {}/{} calls resolved ({:.1}%), {}/{} unsafe sites documented, {} ms",
        report.files_scanned,
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.suppressions_used,
        if report.suppressions_used == 1 {
            ""
        } else {
            "s"
        },
        report.calls_resolved,
        report.calls_total,
        report.resolution_rate() * 100.0,
        report.unsafe_documented,
        report.unsafe_sites,
        report.wall_ms
    );
    out
}

/// Machine-readable rendering (schema `attn-lint-report/v3`).
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"attn-lint-report/v3\",\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"wall_ms\": {},", report.wall_ms);
    let _ = writeln!(out, "  \"prepare_us\": {},", report.prepare_us);
    let _ = writeln!(
        out,
        "  \"coverage_reuse_saved_us\": {},",
        report.coverage_reuse_saved_us
    );
    let _ = writeln!(out, "  \"total_findings\": {},", report.findings.len());
    let _ = writeln!(
        out,
        "  \"suppressions_used\": {},",
        report.suppressions_used
    );
    let _ = writeln!(
        out,
        "  \"calls\": {{\"total\": {}, \"resolved\": {}, \"unresolved\": {}, \
         \"resolution_rate\": {:.4}}},",
        report.calls_total,
        report.calls_resolved,
        report.calls_unresolved,
        report.resolution_rate()
    );
    let _ = writeln!(
        out,
        "  \"unsafe\": {{\"sites\": {}, \"documented\": {}, \"safety_coverage\": {:.4}}},",
        report.unsafe_sites,
        report.unsafe_documented,
        report.safety_coverage()
    );
    out.push_str("  \"entry_points\": [");
    for (i, e) in report.entry_points.iter().enumerate() {
        let sep = if i + 1 == report.entry_points.len() {
            ""
        } else {
            ", "
        };
        let _ = write!(out, "{}{sep}", json_str(e));
    }
    out.push_str("],\n");
    out.push_str("  \"lint_us\": {");
    for (i, (name, us)) in report.lint_us.iter().enumerate() {
        let sep = if i + 1 == report.lint_us.len() {
            ""
        } else {
            ", "
        };
        let _ = write!(out, "\"{name}\": {us}{sep}");
    }
    out.push_str("},\n");
    out.push_str("  \"counts\": {");
    let counts = report.counts();
    for (i, (name, n)) in counts.iter().enumerate() {
        let sep = if i + 1 == counts.len() { "" } else { ", " };
        let _ = write!(out, "\"{name}\": {n}{sep}");
    }
    out.push_str("},\n");
    out.push_str("  \"suppression_counts\": {");
    let scounts = report.suppression_counts();
    for (i, (name, n)) in scounts.iter().enumerate() {
        let sep = if i + 1 == scounts.len() { "" } else { ", " };
        let _ = write!(out, "\"{name}\": {n}{sep}");
    }
    out.push_str("},\n");
    out.push_str("  \"suppressions\": [");
    for (i, s) in report.suppressions.iter().enumerate() {
        let sep = if i + 1 == report.suppressions.len() {
            "\n  "
        } else {
            ","
        };
        let _ = write!(
            out,
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"lint\": {}}}{sep}",
            json_str(&s.file),
            s.line,
            s.col,
            json_str(&s.lint)
        );
    }
    out.push_str("],\n");
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 == report.findings.len() {
            "\n  "
        } else {
            ","
        };
        let _ = write!(
            out,
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"lint\": {}, \"message\": {}}}{sep}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.lint),
            json_str(&f.message)
        );
    }
    out.push_str("]\n}\n");
    out
}

/// Human-readable coverage summary (the `--coverage` stdout).
pub fn render_coverage_text(cov: &Coverage) -> String {
    let mut out = String::new();
    let guarded = cov.ops.iter().filter(|o| o.guarded).count();
    let _ = writeln!(
        out,
        "attn_lint coverage: {} ops on forward/decode/train paths, {} guarded \
         ({:.1}%), {} unguarded GEMMs, {}/{} calls resolved ({:.1}%)",
        cov.ops.len(),
        guarded,
        cov.coverage_rate() * 100.0,
        cov.unguarded_gemms(),
        cov.calls_resolved,
        cov.calls_total,
        cov.resolution_rate() * 100.0
    );
    for op in &cov.ops {
        let _ = writeln!(
            out,
            "  {} {} `{}` at {}:{} [{}] via {}",
            if op.guarded { "✓" } else { "✗" },
            op.kind,
            op.name,
            op.file,
            op.line,
            op.paths.join("+"),
            op.via
        );
    }
    out
}

/// Machine-readable coverage artifact (schema `attn-lint-coverage/v1`).
pub fn render_coverage_json(cov: &Coverage) -> String {
    let mut out = String::new();
    let guarded = cov.ops.iter().filter(|o| o.guarded).count();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"attn-lint-coverage/v1\",\n");
    let _ = writeln!(out, "  \"ops_total\": {},", cov.ops.len());
    let _ = writeln!(out, "  \"ops_guarded\": {guarded},");
    let _ = writeln!(out, "  \"ops_unguarded\": {},", cov.ops.len() - guarded);
    let _ = writeln!(out, "  \"coverage_rate\": {:.4},", cov.coverage_rate());
    let _ = writeln!(out, "  \"unguarded_gemms\": {},", cov.unguarded_gemms());
    let _ = writeln!(
        out,
        "  \"calls\": {{\"total\": {}, \"resolved\": {}, \"resolution_rate\": {:.4}}},",
        cov.calls_total,
        cov.calls_resolved,
        cov.resolution_rate()
    );
    out.push_str("  \"entries\": [");
    for (i, (path, name)) in cov.entries.iter().enumerate() {
        let sep = if i + 1 == cov.entries.len() {
            "\n  "
        } else {
            ","
        };
        let _ = write!(
            out,
            "\n    {{\"path\": {}, \"fn\": {}}}{sep}",
            json_str(path),
            json_str(name)
        );
    }
    out.push_str("],\n");
    out.push_str("  \"ops\": [");
    for (i, op) in cov.ops.iter().enumerate() {
        let sep = if i + 1 == cov.ops.len() { "\n  " } else { "," };
        let paths: Vec<String> = op.paths.iter().map(|p| json_str(p)).collect();
        let _ = write!(
            out,
            "\n    {{\"kind\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \
             \"guarded\": {}, \"paths\": [{}], \"via\": {}}}{sep}",
            json_str(op.kind),
            json_str(&op.name),
            json_str(&op.file),
            op.line,
            op.guarded,
            paths.join(", "),
            json_str(&op.via)
        );
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    #[test]
    fn json_is_well_formed_and_escaped() {
        let report = Report {
            files_scanned: 1,
            findings: vec![Finding {
                file: "crates/x/src/a.rs".into(),
                line: 3,
                col: 7,
                lint: "float-eq",
                message: "raw `==` with \"quotes\"\nand newline".into(),
            }],
            suppressions_used: 2,
            suppressions: vec![crate::Suppression {
                file: "crates/x/src/a.rs".into(),
                line: 9,
                col: 12,
                lint: "panic-reach".into(),
            }],
            wall_ms: 5,
            prepare_us: 1234,
            lint_us: vec![("float-eq", 12)],
            calls_total: 10,
            calls_resolved: 9,
            calls_unresolved: 1,
            unsafe_sites: 4,
            unsafe_documented: 4,
            entry_points: vec!["Gateway::tick".into()],
            ..Default::default()
        };
        let json = render_json(&report);
        assert!(json.contains("\"schema\": \"attn-lint-report/v3\""));
        assert!(json.contains("\"total_findings\": 1"));
        assert!(json.contains("\\\"quotes\\\"\\nand newline"));
        assert!(json.contains("\"float-eq\": 1"));
        assert!(json.contains("\"resolution_rate\": 0.9000"));
        assert!(json.contains("\"prepare_us\": 1234"));
        assert!(json.contains("\"safety_coverage\": 1.0000"));
        assert!(json.contains("\"panic-reach\": 1")); // suppression_counts
        assert!(json.contains("\"Gateway::tick\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_summary_counts() {
        let report = Report {
            files_scanned: 4,
            suppressions_used: 1,
            wall_ms: 2,
            ..Default::default()
        };
        let text = render_text(&report);
        assert!(text.contains("4 files scanned, 0 findings, 1 suppression honoured"));
    }

    #[test]
    fn coverage_json_is_well_formed() {
        let cov = Coverage {
            ops: vec![crate::reach::CoverageOp {
                kind: "gemm",
                name: "gemm_encode_cols".into(),
                file: "crates/core/src/section.rs".into(),
                line: 40,
                guarded: true,
                paths: vec!["decode", "forward"],
                via: "Gateway::tick → GuardedSection::gemm".into(),
            }],
            entries: vec![("decode".into(), "Gateway::tick".into())],
            calls_total: 100,
            calls_resolved: 95,
        };
        let json = render_coverage_json(&cov);
        assert!(json.contains("\"schema\": \"attn-lint-coverage/v1\""));
        assert!(json.contains("\"coverage_rate\": 1.0000"));
        assert!(json.contains("\"unguarded_gemms\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
