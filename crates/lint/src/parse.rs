//! Item-level parsing over the token stream: functions, impl/trait
//! methods, and struct field types.
//!
//! This is not a Rust parser — it is a single linear pass that recovers
//! exactly the facts the call graph needs:
//!
//! * every `fn` item with its name, owner (`impl`/`trait` type), body
//!   token range, parameter type hints, and test status
//!   (`#[cfg(test)]` / `#[test]` fns never enter the graph),
//! * every `struct` with its named fields' type last-segments, so
//!   `self.field.method(…)` receivers can be typed cheaply.
//!
//! Bodies are tracked as token index ranges into the file's stream;
//! nested fns own their sub-range (the caller excludes it when walking a
//! parent body). Closures are part of the enclosing fn — exactly what
//! reachability wants, since a closure runs on its definer's path.

use crate::lexer::{Tok, TokKind};
use crate::scope::Context;
use std::collections::BTreeMap;

/// One `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` self type for methods, `None` for free fns.
    pub owner: Option<String>,
    /// 1-based line of the name token.
    pub line: u32,
    /// Body token range `(start, end)` — exclusive of both braces.
    /// `None` for trait declarations without a default body.
    pub body: Option<(usize, usize)>,
    /// Declared inside `#[cfg(test)]` / under `#[test]`.
    pub is_test: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Carries a `#[target_feature(…)]` attribute.
    pub has_target_feature: bool,
    /// Parameter name → type last-segment, for receiver hints.
    pub params: Vec<(String, String)>,
}

/// Items of one parsed file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// Struct name → (field name → type last-segment).
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
}

/// What a brace scope on the stack is.
enum Scope {
    /// `mod name {`.
    Mod,
    /// `impl Type {` / `impl Trait for Type {` — carries the self type.
    Impl(String),
    /// `trait Name {` — methods get the trait name as owner.
    Trait(String),
    /// A `fn` body; index into [`ParsedFile::fns`].
    Fn,
    /// Any other brace group (blocks, match arms, struct literals…).
    Block,
}

/// Parse one file's items.
pub fn parse(toks: &[Tok], ctx: &Context) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut stack: Vec<Scope> = Vec::new();
    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "{" => {
                stack.push(Scope::Block);
            }
            TokKind::Punct if t.text == "}" => {
                stack.pop();
            }
            TokKind::Ident => match t.text.as_str() {
                "mod" => {
                    // `mod name {` or `mod name;` — consume the header so
                    // the `{` pushes a Mod scope.
                    if let Some(j) = seek(toks, i + 1, &["{", ";"]) {
                        if toks[j].is_punct("{") {
                            stack.push(Scope::Mod);
                        }
                        i = j + 1;
                        continue;
                    }
                }
                "impl" => {
                    if let Some((owner, j)) = parse_impl_header(toks, i) {
                        stack.push(Scope::Impl(owner));
                        i = j + 1;
                        continue;
                    }
                }
                "trait" => {
                    if let Some(name) = ident_after(toks, i) {
                        if let Some(j) = seek(toks, i + 1, &["{", ";"]) {
                            if toks[j].is_punct("{") {
                                stack.push(Scope::Trait(name));
                            }
                            i = j + 1;
                            continue;
                        }
                    }
                }
                "struct" => {
                    if let Some(j) = parse_struct(toks, i, &mut out.structs) {
                        i = j;
                        continue;
                    }
                }
                "fn" => {
                    // Guard: `fn(usize) -> f32` pointer types have no name.
                    if let Some(j) = parse_fn(toks, ctx, i, &stack, &mut out.fns) {
                        if toks.get(j).is_some_and(|b| b.is_punct("{")) {
                            stack.push(Scope::Fn);
                        }
                        i = j + 1;
                        continue;
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    out
}

/// Like [`parse`], but records fn body end indexes: the main loop above
/// cannot see what it popped, so body ranges are resolved here by brace
/// matching from each recorded open index.
pub fn parse_file(toks: &[Tok], ctx: &Context) -> ParsedFile {
    let mut parsed = parse(toks, ctx);
    for f in &mut parsed.fns {
        if let Some((open, _)) = f.body {
            // `open` currently holds the index of the `{`; match it.
            let mut depth = 0usize;
            let mut end = toks.len();
            for (j, t) in toks.iter().enumerate().skip(open) {
                if t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
            }
            f.body = Some((open + 1, end));
        }
    }
    parsed
}

/// Next non-comment token index at or after `i`.
fn next_code_idx(toks: &[Tok], i: usize) -> Option<usize> {
    toks.iter()
        .enumerate()
        .skip(i)
        .find(|(_, t)| t.kind != TokKind::LineComment)
        .map(|(j, _)| j)
}

/// The identifier right after token `i`, if any.
fn ident_after(toks: &[Tok], i: usize) -> Option<String> {
    let j = next_code_idx(toks, i + 1)?;
    let t = &toks[j];
    (t.kind == TokKind::Ident && !is_decl_keyword(&t.text)).then(|| t.text.clone())
}

/// Scan forward from `i` to the first token matching any of `stops`
/// (punct text), skipping nothing — brace-free headers only.
fn seek(toks: &[Tok], i: usize, stops: &[&str]) -> Option<usize> {
    toks.iter()
        .enumerate()
        .skip(i)
        .find(|(_, t)| t.kind == TokKind::Punct && stops.contains(&t.text.as_str()))
        .map(|(j, _)| j)
}

/// Parse `impl … {`: returns the self-type last-segment and the index of
/// the opening `{`. `impl Trait for Type` takes the type after `for`.
fn parse_impl_header(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut owner: Option<String> = None;
    let mut angle = 0i32;
    let mut in_where = false;
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => {
                    return owner.map(|o| (o, j));
                }
                ";" => return None,
                _ => {}
            },
            TokKind::Ident if angle == 0 && !in_where => match t.text.as_str() {
                // `impl Trait for Type`: the self type follows `for`.
                "for" => owner = None,
                "where" => in_where = true,
                name if !is_decl_keyword(name) => {
                    // Last plain path segment wins: `attn::Gateway` → Gateway.
                    owner = Some(name.to_string());
                }
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parse `struct Name { fields… }` into the struct map; returns the index
/// just past the item. Tuple/unit structs are consumed without fields.
fn parse_struct(
    toks: &[Tok],
    i: usize,
    structs: &mut BTreeMap<String, BTreeMap<String, String>>,
) -> Option<usize> {
    let name = ident_after(toks, i)?;
    // Find the body `{`, a tuple `(`, or `;` — skipping generics.
    let mut angle = 0i32;
    let mut j = next_code_idx(toks, i + 1)? + 1;
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "<" if t.kind == TokKind::Punct => angle += 1,
            ">" if t.kind == TokKind::Punct => angle -= 1,
            "{" if angle <= 0 => break,
            "(" if angle <= 0 => {
                // Tuple struct: skip to the terminating `;`.
                return seek(toks, j, &[";"]).map(|k| k + 1);
            }
            ";" => return Some(j + 1),
            _ => {}
        }
        j += 1;
    }
    // Fields at brace depth 1: `ident : Type` up to a depth-1 comma.
    let mut fields = BTreeMap::new();
    let mut depth = 1usize;
    let mut k = j + 1;
    while k < toks.len() && depth > 0 {
        let t = &toks[k];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
        } else if depth == 1 && t.kind == TokKind::Ident && !is_decl_keyword(&t.text) {
            if let Some(c) = next_code_idx(toks, k + 1) {
                if toks[c].is_punct(":") {
                    if let Some((ty, after)) = type_last_segment(toks, c + 1) {
                        fields.insert(t.text.clone(), ty);
                        k = after;
                        continue;
                    }
                }
            }
        }
        k += 1;
    }
    structs.insert(name, fields);
    Some(k)
}

/// Parse a type starting at `i`: skip `&`/`mut`/lifetimes/`dyn`/`impl`,
/// then take the **last** plain segment of the leading path (before any
/// generic args). Returns the segment and the index just past the path
/// head. Non-path types (tuples, slices, fn pointers) yield `None`.
pub(crate) fn type_last_segment(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = next_code_idx(toks, i)?;
    loop {
        let t = toks.get(j)?;
        let skip = t.is_punct("&")
            || t.kind == TokKind::Lifetime
            || t.is_ident("mut")
            || t.is_ident("dyn")
            || t.is_ident("impl");
        if !skip {
            break;
        }
        j = next_code_idx(toks, j + 1)?;
    }
    let mut last: Option<String> = None;
    let mut at = j;
    while let Some(t) = toks.get(at) {
        match t.kind {
            TokKind::Ident if !is_decl_keyword(&t.text) => {
                last = Some(t.text.clone());
                at += 1;
            }
            TokKind::Punct if t.text == "::" => {
                at += 1;
            }
            _ => break,
        }
    }
    last.map(|l| (l, at))
}

/// Parse a `fn` item starting at keyword index `i`; pushes the item and
/// returns the index of its body `{` (or the `;` of a bodiless trait
/// method). `None` when this is a `fn(…)` pointer type, not an item.
fn parse_fn(
    toks: &[Tok],
    ctx: &Context,
    i: usize,
    stack: &[Scope],
    fns: &mut Vec<FnItem>,
) -> Option<usize> {
    let name_idx = next_code_idx(toks, i + 1)?;
    let name_tok = &toks[name_idx];
    if name_tok.kind != TokKind::Ident || is_decl_keyword(&name_tok.text) {
        return None; // `fn(usize) -> f32` pointer type
    }
    // Skip generics to the parameter list.
    let mut j = next_code_idx(toks, name_idx + 1)?;
    if toks[j].is_punct("<") {
        let mut angle = 1i32;
        while angle > 0 {
            j = next_code_idx(toks, j + 1)?;
            if toks[j].is_punct("<") {
                angle += 1;
            } else if toks[j].is_punct(">") {
                angle -= 1;
            }
        }
        j = next_code_idx(toks, j + 1)?;
    }
    if !toks[j].is_punct("(") {
        return None;
    }
    let (params, close) = parse_params(toks, j)?;
    // Owner: the innermost Impl/Trait scope *not* below a Fn/Block (a
    // nested fn in a method body is free, not a method).
    let owner = stack.iter().rev().find_map(|s| match s {
        Scope::Impl(o) | Scope::Trait(o) => Some(o.clone()),
        Scope::Fn | Scope::Block => Some(String::new()),
        Scope::Mod => None,
    });
    let owner = match owner {
        Some(o) if o.is_empty() => None,
        other => other,
    };
    // Body `{` or trait-decl `;` — return types/where clauses are
    // brace-free in this codebase's grammar subset.
    let body_open = seek(toks, close + 1, &["{", ";"])?;
    let (is_unsafe, has_target_feature) = fn_prefix_flags(toks, i);
    fns.push(FnItem {
        name: name_tok.text.clone(),
        owner,
        line: name_tok.line,
        // Temporarily store the `{` index; parse_file resolves the range.
        body: toks[body_open]
            .is_punct("{")
            .then_some((body_open, body_open)),
        is_test: ctx.in_test.get(name_idx).copied().unwrap_or(false),
        is_unsafe,
        has_target_feature,
        params,
    });
    Some(body_open)
}

/// Scan backwards from the `fn` keyword at `i` through its qualifiers
/// (`pub(crate) const unsafe extern "C"`) and attributes, extracting the
/// `unsafe` and `#[target_feature(…)]` flags. Stops at the first token
/// that cannot belong to a fn header prefix.
fn fn_prefix_flags(toks: &[Tok], i: usize) -> (bool, bool) {
    let mut is_unsafe = false;
    let mut has_tf = false;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::LineComment => continue,
            TokKind::Str => continue, // `extern "C"` ABI string
            TokKind::Ident => match t.text.as_str() {
                "unsafe" => is_unsafe = true,
                "pub" | "const" | "async" | "extern" | "crate" | "super" | "self" | "in" => {}
                _ => break,
            },
            TokKind::Punct if t.text == "(" || t.text == ")" => {} // pub(crate)
            TokKind::Punct if t.text == "]" => {
                // Walk back to the matching `[` of an attribute.
                let mut depth = 1i32;
                let mut k = j;
                while depth > 0 && k > 0 {
                    k -= 1;
                    if toks[k].is_punct("]") {
                        depth += 1;
                    } else if toks[k].is_punct("[") {
                        depth -= 1;
                    }
                }
                if depth != 0 || k == 0 || !toks[k - 1].is_punct("#") {
                    break;
                }
                if next_code_idx(toks, k + 1).is_some_and(|c| toks[c].is_ident("target_feature")) {
                    has_tf = true;
                }
                j = k - 1; // continue scanning before the `#`
            }
            _ => break,
        }
    }
    (is_unsafe, has_tf)
}

/// Parse a parameter list starting at its `(`: returns the typed-param
/// hints and the index of the closing `)`.
fn parse_params(toks: &[Tok], open: usize) -> Option<(Vec<(String, String)>, usize)> {
    let mut params = Vec::new();
    let mut paren = 1i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut j = open + 1;
    // Start of the current parameter (depth-1 segment).
    let mut seg_start = j;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => {
                    paren -= 1;
                    if paren == 0 {
                        record_param(toks, seg_start, j, &mut params);
                        return Some((params, j));
                    }
                }
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                "," if paren == 1 && bracket == 0 && angle == 0 => {
                    record_param(toks, seg_start, j, &mut params);
                    seg_start = j + 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Record one `name: Type` parameter from the token range; receivers and
/// pattern params are skipped.
fn record_param(toks: &[Tok], start: usize, end: usize, params: &mut Vec<(String, String)>) {
    let Some(mut k) = next_code_idx(toks, start) else {
        return;
    };
    if k >= end {
        return;
    }
    if toks[k].is_ident("mut") {
        let Some(n) = next_code_idx(toks, k + 1) else {
            return;
        };
        k = n;
    }
    let name = &toks[k];
    if name.kind != TokKind::Ident || is_decl_keyword(&name.text) || name.text == "self" {
        return;
    }
    let Some(c) = next_code_idx(toks, k + 1) else {
        return;
    };
    if c >= end || !toks[c].is_punct(":") {
        return;
    }
    if let Some((ty, _)) = type_last_segment(toks, c + 1) {
        params.push((name.text.clone(), ty));
    }
}

/// Keywords that can never be item/type names in the positions parsed
/// here.
fn is_decl_keyword(s: &str) -> bool {
    matches!(
        s,
        "fn" | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "mod"
            | "pub"
            | "where"
            | "for"
            | "mut"
            | "dyn"
            | "let"
            | "if"
            | "else"
            | "match"
            | "while"
            | "loop"
            | "return"
            | "use"
            | "const"
            | "static"
            | "unsafe"
            | "extern"
            | "crate"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "type"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope;

    fn parsed(src: &str) -> ParsedFile {
        let toks = lex(src);
        let ctx = scope::analyze(&toks);
        parse_file(&toks, &ctx)
    }

    #[test]
    fn free_fn_and_method_get_their_owners() {
        let p = parsed(
            "fn free() { body(); }\n\
             struct Gate { engine: Engine }\n\
             impl Gate { pub fn tick(&mut self) { go(); } }\n",
        );
        let names: Vec<(String, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![("free".into(), None), ("tick".into(), Some("Gate".into()))]
        );
        assert_eq!(p.structs["Gate"]["engine"], "Engine");
    }

    #[test]
    fn trait_impls_and_default_bodies() {
        let p = parsed(
            "trait Kernel { fn exec(&self); fn warm(&self) { exec_default(); } }\n\
             impl Kernel for Cpu { fn exec(&self) { fast(); } }\n",
        );
        let with_body: Vec<&str> = p
            .fns
            .iter()
            .filter(|f| f.body.is_some())
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(with_body, vec!["warm", "exec"]);
        let exec_impl = p
            .fns
            .iter()
            .find(|f| f.name == "exec" && f.body.is_some())
            .unwrap();
        assert_eq!(exec_impl.owner.as_deref(), Some("Cpu"));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let p = parsed(
            "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n#[test]\nfn check() {}\n",
        );
        let test_flags: Vec<(String, bool)> =
            p.fns.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(
            test_flags,
            vec![
                ("live".into(), false),
                ("helper".into(), true),
                ("check".into(), true)
            ]
        );
    }

    #[test]
    fn param_type_hints_survive_references_and_generics() {
        let p = parsed("fn f(logits: &Matrix, n: usize, s: &mut DecodeSession) {}\n");
        assert_eq!(
            p.fns[0].params,
            vec![
                ("logits".into(), "Matrix".into()),
                ("n".into(), "usize".into()),
                ("s".into(), "DecodeSession".into())
            ]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parsed("struct H { hook: fn(usize) -> f32 }\nfn real() { let g: fn(u8) = x; }\n");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn nested_fn_in_method_body_is_free() {
        let p = parsed("impl T { fn outer(&self) { fn inner() {} inner(); } }\n");
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(inner.owner, None);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(outer.owner.as_deref(), Some("T"));
    }

    #[test]
    fn unsafe_and_target_feature_flags_are_recovered() {
        let p = parsed(
            "pub unsafe fn raw(p: *mut f32) {}\n\
             #[target_feature(enable = \"avx2\")]\n\
             // SAFETY-adjacent comment between attribute and fn\n\
             pub unsafe fn simd() {}\n\
             #[inline]\n\
             fn plain() {}\n\
             pub(crate) const unsafe extern \"C\" fn abi() {}\n",
        );
        let flags: Vec<(&str, bool, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_unsafe, f.has_target_feature))
            .collect();
        assert_eq!(
            flags,
            vec![
                ("raw", true, false),
                ("simd", true, true),
                ("plain", false, false),
                ("abi", true, false),
            ]
        );
    }

    #[test]
    fn generic_fn_and_impl_headers_parse() {
        let p = parsed(
            "impl<T: Clone> Holder<T> { fn put<Q: Into<T>>(&mut self, q: Q) { store(q); } }\n",
        );
        assert_eq!(p.fns[0].name, "put");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Holder"));
    }
}
