//! CLI: `cargo run -p attn_lint --release -- check [--json [PATH]] [--root DIR]`.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: attn_lint check [--json [PATH]] [--root DIR]\n\
\n\
  check          scan every crates/*/src file and report contract violations\n\
  --json [PATH]  also write a machine-readable report (default: BENCH_lint.json)\n\
  --root DIR     workspace root (default: inferred from CARGO_MANIFEST_DIR)\n";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("check") {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let next = args.get(i + 1).filter(|a| !a.starts_with("--"));
                match next {
                    Some(p) => {
                        json_path = Some(PathBuf::from(p));
                        i += 1;
                    }
                    None => json_path = Some(PathBuf::from("BENCH_lint.json")),
                }
            }
            "--root" => match args.get(i + 1) {
                Some(p) => {
                    root = Some(PathBuf::from(p));
                    i += 1;
                }
                None => {
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("attn_lint: unknown argument `{other}`");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    // `CARGO_MANIFEST_DIR` is crates/lint when run via `cargo run`.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let report = match attn_lint::run_check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("attn_lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", attn_lint::report::render_text(&report));
    if let Some(path) = json_path {
        let json = attn_lint::report::render_json(&report);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("attn_lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("attn_lint: report written to {}", path.display());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
