//! CLI: `cargo run -p attn_lint --release -- check [--json [PATH]]
//! [--coverage [PATH]] [--root DIR]`.
//!
//! Exit codes: `0` clean, `1` findings or a coverage floor violated,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: attn_lint check [--json [PATH]] [--coverage [PATH]] [--root DIR]\n\
\n\
  check              scan crates/*/src plus tests/ and examples/ and report\n\
                     contract violations\n\
  --json [PATH]      also write a machine-readable report (default: BENCH_lint.json)\n\
  --coverage [PATH]  also walk the forward/decode/train paths, write the\n\
                     protection-coverage artifact (default: BENCH_coverage.json),\n\
                     and enforce the coverage floors\n\
  --root DIR         workspace root (default: inferred from CARGO_MANIFEST_DIR)\n";

/// CI floors, enforced whenever `--coverage` runs. `MIN_RESOLUTION_RATE`
/// keeps the call graph honest (a conservative resolver that gives up
/// everywhere would make every reachability lint vacuous);
/// `MIN_GUARDED_OP_COVERAGE` is a ratchet pinned to the rate measured at
/// PR time — it may only ever go up. Every cataloged op on the
/// forward/decode/train paths now runs under a guard (GEMMs behind the
/// `GuardedSection` barrier; softmax/LayerNorm/GELU/residual/embedding/
/// loss/sampling/optimizer behind `attn_tensor::guard` wrappers), so the
/// floor sits at 1.0: a new unguarded op is a CI failure, not drift.
const MIN_RESOLUTION_RATE: f64 = 0.90;
const MIN_GUARDED_OP_COVERAGE: f64 = 1.0;
/// Every non-test `unsafe` site must carry a checked `// SAFETY:`
/// justification. Enforced on every `check` run (not only `--coverage`):
/// an undocumented site is already an `unsafe-audit` finding, so this
/// floor exists to catch ratio regressions if the lint itself is ever
/// suppressed per-site.
const MIN_SAFETY_COVERAGE: f64 = 1.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("check") {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut json_path: Option<PathBuf> = None;
    let mut coverage_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let next = args.get(i + 1).filter(|a| !a.starts_with("--"));
                match next {
                    Some(p) => {
                        json_path = Some(PathBuf::from(p));
                        i += 1;
                    }
                    None => json_path = Some(PathBuf::from("BENCH_lint.json")),
                }
            }
            "--coverage" => {
                let next = args.get(i + 1).filter(|a| !a.starts_with("--"));
                match next {
                    Some(p) => {
                        coverage_path = Some(PathBuf::from(p));
                        i += 1;
                    }
                    None => coverage_path = Some(PathBuf::from("BENCH_coverage.json")),
                }
            }
            "--root" => match args.get(i + 1) {
                Some(p) => {
                    root = Some(PathBuf::from(p));
                    i += 1;
                }
                None => {
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("attn_lint: unknown argument `{other}`");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    // `CARGO_MANIFEST_DIR` is crates/lint when run via `cargo run`.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    // Parse the workspace exactly once; `check` and `--coverage` both
    // consume the same prepared artifact.
    let tree = match attn_lint::prepare_tree(&root) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("attn_lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut report = attn_lint::scan_prepared(&tree);
    print!("{}", attn_lint::report::render_text(&report));

    let mut floors_ok = true;
    if report.safety_coverage() < MIN_SAFETY_COVERAGE {
        eprintln!(
            "attn_lint: FLOOR: SAFETY coverage {:.4} < {MIN_SAFETY_COVERAGE} \
             ({}/{} unsafe sites documented)",
            report.safety_coverage(),
            report.unsafe_documented,
            report.unsafe_sites
        );
        floors_ok = false;
    }
    if let Some(path) = coverage_path {
        let cov = attn_lint::run_coverage_prepared(&tree);
        // The coverage walk reused the prepared tree instead of re-lexing
        // and re-parsing the workspace; credit the saving in the report.
        report.coverage_reuse_saved_us = tree.prepare_us;
        println!(
            "attn_lint: coverage reused the prepared tree (saved ~{} us of re-parse)",
            tree.prepare_us
        );
        print!("{}", attn_lint::report::render_coverage_text(&cov));
        let json = attn_lint::report::render_coverage_json(&cov);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("attn_lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("attn_lint: coverage written to {}", path.display());

        if cov.resolution_rate() < MIN_RESOLUTION_RATE {
            eprintln!(
                "attn_lint: FLOOR: call resolution rate {:.4} < {MIN_RESOLUTION_RATE}",
                cov.resolution_rate()
            );
            floors_ok = false;
        }
        if cov.unguarded_gemms() > 0 {
            eprintln!(
                "attn_lint: FLOOR: {} forward/decode/train-path GEMM(s) outside the \
                 guarded barrier",
                cov.unguarded_gemms()
            );
            floors_ok = false;
        }
        if cov.coverage_rate() < MIN_GUARDED_OP_COVERAGE {
            eprintln!(
                "attn_lint: FLOOR: guarded-op coverage {:.4} < {MIN_GUARDED_OP_COVERAGE} \
                 (ratchet: this floor only moves up)",
                cov.coverage_rate()
            );
            floors_ok = false;
        }
    }

    // Written after the coverage block so `coverage_reuse_saved_us` lands
    // in the artifact when `--coverage` ran.
    if let Some(path) = json_path {
        let json = attn_lint::report::render_json(&report);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("attn_lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("attn_lint: report written to {}", path.display());
    }

    if report.is_clean() && floors_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
