//! The four syntactic contract lints.
//!
//! Each pass walks the token stream with the [`crate::scope::Context`]
//! verdicts and produces raw findings; suppression filtering happens in
//! [`crate::scan_sources`]. All passes skip test regions — tests may
//! allocate, panic, and compare floats exactly. The old syntactic
//! `panic-in-serve` lint is gone: its scope is subsumed by the
//! interprocedural `panic-reach` analysis in [`crate::reach`], which
//! follows the call graph out of the serving entry points instead of
//! guessing by crate path.

use crate::lexer::{Tok, TokKind};
use crate::scope::Context;
use crate::Finding;

/// Fixed-order-reduction contract: order-sensitive float reductions may
/// not hide inside rayon parallel chains, and hash-map iteration may not
/// feed float math.
pub const NONDET_REDUCE: &str = "nondet-reduce";
/// Alloc-free steady state: no heap allocation in modules that declare
/// `//! attn-lint: hot-path`.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// ABFT coverage: model code must reach GEMMs through `GuardedSection` /
/// `ProtectedLinear`, never the raw kernel entry points.
pub const UNGUARDED_GEMM: &str = "unguarded-gemm";
/// Raw `==`/`!=` against float literals must become named helpers.
pub const FLOAT_EQ: &str = "float-eq";

/// Which lint set a file gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Library code: every lint, and the file joins the call graph.
    Full,
    /// Integration tests and examples: they may allocate and panic
    /// freely, but determinism and float hygiene still apply —
    /// `nondet-reduce` and `float-eq` only, and the file stays out of
    /// the call graph.
    Relaxed,
}

/// Raw GEMM entry points (the `attn_tensor::gemm` free-function family).
fn is_raw_gemm_entry(name: &str) -> bool {
    (name.starts_with("matmul_") && name.ends_with("_into"))
        || (name.starts_with("gemm_encode_") && name.ends_with("_into"))
}

/// Paths where raw GEMM calls are legitimate: the kernel crate itself,
/// the three attnchecker modules that *implement* the guarded pipeline,
/// and benches.
pub(crate) fn unguarded_gemm_whitelisted(rel_path: &str) -> bool {
    rel_path.starts_with("crates/tensor/")
        || rel_path.starts_with("crates/bench/")
        || rel_path.starts_with("crates/lint/")
        || matches!(
            rel_path,
            "crates/core/src/section.rs"
                | "crates/core/src/checksum.rs"
                | "crates/core/src/decode.rs"
        )
}

/// Order-sensitive reduction adapters (float reductions through these are
/// nondeterministic under work stealing).
const ORDERED_REDUCERS: [&str; 4] = ["sum", "product", "reduce", "fold"];

/// Hash-container methods that iterate in arbitrary order.
const HASH_ITERATORS: [&str; 8] = [
    "iter",
    "iter_mut",
    "values",
    "values_mut",
    "keys",
    "drain",
    "into_iter",
    "retain",
];

/// Run the syntactic lints over one file. `hot_path` is the module's
/// `//! attn-lint: hot-path` opt-in; `profile` selects the lint set.
pub fn run(
    rel_path: &str,
    toks: &[Tok],
    ctx: &Context,
    hot_path: bool,
    profile: Profile,
) -> Vec<Finding> {
    let mut out = Vec::new();
    nondet_reduce(rel_path, toks, ctx, &mut out);
    if profile == Profile::Full {
        if hot_path {
            hot_path_alloc(rel_path, toks, ctx, &mut out);
        }
        if !unguarded_gemm_whitelisted(rel_path) {
            unguarded_gemm(rel_path, toks, ctx, &mut out);
        }
    }
    float_eq(rel_path, toks, ctx, &mut out);
    out
}

fn prev_code(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[..i]
        .iter()
        .rev()
        .find(|t| t.kind != TokKind::LineComment)
}

fn next_code(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[i + 1..]
        .iter()
        .find(|t| t.kind != TokKind::LineComment)
}

pub(crate) fn nondet_reduce(rel_path: &str, toks: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        // A) Order-sensitive reducers inside a parallel chain.
        if ctx.in_par_chain[i]
            && t.kind == TokKind::Ident
            && ORDERED_REDUCERS.contains(&t.text.as_str())
            && matches!(prev_code(toks, i), Some(p) if p.is_punct("."))
            && matches!(next_code(toks, i), Some(nx) if nx.is_punct("(") || nx.is_punct("::"))
        {
            out.push(Finding::new(
                rel_path,
                t.line,
                t.col,
                NONDET_REDUCE,
                format!(
                    "`.{}(…)` inside a rayon parallel chain reduces in scheduling order; \
                     collect in input order and reduce sequentially (fixed-order contract)",
                    t.text
                ),
            ));
        }
        // B) Accumulation inside a parallel closure. Integer counters
        //    (`+= 1`) are exact and associative; everything else must
        //    prove it is a fixed-order / disjoint-output merge site.
        if ctx.in_par_chain[i]
            && t.kind == TokKind::Punct
            && matches!(t.text.as_str(), "+=" | "-=" | "*=" | "/=")
        {
            let rhs_is_int_literal = matches!(next_code(toks, i), Some(nx) if nx.kind == TokKind::Int)
                && matches!(
                    toks[i + 1..]
                        .iter()
                        .filter(|x| x.kind != TokKind::LineComment)
                        .nth(1),
                    Some(after) if after.is_punct(";")
                );
            if !rhs_is_int_literal {
                out.push(Finding::new(
                    rel_path,
                    t.line,
                    t.col,
                    NONDET_REDUCE,
                    format!(
                        "`{}` accumulation inside a rayon parallel closure; if this is a \
                         fixed-order merge over a disjoint chunk, say so in an allow",
                        t.text
                    ),
                ));
            }
        }
        // C) Hash-container iteration feeding float math.
        if t.kind == TokKind::Ident && ctx.hash_bindings.contains(&t.text) {
            let method_iteration = matches!(next_code(toks, i), Some(nx) if nx.is_punct("."))
                && matches!(
                    toks[i + 1..]
                        .iter()
                        .filter(|x| x.kind != TokKind::LineComment)
                        .nth(1),
                    Some(m) if m.kind == TokKind::Ident && HASH_ITERATORS.contains(&m.text.as_str())
                );
            let in_for_header = for_loop_header(toks, i);
            if (method_iteration || in_for_header) && float_evidence_near(toks, i) {
                out.push(Finding::new(
                    rel_path,
                    t.line,
                    t.col,
                    NONDET_REDUCE,
                    format!(
                        "iterating hash container `{}` in arbitrary order feeds float math; \
                         use a BTree container or a fixed key order",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// Is token `i` inside a `for … in <here> {` header?
fn for_loop_header(toks: &[Tok], i: usize) -> bool {
    // Walk back to the nearest `for` without crossing `{`, `}`, or `;`.
    let lo = i.saturating_sub(16);
    let mut saw_in = false;
    let mut j = i;
    while j > lo {
        j -= 1;
        let t = &toks[j];
        if t.is_punct("{") || t.is_punct("}") || t.is_punct(";") {
            return false;
        }
        if t.is_ident("in") {
            saw_in = true;
        }
        if t.is_ident("for") {
            return saw_in;
        }
    }
    false
}

/// Float evidence near an iteration site: a float literal or `f32`/`f64`
/// token between the enclosing statement's start and its end — for a
/// `for` loop, through the end of the loop body.
fn float_evidence_near(toks: &[Tok], i: usize) -> bool {
    // Backward to statement start.
    let mut start = 0usize;
    for j in (0..i).rev() {
        let t = &toks[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            start = j + 1;
            break;
        }
    }
    // Forward: to `;` at depth 0, or through the brace group that opens
    // (loop body / trailing closure).
    let mut depth = 0i32;
    let mut end = toks.len();
    for (j, t) in toks.iter().enumerate().skip(i) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth <= 0 {
                end = j + 1;
                break;
            }
        } else if t.is_punct(";") && depth == 0 {
            end = j + 1;
            break;
        }
    }
    toks[start..end]
        .iter()
        .any(|t| t.kind == TokKind::Float || t.is_ident("f32") || t.is_ident("f64"))
}

/// Allocation surface banned in hot-path modules (outside tests).
pub(crate) fn hot_path_alloc(rel_path: &str, toks: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let flag: Option<&str> = match t.text.as_str() {
            // `vec![…]`
            "vec" if matches!(next_code(toks, i), Some(nx) if nx.is_punct("!")) => {
                Some("`vec!` allocates")
            }
            // `Vec::new()` / `Vec::with_capacity(…)` / `Box::new(…)`
            "new" | "with_capacity" => {
                let path_head = toks[..i]
                    .iter()
                    .rev()
                    .filter(|x| x.kind != TokKind::LineComment)
                    .nth(1);
                match (prev_code(toks, i), path_head) {
                    (Some(p), Some(h))
                        if p.is_punct("::") && (h.is_ident("Vec") || h.is_ident("Box")) =>
                    {
                        Some("heap allocation")
                    }
                    _ => None,
                }
            }
            // `.to_vec()` / `.clone()` on anything — in a hot module the
            // owned-buffer copy is the point of the lint.
            "to_vec" | "clone"
                if matches!(prev_code(toks, i), Some(p) if p.is_punct("."))
                    && matches!(next_code(toks, i), Some(nx) if nx.is_punct("(")) =>
            {
                Some("owned-buffer copy")
            }
            _ => None,
        };
        if let Some(why) = flag {
            out.push(Finding::new(
                rel_path,
                t.line,
                t.col,
                HOT_PATH_ALLOC,
                format!(
                    "{why} in a hot-path module; use the workspace arena or justify \
                     (construction / cold path) in an allow"
                ),
            ));
        }
    }
}

pub(crate) fn unguarded_gemm(rel_path: &str, toks: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident || !is_raw_gemm_entry(&t.text) {
            continue;
        }
        // Calls only (`name(`), and never method calls — `.gemm_encode_*`
        // on a `GuardedSection` IS the guarded API.
        if !matches!(next_code(toks, i), Some(nx) if nx.is_punct("(")) {
            continue;
        }
        if matches!(prev_code(toks, i), Some(p) if p.is_punct(".")) {
            continue;
        }
        out.push(Finding::new(
            rel_path,
            t.line,
            t.col,
            UNGUARDED_GEMM,
            format!(
                "direct call to raw GEMM entry `{}` outside the protection layer; \
                 route through GuardedSection/ProtectedLinear so ABFT coverage is total",
                t.text
            ),
        ));
    }
}

pub(crate) fn float_eq(rel_path: &str, toks: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let lhs_float = matches!(prev_code(toks, i), Some(p) if p.kind == TokKind::Float);
        let rhs_float = {
            let mut it = toks[i + 1..]
                .iter()
                .filter(|x| x.kind != TokKind::LineComment);
            match it.next() {
                Some(nx) if nx.kind == TokKind::Float => true,
                Some(nx) if nx.is_punct("-") => {
                    matches!(it.next(), Some(n2) if n2.kind == TokKind::Float)
                }
                _ => false,
            }
        };
        if lhs_float || rhs_float {
            out.push(Finding::new(
                rel_path,
                t.line,
                t.col,
                FLOAT_EQ,
                format!(
                    "raw `{}` against a float literal; name the contract \
                     (e.g. attn_tensor::float::exactly_zero, FrequencyGate::is_off) \
                     or compare bits via to_bits()",
                    t.text
                ),
            ));
        }
    }
}
