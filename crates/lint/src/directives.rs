//! Suppression and opt-in directives, parsed from the comment stream.
//!
//! Two directives exist:
//!
//! * A **hot-path header** — an inner doc line (`//!`) whose content is
//!   exactly `attn-lint: hot-path` — opts the whole module into the
//!   `hot-path-alloc` lint.
//! * An **allow** — a *plain* `//` comment of the form
//!   `attn-lint: allow(<lint-name>) — <justification>`, either trailing
//!   the offending line or on its own line directly above it. The
//!   justification is mandatory: an allow without one does not suppress
//!   anything and is itself reported. So are allows naming an unknown
//!   lint and allows that suppress nothing (`unused-allow`) — suppression
//!   debt can never accumulate silently.
//! * An **allow-path** — same grammar with `allow-path(<lint-name>)`,
//!   valid only for the reachability lints. Instead of killing a finding
//!   on its own line, it cuts the *call-graph edges* leaving the call on
//!   the targeted line, vouching for a reviewed boundary once rather
//!   than per-sink. Unused and unjustified allow-paths are findings like
//!   any other allow.
//!
//! * A **SAFETY justification** — a *plain* `//` comment of the form
//!   `SAFETY: <justification>`, either trailing the `unsafe` it vouches
//!   for or on its own line directly above it (after any attributes).
//!   The `unsafe-audit` lint requires one adjacent to every `unsafe`
//!   block/fn/impl; an empty justification is a `missing-justification`
//!   finding and a SAFETY comment attached to a line with no `unsafe`
//!   on it is an `unused-safety` finding, so the documented-unsafety
//!   inventory stays exact just like the allow inventory.
//!
//! Allows are only read from plain `//` comments (never `///`/`//!`), so
//! documentation can quote the grammar without registering suppressions.

use crate::lexer::{Tok, TokKind};
use crate::{Finding, LINT_NAMES, REACH_NAMES};

/// One parsed `allow` directive.
#[derive(Debug)]
pub struct Allow {
    /// Line the comment sits on.
    pub line: u32,
    /// Column of the comment.
    pub col: u32,
    /// Lint names inside `allow(…)` (comma-separated).
    pub names: Vec<String>,
    /// Whether a non-empty justification followed the name list.
    pub justified: bool,
    /// The source line this allow suppresses findings on: the comment's
    /// own line for a trailing allow, else the next line holding code.
    pub target_line: u32,
    /// Set when the allow suppressed at least one finding.
    pub used: std::cell::Cell<bool>,
}

/// One parsed `// SAFETY: …` justification.
#[derive(Debug)]
pub struct Safety {
    /// Line the comment sits on.
    pub line: u32,
    /// Column of the comment.
    pub col: u32,
    /// The source line this justification vouches for: the comment's own
    /// line for a trailing comment, else the next line holding code.
    pub target_line: u32,
    /// Set when the justification covered at least one `unsafe` site.
    pub used: std::cell::Cell<bool>,
}

/// All directives of one file.
#[derive(Debug, Default)]
pub struct Directives {
    /// `//! attn-lint: hot-path` seen.
    pub hot_path: bool,
    /// Parsed allows, in source order.
    pub allows: Vec<Allow>,
    /// Parsed allow-paths (call-graph edge cuts), in source order.
    pub allow_paths: Vec<Allow>,
    /// Parsed `// SAFETY:` justifications, in source order.
    pub safeties: Vec<Safety>,
    /// Malformed/unknown directives, reported as findings directly.
    pub errors: Vec<Finding>,
}

/// The marker every directive starts with (after the comment prefix).
const MARKER: &str = "attn-lint:";

/// The marker a SAFETY justification starts with (after `//`).
const SAFETY_MARKER: &str = "SAFETY:";

/// Attach a standalone directive to the next code line (its own line when
/// code shares it — the trailing form).
fn attach_line(code_lines: &[u32], line: u32) -> u32 {
    if code_lines.binary_search(&line).is_ok() {
        line
    } else {
        code_lines
            .iter()
            .copied()
            .find(|&l| l > line)
            .unwrap_or(line)
    }
}

/// Extract directives from a token stream. `code_lines` must hold every
/// line that carries at least one non-comment token (used to attach an
/// above-the-line allow to the statement it covers).
pub fn parse(rel_path: &str, toks: &[Tok], code_lines: &[u32]) -> Directives {
    let mut out = Directives::default();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let (prefix, body) = split_comment(&t.text);
        let body = body.trim();
        if let Some(just) = body.strip_prefix(SAFETY_MARKER) {
            // SAFETY justifications are plain-comment-only, like allows.
            if matches!(prefix, CommentPrefix::Plain) {
                if just.trim().is_empty() {
                    out.errors.push(Finding::new(
                        rel_path,
                        t.line,
                        t.col,
                        "missing-justification",
                        "`// SAFETY:` requires a non-empty justification".to_string(),
                    ));
                } else {
                    out.safeties.push(Safety {
                        line: t.line,
                        col: t.col,
                        target_line: attach_line(code_lines, t.line),
                        used: std::cell::Cell::new(false),
                    });
                }
            }
            continue;
        }
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim();
        match prefix {
            CommentPrefix::InnerDoc => {
                if rest == "hot-path" {
                    out.hot_path = true;
                }
                // Any other text in a `//!` is documentation, not a
                // directive.
            }
            CommentPrefix::OuterDoc => {
                // `///` never carries directives (lets docs quote them).
            }
            CommentPrefix::Plain => match parse_allow(rest) {
                Ok((is_path, names, justified)) => {
                    let form = if is_path { "allow-path" } else { "allow" };
                    let mut valid = Vec::new();
                    for name in names {
                        if is_path && !REACH_NAMES.contains(&name.as_str()) {
                            out.errors.push(Finding::new(
                                rel_path,
                                t.line,
                                t.col,
                                "unknown-allow",
                                format!(
                                    "allow-path only applies to reachability lints, \
                                     not `{name}`"
                                ),
                            ));
                        } else if LINT_NAMES.contains(&name.as_str()) {
                            valid.push(name);
                        } else {
                            out.errors.push(Finding::new(
                                rel_path,
                                t.line,
                                t.col,
                                "unknown-allow",
                                format!("{form} names unknown lint `{name}`"),
                            ));
                        }
                    }
                    if !justified {
                        out.errors.push(Finding::new(
                            rel_path,
                            t.line,
                            t.col,
                            "missing-justification",
                            format!("{form} requires `— <justification>` after the lint name"),
                        ));
                    } else if !valid.is_empty() {
                        let target_line = attach_line(code_lines, t.line);
                        let allow = Allow {
                            line: t.line,
                            col: t.col,
                            names: valid,
                            justified,
                            target_line,
                            used: std::cell::Cell::new(false),
                        };
                        if is_path {
                            out.allow_paths.push(allow);
                        } else {
                            out.allows.push(allow);
                        }
                    }
                }
                Err(msg) => {
                    out.errors
                        .push(Finding::new(rel_path, t.line, t.col, "unknown-allow", msg))
                }
            },
        }
    }
    out
}

enum CommentPrefix {
    Plain,
    OuterDoc,
    InnerDoc,
}

fn split_comment(text: &str) -> (CommentPrefix, &str) {
    if let Some(rest) = text.strip_prefix("//!") {
        (CommentPrefix::InnerDoc, rest)
    } else if let Some(rest) = text.strip_prefix("///") {
        (CommentPrefix::OuterDoc, rest)
    } else {
        (
            CommentPrefix::Plain,
            text.strip_prefix("//").unwrap_or(text),
        )
    }
}

/// Parse `allow(<names>) — justification` or its `allow-path(…)` edge-cut
/// form (the part after `attn-lint:`). Returns `(is_path, names,
/// justified)`. The em-dash separator also accepts `--` and a spaced `-`
/// so keyboards without an em-dash are not excluded.
fn parse_allow(rest: &str) -> Result<(bool, Vec<String>, bool), String> {
    let (is_path, args) = if let Some(a) = rest.strip_prefix("allow-path(") {
        (true, a)
    } else if let Some(a) = rest.strip_prefix("allow(") {
        (false, a)
    } else {
        return Err(format!("unrecognised directive `{MARKER} {rest}`"));
    };
    let Some(close) = args.find(')') else {
        return Err("allow is missing its closing `)`".to_string());
    };
    let names: Vec<String> = args[..close]
        .split(',')
        .map(|n| n.trim().to_string())
        .filter(|n| !n.is_empty())
        .collect();
    if names.is_empty() {
        return Err("allow() names no lint".to_string());
    }
    let tail = args[close + 1..].trim_start();
    let justified = ["—", "--", "- ", "–"]
        .iter()
        .any(|sep| tail.strip_prefix(sep).is_some_and(|j| !j.trim().is_empty()));
    Ok((is_path, names, justified))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn directives(src: &str) -> Directives {
        let toks = lex(src);
        let mut code_lines: Vec<u32> = toks
            .iter()
            .filter(|t| t.kind != TokKind::LineComment)
            .map(|t| t.line)
            .collect();
        code_lines.dedup();
        parse("f.rs", &toks, &code_lines)
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let d = directives("let x = 1; // attn-lint: allow(float-eq) — sentinel\n");
        assert_eq!(d.allows.len(), 1);
        assert_eq!(d.allows[0].target_line, 1);
        assert!(d.errors.is_empty());
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let d = directives(
            "// attn-lint: allow(hot-path-alloc) — warmup only\n// another comment\nlet v = 1;\n",
        );
        assert_eq!(d.allows.len(), 1);
        assert_eq!(d.allows[0].target_line, 3);
    }

    #[test]
    fn justification_is_mandatory() {
        let d = directives("// attn-lint: allow(float-eq)\nlet x = 1;\n");
        assert!(d.allows.is_empty());
        assert_eq!(d.errors.len(), 1);
        assert_eq!(d.errors[0].lint, "missing-justification");
    }

    #[test]
    fn unknown_lint_is_an_error() {
        let d = directives("// attn-lint: allow(no-such-lint) — why\nlet x = 1;\n");
        assert!(d.allows.is_empty());
        assert_eq!(d.errors[0].lint, "unknown-allow");
    }

    #[test]
    fn hot_path_header_only_counts_from_inner_doc() {
        assert!(directives("//! attn-lint: hot-path\n").hot_path);
        assert!(!directives("// attn-lint: hot-path\n").hot_path);
        assert!(!directives("/// attn-lint: hot-path\n").hot_path);
    }

    #[test]
    fn doc_comments_never_register_allows() {
        let d = directives("/// attn-lint: allow(float-eq) — quoted in docs\nlet x = 1;\n");
        assert!(d.allows.is_empty());
        assert!(d.errors.is_empty());
    }

    #[test]
    fn allow_path_parses_into_its_own_bucket() {
        let d = directives(
            "self.model.decode_step(t); // attn-lint: allow-path(panic-reach) — contract\n",
        );
        assert!(d.allows.is_empty());
        assert_eq!(d.allow_paths.len(), 1);
        assert_eq!(d.allow_paths[0].target_line, 1);
        assert!(d.errors.is_empty());
    }

    #[test]
    fn allow_path_rejects_syntactic_lints() {
        let d = directives("let x = 1; // attn-lint: allow-path(float-eq) — nope\n");
        assert!(d.allow_paths.is_empty());
        assert_eq!(d.errors.len(), 1);
        assert_eq!(d.errors[0].lint, "unknown-allow");
    }

    #[test]
    fn allow_path_justification_is_mandatory_too() {
        let d = directives("// attn-lint: allow-path(panic-reach)\nf();\n");
        assert!(d.allow_paths.is_empty());
        assert_eq!(d.errors[0].lint, "missing-justification");
    }

    #[test]
    fn trailing_safety_targets_its_own_line() {
        let d = directives("unsafe impl Send for P {} // SAFETY: disjoint per task\n");
        assert_eq!(d.safeties.len(), 1);
        assert_eq!(d.safeties[0].target_line, 1);
        assert!(d.errors.is_empty());
    }

    #[test]
    fn standalone_safety_targets_next_code_line() {
        let d = directives("// SAFETY: region bounds asserted above\nlet s = unsafe { f() };\n");
        assert_eq!(d.safeties.len(), 1);
        assert_eq!(d.safeties[0].target_line, 2);
    }

    #[test]
    fn empty_safety_is_a_missing_justification() {
        let d = directives("// SAFETY:\nunsafe fn f() {}\n");
        assert!(d.safeties.is_empty());
        assert_eq!(d.errors.len(), 1);
        assert_eq!(d.errors[0].lint, "missing-justification");
    }

    #[test]
    fn doc_comments_never_register_safeties() {
        let d = directives("/// SAFETY: quoted in docs\nlet x = 1;\n");
        assert!(d.safeties.is_empty());
        assert!(d.errors.is_empty());
    }
}
