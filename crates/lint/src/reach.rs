//! Reachability analyses over the workspace call graph, plus the
//! protection-coverage traversal behind `--coverage`.
//!
//! Five lints run here:
//!
//! * **panic-reach** — panic-capable constructs (unwrap/expect/
//!   panic-family macros/expression-position indexing) transitively
//!   reachable from the serving entry points (`Gateway::admit/tick/
//!   run_trace`, `DecodeEngine::step_batch/step_batch_mixed`),
//! * **hot-path-alloc-reach** — allocation sites in cold modules reached
//!   from `//! attn-lint: hot-path` module fns (direct allocs in hot
//!   modules stay with the syntactic lint),
//! * **unguarded-gemm-reach** — raw kernel entries reached from model
//!   forward/decode/train paths other than through the guarded barrier
//!   modules (`core/{section,checksum,decode,checked}.rs`),
//! * **nondet-reduce-reach** — calls from inside a rayon parallel chain
//!   to functions whose own body performs an ordered float reduction,
//! * **target-feature-reach** — calls to `#[target_feature]` fns from
//!   sites not inside an `is_x86_feature_detected!`-gated branch (callers
//!   that are themselves `#[target_feature]` are already in the gated
//!   world and exempt).
//!
//! Findings carry the shortest entry→violation call path. Suppression:
//! a regular `allow(<reach-lint>)` on the violating line kills the sink;
//! `// attn-lint: allow-path(<reach-lint>) — justification` on a call
//! line cuts that call's outgoing edges for that analysis, so a reviewed
//! boundary (e.g. engine → model) can be vouched for once.

use crate::callgraph::Graph;
use crate::directives::Allow;
use crate::Finding;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Per-fn predecessor map from a reachability BFS: reached fn →
/// `(caller fn, call-site line)`; entries map to themselves.
type PredMap = BTreeMap<usize, (usize, u32)>;

/// Panic reachability from serving entries.
pub const PANIC_REACH: &str = "panic-reach";
/// Alloc-capable callees reached from hot-path modules.
pub const HOT_PATH_ALLOC_REACH: &str = "hot-path-alloc-reach";
/// Raw GEMM entries reached outside the guarded barrier.
pub const UNGUARDED_GEMM_REACH: &str = "unguarded-gemm-reach";
/// Ordered float reductions called from parallel chains.
pub const NONDET_REDUCE_REACH: &str = "nondet-reduce-reach";
/// `#[target_feature]` fns called outside a feature-detected gate.
pub const TARGET_FEATURE_REACH: &str = "target-feature-reach";

/// Serving entry points for panic reachability: `(owner, method)`.
pub const SERVE_ENTRIES: [(&str, &str); 5] = [
    ("Gateway", "admit"),
    ("Gateway", "tick"),
    ("Gateway", "run_trace"),
    ("DecodeEngine", "step_batch"),
    ("DecodeEngine", "step_batch_mixed"),
];

/// Model forward/decode/train entry points for GEMM-guard reachability
/// and coverage: `(owner, method, path-kind)`.
pub const OP_PATH_ENTRIES: [(&str, &str, &str); 8] = [
    ("TransformerModel", "forward_tape", "forward"),
    ("TransformerModel", "prefill", "decode"),
    ("TransformerModel", "decode_step", "decode"),
    ("DecodeEngine", "step_batch", "decode"),
    ("DecodeEngine", "step_batch_mixed", "decode"),
    ("Gateway", "tick", "decode"),
    ("Trainer", "train_step", "train"),
    ("Trainer", "train_step_injected", "train"),
];

/// Barrier modules implementing the guarded pipeline: reachability never
/// descends into them, and raw GEMM calls inside them are the guard.
const BARRIER_FILES: [&str; 4] = [
    "crates/core/src/section.rs",
    "crates/core/src/checksum.rs",
    "crates/core/src/decode.rs",
    "crates/core/src/checked.rs",
];

/// Raw GEMM entry-point names (mirrors the syntactic lint).
fn is_raw_gemm_entry(name: &str) -> bool {
    (name.starts_with("matmul_") && name.ends_with("_into"))
        || (name.starts_with("gemm_encode_") && name.ends_with("_into"))
}

/// The `GuardedSection` methods that constitute the guarded GEMM API.
const GUARDED_GEMM_METHODS: [&str; 5] = [
    "gemm",
    "gemm_nt",
    "gemm_encode_cols",
    "gemm_encode_rows",
    "gemm_adopt_cols",
];

/// Edge-cut suppressions, indexed by `(file, line)` per lint name.
pub struct PathAllows<'a> {
    by_site: BTreeMap<(usize, u32), Vec<&'a Allow>>,
}

impl<'a> PathAllows<'a> {
    /// Build the index from per-file allow-path directives (borrowed in
    /// place from each file's parsed `Directives`, so one prepared
    /// workspace serves both check and coverage); `files` maps rel paths
    /// to graph file indexes.
    pub fn new(files: &[String], per_file: &[(&str, &'a [Allow])]) -> Self {
        let idx: BTreeMap<&str, usize> = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.as_str(), i))
            .collect();
        let mut by_site: BTreeMap<(usize, u32), Vec<&'a Allow>> = BTreeMap::new();
        for (rel, allows) in per_file {
            let Some(&fi) = idx.get(rel) else {
                continue;
            };
            for a in *allows {
                by_site.entry((fi, a.target_line)).or_default().push(a);
            }
        }
        Self { by_site }
    }

    /// An index with no edge cuts (coverage traversals).
    pub fn none() -> Self {
        Self {
            by_site: BTreeMap::new(),
        }
    }

    /// Does an allow-path cover this call site for `lint`? Marks it used.
    fn cuts(&self, file: usize, line: u32, lint: &str) -> bool {
        if let Some(allows) = self.by_site.get(&(file, line)) {
            for a in allows {
                if a.names.iter().any(|n| n == lint) {
                    a.used.set(true);
                    return true;
                }
            }
        }
        false
    }
}

/// BFS over call edges from `entries`; returns per-fn predecessor
/// `(caller fn, call-site line)` for path rendering (entries map to
/// themselves). `descend(fn)` gates whether edges *out of* a fn are
/// followed.
fn bfs(
    g: &Graph,
    entries: &[usize],
    lint: &str,
    cuts: &PathAllows<'_>,
    descend: impl Fn(usize) -> bool,
) -> PredMap {
    let mut pred: PredMap = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in entries {
        if pred.insert(e, (e, g.fns[e].line)).is_none() {
            queue.push_back(e);
        }
    }
    while let Some(u) = queue.pop_front() {
        if !descend(u) {
            continue;
        }
        for &si in &g.fns[u].calls {
            let site = &g.sites[si];
            if site.targets.is_empty() {
                continue;
            }
            if cuts.cuts(site.file, site.line, lint) {
                continue;
            }
            for &v in &site.targets {
                if g.fns[v].is_test {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(v) {
                    e.insert((u, site.line));
                    queue.push_back(v);
                }
            }
        }
    }
    pred
}

/// Render the entry→fn call path: `Gateway::tick → Engine::step → f`.
fn render_path(g: &Graph, pred: &PredMap, sink: usize) -> String {
    let mut chain = vec![sink];
    let mut cur = sink;
    while let Some(&(p, _)) = pred.get(&cur) {
        if p == cur {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
        .iter()
        .map(|&f| g.fns[f].qualified())
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Resolve the fn indexes for `(owner, name)` entry specs.
fn resolve_entries(g: &Graph, specs: &[(&str, &str)]) -> Vec<usize> {
    let mut out = Vec::new();
    for (owner, name) in specs {
        out.extend(g.find_methods(owner, name));
    }
    out
}

/// The serving entry points present in this graph, qualified — reported
/// in the JSON so entry drift is visible in review.
pub fn entry_points(g: &Graph) -> Vec<String> {
    resolve_entries(g, &SERVE_ENTRIES)
        .into_iter()
        .map(|f| g.fns[f].qualified())
        .collect()
}

/// panic-reach: every panic-capable construct in fns reachable from the
/// serving entries.
pub fn panic_reach(g: &Graph, cuts: &PathAllows<'_>, out: &mut Vec<Finding>) {
    let entries = resolve_entries(g, &SERVE_ENTRIES);
    let pred = bfs(g, &entries, PANIC_REACH, cuts, |_| true);
    for &fid in pred.keys() {
        let f = &g.fns[fid];
        let path = render_path(g, &pred, fid);
        for &(line, col, desc) in &f.panic_sites {
            out.push(Finding::new(
                &g.files[f.file],
                line,
                col,
                PANIC_REACH,
                format!(
                    "{desc} reachable from a serving entry: {path} → {desc} at {}:{line}; \
                     return a typed error, restructure, or prove unreachability in an allow",
                    g.files[f.file]
                ),
            ));
        }
    }
}

/// hot-path-alloc-reach: allocation sites in cold modules reached from
/// hot-module fns. `hot` flags each graph file.
pub fn hot_path_alloc_reach(
    g: &Graph,
    hot: &[bool],
    cuts: &PathAllows<'_>,
    out: &mut Vec<Finding>,
) {
    let entries: Vec<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| hot.get(f.file).copied().unwrap_or(false))
        .map(|(i, _)| i)
        .collect();
    let pred = bfs(g, &entries, HOT_PATH_ALLOC_REACH, cuts, |_| true);
    let mut seen: std::collections::BTreeSet<(usize, u32, u32)> = Default::default();
    for &fid in pred.keys() {
        let f = &g.fns[fid];
        if hot.get(f.file).copied().unwrap_or(false) {
            continue; // direct allocs in hot modules: syntactic lint's job
        }
        let path = render_path(g, &pred, fid);
        for &(line, col, desc) in &f.alloc_sites {
            if !seen.insert((f.file, line, col)) {
                continue;
            }
            out.push(Finding::new(
                &g.files[f.file],
                line,
                col,
                HOT_PATH_ALLOC_REACH,
                format!(
                    "{desc} reachable from a hot-path module: {path} → {desc} at {}:{line}; \
                     route scratch through the workspace arena or vouch for the boundary \
                     with an allow-path",
                    g.files[f.file]
                ),
            ));
        }
    }
}

/// unguarded-gemm-reach: raw GEMM entries called on paths from model
/// forward/decode/train entries that bypass the barrier modules.
pub fn unguarded_gemm_reach(g: &Graph, cuts: &PathAllows<'_>, out: &mut Vec<Finding>) {
    let specs: Vec<(&str, &str)> = OP_PATH_ENTRIES.iter().map(|&(o, n, _)| (o, n)).collect();
    let entries = resolve_entries(g, &specs);
    let barrier = |f: usize| {
        let file = g.files[g.fns[f].file].as_str();
        !BARRIER_FILES.contains(&file)
    };
    let pred = bfs(g, &entries, UNGUARDED_GEMM_REACH, cuts, barrier);
    for &fid in pred.keys() {
        let f = &g.fns[fid];
        let file = g.files[f.file].as_str();
        // Kernel internals and benches call raw entries legitimately.
        if file.starts_with("crates/tensor/") || file.starts_with("crates/bench/") {
            continue;
        }
        if BARRIER_FILES.contains(&file) {
            continue; // reached as an entry? barrier code is the guard
        }
        for &si in &f.calls {
            let site = &g.sites[si];
            if site.is_method || !is_raw_gemm_entry(&site.name) {
                continue;
            }
            let path = render_path(g, &pred, fid);
            out.push(Finding::new(
                &g.files[site.file],
                site.line,
                site.col,
                UNGUARDED_GEMM_REACH,
                format!(
                    "raw GEMM entry `{}` reached from a model path outside the guarded \
                     barrier: {path} → {} at {}:{}; route through \
                     GuardedSection/ProtectedLinear",
                    site.name, site.name, g.files[site.file], site.line
                ),
            ));
        }
    }
}

/// nondet-reduce-reach: direct calls from inside a rayon parallel chain
/// to fns whose own body performs an ordered float reduction.
pub fn nondet_reduce_reach(g: &Graph, cuts: &PathAllows<'_>, out: &mut Vec<Finding>) {
    for f in &g.fns {
        for &si in &f.calls {
            let site = &g.sites[si];
            if !site.in_par_chain || site.targets.is_empty() {
                continue;
            }
            if cuts.cuts(site.file, site.line, NONDET_REDUCE_REACH) {
                continue;
            }
            for &t in &site.targets {
                let tf = &g.fns[t];
                if let Some((rline, _)) = tf.ordered_reduction {
                    out.push(Finding::new(
                        &g.files[site.file],
                        site.line,
                        site.col,
                        NONDET_REDUCE_REACH,
                        format!(
                            "`{}` is called inside a rayon parallel chain but reduces floats \
                             in sequential order at {}:{rline}; hoist it out of the parallel \
                             region or vouch for the disjoint/fixed-order merge with an \
                             allow-path",
                            tf.qualified(),
                            g.files[tf.file]
                        ),
                    ));
                    break; // one finding per site, not per candidate
                }
            }
        }
    }
}

/// target-feature-reach: calls to `#[target_feature]` fns whose call
/// site is not inside an `is_x86_feature_detected!`-gated branch.
/// Callers that are themselves `#[target_feature]` run only after some
/// dispatcher proved the feature, so their internal calls are exempt —
/// the lint pins the obligation on the dispatch boundary.
pub fn target_feature_reach(g: &Graph, cuts: &PathAllows<'_>, out: &mut Vec<Finding>) {
    for f in &g.fns {
        if f.has_target_feature {
            continue;
        }
        for &si in &f.calls {
            let site = &g.sites[si];
            if site.gated || site.targets.is_empty() {
                continue;
            }
            if cuts.cuts(site.file, site.line, TARGET_FEATURE_REACH) {
                continue;
            }
            for &t in &site.targets {
                let tf = &g.fns[t];
                if tf.has_target_feature {
                    out.push(Finding::new(
                        &g.files[site.file],
                        site.line,
                        site.col,
                        TARGET_FEATURE_REACH,
                        format!(
                            "`{}` is `#[target_feature]` but this call site is not inside an \
                             `is_x86_feature_detected!`-gated branch; dispatch through a \
                             detected gate or vouch for it with an allow-path",
                            tf.qualified()
                        ),
                    ));
                    break; // one finding per site, not per candidate
                }
            }
        }
    }
}

/// One operator instance on a forward/decode/train path.
#[derive(Debug)]
pub struct CoverageOp {
    /// Operator kind (`gemm`, `softmax`, `layernorm`, …).
    pub kind: &'static str,
    /// Callee as written at the site.
    pub name: String,
    /// Call-site position.
    pub file: String,
    pub line: u32,
    /// Whether the op runs under ABFT protection.
    pub guarded: bool,
    /// Path kinds that reach it (`forward`/`decode`/`train`), sorted.
    pub paths: Vec<&'static str>,
    /// Shortest entry→caller call path (first reaching path kind).
    pub via: String,
}

/// The `--coverage` result.
#[derive(Debug, Default)]
pub struct Coverage {
    /// Every op instance, sorted by (file, line).
    pub ops: Vec<CoverageOp>,
    /// Entry points per path kind, qualified.
    pub entries: Vec<(String, String)>,
    /// Call-resolution stats copied from the graph.
    pub calls_total: usize,
    pub calls_resolved: usize,
}

impl Coverage {
    pub fn resolution_rate(&self) -> f64 {
        if self.calls_total == 0 {
            1.0
        } else {
            self.calls_resolved as f64 / self.calls_total as f64
        }
    }

    /// Guarded fraction over all op instances (1.0 when no ops).
    pub fn coverage_rate(&self) -> f64 {
        if self.ops.is_empty() {
            return 1.0;
        }
        self.ops.iter().filter(|o| o.guarded).count() as f64 / self.ops.len() as f64
    }

    /// GEMM instances that are NOT guarded — the hard zero floor.
    pub fn unguarded_gemms(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| o.kind == "gemm" && !o.guarded)
            .count()
    }
}

/// Operator catalog: callee name (+ optional required owner) →
/// `(kind, guarded)`. Plain kernel/API names are unguarded; the
/// `*_checked` wrappers run an invariant screen with exact
/// recompute-from-inputs fallback (`attn_tensor::guard`), so sites that
/// call them count as guarded.
fn catalog_op(name: &str, owner_hint: Option<&str>) -> Option<(&'static str, bool)> {
    match name {
        // Plain (unguarded) op entry points.
        "softmax_rows" | "softmax_rows_inplace" | "softmax_rows_backward" => {
            Some(("softmax", false))
        }
        "layer_norm" | "layer_norm_backward" => Some(("layernorm", false)),
        "gelu" | "gelu_matrix" | "gelu_backward" => Some(("gelu", false)),
        "cross_entropy" => Some(("loss", false)),
        "sample_token" => Some(("sampling", false)),
        "add" if owner_hint == Some("Matrix") => Some(("residual-add", false)),
        "forward_tape" | "forward" if owner_hint == Some("Embedding") => Some(("embedding", false)),
        "step" | "step_batched" if owner_hint == Some("AdamW") => Some(("optimizer", false)),
        "forward_tape" | "forward" if owner_hint == Some("LayerNorm") => Some(("layernorm", false)),
        // Guarded wrappers (screen + exact recompute on violation).
        "softmax_rows_checked"
        | "softmax_rows_checked_inplace"
        | "softmax_rows_backward_checked" => Some(("softmax", true)),
        "layer_norm_checked" | "layer_norm_backward_checked" => Some(("layernorm", true)),
        "forward_tape_checked" | "backward_tape_checked" if owner_hint == Some("LayerNorm") => {
            Some(("layernorm", true))
        }
        "gelu_matrix_checked" | "gelu_matrix_checked_inplace" | "gelu_backward_checked" => {
            Some(("gelu", true))
        }
        "residual_add_checked" => Some(("residual-add", true)),
        "verify_rowsum_add" => Some(("embedding", true)),
        "cross_entropy_checked" => Some(("loss", true)),
        "sample_token_checked" => Some(("sampling", true)),
        "forward_checked" if owner_hint == Some("Embedding") => Some(("embedding", true)),
        "step_checked" | "step_batched_checked" if owner_hint == Some("AdamW") => {
            Some(("optimizer", true))
        }
        _ => None,
    }
}

/// Walk the op-path entries (descending through barriers — coverage must
/// see the guarded GEMMs inside them) and catalog every op call site.
pub fn coverage(g: &Graph) -> Coverage {
    let mut cov = Coverage {
        calls_total: g.calls_total,
        calls_resolved: g.calls_resolved,
        ..Default::default()
    };
    // Reachable sets per path kind, each with its own predecessors.
    let no_cuts = PathAllows::none();
    let mut preds: Vec<(&'static str, PredMap)> = Vec::new();
    for kind in ["forward", "decode", "train"] {
        let specs: Vec<(&str, &str)> = OP_PATH_ENTRIES
            .iter()
            .filter(|&&(_, _, k)| k == kind)
            .map(|&(o, n, _)| (o, n))
            .collect();
        let entries = resolve_entries(g, &specs);
        for &e in &entries {
            cov.entries.push((kind.to_string(), g.fns[e].qualified()));
        }
        preds.push((kind, bfs(g, &entries, "coverage", &no_cuts, |_| true)));
    }

    let mut seen: BTreeMap<(usize, u32, u32), usize> = BTreeMap::new();
    for (kind, pred) in &preds {
        for &fid in pred.keys() {
            let f = &g.fns[fid];
            let file = g.files[f.file].as_str();
            if file.starts_with("crates/bench/") || file.starts_with("crates/lint/") {
                continue;
            }
            let in_barrier = BARRIER_FILES.contains(&file);
            let in_kernel = file.starts_with("crates/tensor/");
            for &si in &f.calls {
                let site = &g.sites[si];
                let key = (site.file, site.line, site.col);
                if let Some(&op_idx) = seen.get(&key) {
                    if !cov.ops[op_idx].paths.contains(kind) {
                        cov.ops[op_idx].paths.push(kind);
                    }
                    continue;
                }
                // Classify the site.
                let owner_hint: Option<&str> = site
                    .targets
                    .first()
                    .and_then(|&t| g.fns[t].owner.as_deref());
                let entry: Option<(&'static str, bool)> = if site.is_method
                    && GUARDED_GEMM_METHODS.contains(&site.name.as_str())
                    && owner_hint == Some("GuardedSection")
                {
                    Some(("gemm", true))
                } else if !site.is_method && is_raw_gemm_entry(&site.name) {
                    // Raw kernel call: guarded iff issued from barrier
                    // code; kernel-internal calls are plumbing, not ops.
                    (!in_kernel).then_some(("gemm", in_barrier))
                } else if in_kernel {
                    // Calls issued from inside the kernel crate are SIMD /
                    // tiling plumbing (e.g. `f32x8::add` in the writeback),
                    // not path-level operators.
                    None
                } else {
                    catalog_op(&site.name, owner_hint)
                };
                if let Some((k, guarded)) = entry {
                    seen.insert(key, cov.ops.len());
                    cov.ops.push(CoverageOp {
                        kind: k,
                        name: site.name.clone(),
                        file: g.files[site.file].clone(),
                        line: site.line,
                        guarded,
                        paths: vec![kind],
                        via: render_path(g, pred, fid),
                    });
                }
            }
        }
    }
    cov.ops
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    cov
}
