//! # attn_lint
//!
//! A contract-enforcing static-analysis pass for this workspace. The
//! repo's correctness story rests on four invariants that regression
//! tests can only sample; this tool makes violating them a CI failure:
//!
//! 1. **Determinism** — bit-identical results at any worker count
//!    (fixed-order reduction): [`lints::NONDET_REDUCE`] plus the
//!    interprocedural [`reach::NONDET_REDUCE_REACH`].
//! 2. **Alloc-free steady state** — hot paths draw scratch from the
//!    workspace arena, never the global allocator:
//!    [`lints::HOT_PATH_ALLOC`] plus [`reach::HOT_PATH_ALLOC_REACH`].
//! 3. **Total ABFT coverage** — every model-layer GEMM flows through
//!    `GuardedSection`/`ProtectedLinear`: [`lints::UNGUARDED_GEMM`] plus
//!    [`reach::UNGUARDED_GEMM_REACH`].
//! 4. **No-panic serving** — nothing transitively reachable from the
//!    gateway/engine entry points may panic: [`reach::PANIC_REACH`]
//!    (plus [`lints::FLOAT_EQ`] for the sentinel-comparison hygiene the
//!    gates depend on).
//! 5. **Sound protection dataflow** — encoded operands reach a
//!    verify/exit point before escaping or feeding a nonlinearity
//!    ([`dataflow::ENCODED_TYPESTATE`]), every `unsafe` site carries a
//!    checked `// SAFETY:` justification ([`dataflow::UNSAFE_AUDIT`]),
//!    and `#[target_feature]` kernels are only callable through
//!    `is_x86_feature_detected!`-gated dispatch
//!    ([`reach::TARGET_FEATURE_REACH`]).
//!
//! Since PR 8 the tool is *interprocedural*: an item-level parser
//! ([`parse`]) over the hand-written lexer builds a workspace symbol
//! table, [`callgraph`] resolves a conservative call graph from it
//! (receiver-type hints where cheap, bounded fan-out where not), and
//! [`reach`] runs five reachability analyses whose findings carry the
//! shortest entry→violation call path. Since PR 10 it is also a
//! *dataflow* tool: [`dataflow`] abstract-interprets matrix values
//! through {Raw, Encoded, Verified, Stale} typestates per fn body, and
//! the whole workspace is lexed/parsed exactly once per run
//! ([`prepare_tree`]) and shared between `check` and `--coverage`.
//! The tool stays self-contained
//! (no external deps — this environment is vendored-only) and scans
//! every `crates/*/src` file plus, with a relaxed lint set, the root
//! `tests/` and `examples/` trees. Suppression is per-line and
//! justification-carrying:
//!
//! ```text
//! // attn-lint: allow(hot-path-alloc) — construction, not steady state
//! // attn-lint: allow-path(panic-reach) — model boundary: decode_step is total
//! ```
//!
//! The second form cuts *call-graph edges* leaving the targeted line
//! instead of silencing one sink, so a reviewed boundary is vouched for
//! once. Unknown lint names, missing justifications, and allows that
//! suppress nothing are themselves errors, so the suppression inventory
//! stays exact. Run it as:
//!
//! ```text
//! cargo run -p attn_lint --release -- check
//! cargo run -p attn_lint --release -- check --coverage
//! ```
//!
//! The second command also emits `BENCH_coverage.json`: every op on the
//! forward/decode/train paths with its guarded/unguarded status — the
//! tracked artifact behind ROADMAP item 3.

pub mod callgraph;
pub mod dataflow;
pub mod directives;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod reach;
pub mod report;
pub mod scope;

pub use lints::Profile;

use directives::Allow;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The eleven contract lints, in report order: four syntactic, two
/// dataflow, five interprocedural.
pub const LINT_NAMES: [&str; 11] = [
    lints::NONDET_REDUCE,
    lints::HOT_PATH_ALLOC,
    lints::UNGUARDED_GEMM,
    lints::FLOAT_EQ,
    dataflow::ENCODED_TYPESTATE,
    dataflow::UNSAFE_AUDIT,
    reach::PANIC_REACH,
    reach::HOT_PATH_ALLOC_REACH,
    reach::UNGUARDED_GEMM_REACH,
    reach::NONDET_REDUCE_REACH,
    reach::TARGET_FEATURE_REACH,
];

/// The reachability subset — the only lints `allow-path` may name.
pub const REACH_NAMES: [&str; 5] = [
    reach::PANIC_REACH,
    reach::HOT_PATH_ALLOC_REACH,
    reach::UNGUARDED_GEMM_REACH,
    reach::NONDET_REDUCE_REACH,
    reach::TARGET_FEATURE_REACH,
];

/// Meta diagnostics about the suppression inventory itself.
pub const META_NAMES: [&str; 4] = [
    "unknown-allow",
    "missing-justification",
    "unused-allow",
    "unused-safety",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (`crates/…/src/….rs`).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lint name (one of [`LINT_NAMES`] or [`META_NAMES`]).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(
        file: &str,
        line: u32,
        col: u32,
        lint: &'static str,
        message: String,
    ) -> Self {
        Self {
            file: file.to_string(),
            line,
            col,
            lint,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} · {} · {}",
            self.file, self.line, self.col, self.lint, self.message
        )
    }
}

/// One suppression honoured during a scan: where the directive sits and
/// which lint it silenced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Workspace-relative path of the directive.
    pub file: String,
    /// 1-based position of the directive comment.
    pub line: u32,
    pub col: u32,
    /// Lint name(s) it suppressed (comma-joined for allow-paths).
    pub lint: String,
}

/// Result of scanning a tree (or a set of sources, for tests).
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings that survived suppression, sorted by file/line/col.
    pub findings: Vec<Finding>,
    /// Justified allows (and allow-paths) that suppressed something.
    pub suppressions_used: usize,
    /// Every suppression honoured, sorted by (file, line, col, lint).
    pub suppressions: Vec<Suppression>,
    /// Wall time of the scan, in milliseconds.
    pub wall_ms: u128,
    /// Wall time of the shared lex/scope/directive/parse pass, in
    /// microseconds — the work `--coverage` reuses instead of redoing.
    pub prepare_us: u128,
    /// Microseconds saved by reusing the prepared workspace for
    /// `--coverage` (0 when coverage did not run).
    pub coverage_reuse_saved_us: u128,
    /// Per-pass wall time in microseconds, in run order (lints first,
    /// then the `callgraph` infrastructure entry; the shared prepare
    /// pass is [`Report::prepare_us`]).
    pub lint_us: Vec<(&'static str, u128)>,
    /// Call sites seen by the graph.
    pub calls_total: usize,
    /// Sites bound to a workspace fn or proven external.
    pub calls_resolved: usize,
    /// Sites the conservative resolver gave up on.
    pub calls_unresolved: usize,
    /// Non-test `unsafe` sites in Full-profile code.
    pub unsafe_sites: usize,
    /// Of those, sites carrying a checked `// SAFETY:` justification.
    pub unsafe_documented: usize,
    /// Serving entry points found in this tree, qualified.
    pub entry_points: Vec<String>,
}

impl Report {
    /// Findings counted per lint name (zero entries included, so the
    /// JSON trajectory is diffable across runs).
    pub fn counts(&self) -> Vec<(&'static str, usize)> {
        LINT_NAMES
            .iter()
            .chain(META_NAMES.iter())
            .map(|&name| {
                (
                    name,
                    self.findings.iter().filter(|f| f.lint == name).count(),
                )
            })
            .collect()
    }

    /// True when the tree honours every contract.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Fraction of call sites bound or proven external (1.0 when no
    /// calls were seen).
    pub fn resolution_rate(&self) -> f64 {
        if self.calls_total == 0 {
            1.0
        } else {
            self.calls_resolved as f64 / self.calls_total as f64
        }
    }

    /// Fraction of non-test `unsafe` sites carrying a checked
    /// `// SAFETY:` justification (1.0 when there are no sites).
    pub fn safety_coverage(&self) -> f64 {
        if self.unsafe_sites == 0 {
            1.0
        } else {
            self.unsafe_documented as f64 / self.unsafe_sites as f64
        }
    }

    /// Suppressions honoured per lint name (zero entries included).
    pub fn suppression_counts(&self) -> Vec<(&'static str, usize)> {
        LINT_NAMES
            .iter()
            .map(|&name| {
                (
                    name,
                    self.suppressions.iter().filter(|s| s.lint == name).count(),
                )
            })
            .collect()
    }
}

/// Lint profile by path: root `tests/` and `examples/` get the relaxed
/// set and stay out of the call graph; everything else is library code.
pub fn profile_for(rel_path: &str) -> Profile {
    if rel_path.starts_with("tests/") || rel_path.starts_with("examples/") {
        Profile::Relaxed
    } else {
        Profile::Full
    }
}

/// One file prepared for graph construction.
struct Prepared {
    rel: String,
    profile: Profile,
    toks: Vec<lexer::Tok>,
    ctx: scope::Context,
    dir: directives::Directives,
    parsed: Option<parse::ParsedFile>,
}

/// A lexed/scoped/parsed workspace: the shared artifact behind both
/// `check` and `--coverage`, built once per run.
pub struct PreparedTree {
    prepared: Vec<Prepared>,
    /// Wall time of the lex/scope/directive/parse pass, in microseconds.
    pub prepare_us: u128,
}

/// Lex, scope-analyze, directive-parse, and item-parse a set of
/// `(workspace-relative path, source)` pairs once.
pub fn prepare_sources(files: &[(String, String)]) -> PreparedTree {
    let started = Instant::now();
    let mut prepared: Vec<Prepared> = Vec::new();
    for (rel, src) in files {
        let toks = lexer::lex(src);
        let ctx = scope::analyze(&toks);
        let dir = directives::parse(rel, &toks, &ctx.code_lines);
        let profile = profile_for(rel);
        let parsed = (profile == Profile::Full).then(|| parse::parse_file(&toks, &ctx));
        prepared.push(Prepared {
            rel: rel.clone(),
            profile,
            toks,
            ctx,
            dir,
            parsed,
        });
    }
    PreparedTree {
        prepared,
        prepare_us: started.elapsed().as_micros(),
    }
}

/// Scan a prepared workspace: syntactic and dataflow lints per file,
/// then one shared call graph over the `Full`-profile files, then the
/// reachability lints, then suppression filtering and the meta findings.
pub fn scan_prepared(tree: &PreparedTree) -> Report {
    let started = Instant::now();
    let mut lint_us: Vec<(&'static str, u128)> = LINT_NAMES.iter().map(|&n| (n, 0u128)).collect();
    lint_us.push(("callgraph", 0));
    let bump = |v: &mut Vec<(&'static str, u128)>, name: &str, t0: Instant| {
        let us = t0.elapsed().as_micros();
        if let Some(e) = v.iter_mut().find(|e| e.0 == name) {
            e.1 += us;
        }
    };

    let prepared = &tree.prepared;
    let mut raw: Vec<Finding> = Vec::new();
    let mut unsafe_sites = 0usize;
    let mut unsafe_documented = 0usize;
    for p in prepared {
        let rel = p.rel.as_str();
        let (toks, ctx) = (&p.toks, &p.ctx);
        let t0 = Instant::now();
        lints::nondet_reduce(rel, toks, ctx, &mut raw);
        bump(&mut lint_us, lints::NONDET_REDUCE, t0);
        if p.profile == Profile::Full {
            if p.dir.hot_path {
                let t0 = Instant::now();
                lints::hot_path_alloc(rel, toks, ctx, &mut raw);
                bump(&mut lint_us, lints::HOT_PATH_ALLOC, t0);
            }
            if !lints::unguarded_gemm_whitelisted(rel) {
                let t0 = Instant::now();
                lints::unguarded_gemm(rel, toks, ctx, &mut raw);
                bump(&mut lint_us, lints::UNGUARDED_GEMM, t0);
            }
        }
        let t0 = Instant::now();
        lints::float_eq(rel, toks, ctx, &mut raw);
        bump(&mut lint_us, lints::FLOAT_EQ, t0);

        if let Some(parsed) = &p.parsed {
            if !dataflow::typestate_whitelisted(rel) {
                let t0 = Instant::now();
                dataflow::encoded_typestate(rel, toks, parsed, &mut raw);
                bump(&mut lint_us, dataflow::ENCODED_TYPESTATE, t0);
            }
            let t0 = Instant::now();
            let tally = dataflow::unsafe_audit(rel, toks, ctx, &p.dir, parsed, p.profile, &mut raw);
            bump(&mut lint_us, dataflow::UNSAFE_AUDIT, t0);
            unsafe_sites += tally.sites;
            unsafe_documented += tally.documented;
        }
    }

    // One shared call graph over the Full-profile files.
    let full: Vec<&Prepared> = prepared
        .iter()
        .filter(|p| p.profile == Profile::Full)
        .collect();
    let inputs: Vec<callgraph::FileInput<'_>> = full
        .iter()
        .filter_map(|p| {
            p.parsed.as_ref().map(|parsed| callgraph::FileInput {
                rel: &p.rel,
                toks: &p.toks,
                ctx: &p.ctx,
                parsed,
            })
        })
        .collect();
    let t0 = Instant::now();
    let graph = callgraph::build(&inputs);
    bump(&mut lint_us, "callgraph", t0);
    let hot: Vec<bool> = full.iter().map(|p| p.dir.hot_path).collect();
    let path_allows: Vec<(&str, &[Allow])> = prepared
        .iter()
        .map(|p| (p.rel.as_str(), p.dir.allow_paths.as_slice()))
        .collect();
    let cuts = reach::PathAllows::new(&graph.files, &path_allows);

    let t0 = Instant::now();
    reach::panic_reach(&graph, &cuts, &mut raw);
    bump(&mut lint_us, reach::PANIC_REACH, t0);
    let t0 = Instant::now();
    reach::hot_path_alloc_reach(&graph, &hot, &cuts, &mut raw);
    bump(&mut lint_us, reach::HOT_PATH_ALLOC_REACH, t0);
    let t0 = Instant::now();
    reach::unguarded_gemm_reach(&graph, &cuts, &mut raw);
    bump(&mut lint_us, reach::UNGUARDED_GEMM_REACH, t0);
    let t0 = Instant::now();
    reach::nondet_reduce_reach(&graph, &cuts, &mut raw);
    bump(&mut lint_us, reach::NONDET_REDUCE_REACH, t0);
    let t0 = Instant::now();
    reach::target_feature_reach(&graph, &cuts, &mut raw);
    bump(&mut lint_us, reach::TARGET_FEATURE_REACH, t0);

    // Suppression filtering against each finding's own file.
    let dirs: BTreeMap<&str, &directives::Directives> =
        prepared.iter().map(|p| (p.rel.as_str(), &p.dir)).collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let allow = dirs.get(f.file.as_str()).and_then(|d| {
            d.allows
                .iter()
                .find(|a| a.target_line == f.line && a.names.iter().any(|n| n == f.lint))
        });
        match allow {
            Some(a) => {
                a.used.set(true);
                suppressed += 1;
                suppressions.push(Suppression {
                    file: f.file.clone(),
                    line: a.line,
                    col: a.col,
                    lint: f.lint.to_string(),
                });
            }
            None => findings.push(f),
        }
    }
    // Directive errors, unused allows, and unused SAFETY comments are
    // findings too — the suppression inventory must stay exact.
    for p in prepared {
        findings.extend(p.dir.errors.iter().cloned());
        for a in &p.dir.allows {
            if !a.used.get() {
                findings.push(Finding::new(
                    &p.rel,
                    a.line,
                    a.col,
                    "unused-allow",
                    format!(
                        "allow({}) suppresses nothing on line {}; remove it",
                        a.names.join(", "),
                        a.target_line
                    ),
                ));
            }
        }
        for a in &p.dir.allow_paths {
            if a.used.get() {
                suppressed += 1;
                suppressions.push(Suppression {
                    file: p.rel.clone(),
                    line: a.line,
                    col: a.col,
                    lint: a.names.join(","),
                });
            } else {
                findings.push(Finding::new(
                    &p.rel,
                    a.line,
                    a.col,
                    "unused-allow",
                    format!(
                        "allow-path({}) cuts no call edge on line {}; remove it",
                        a.names.join(", "),
                        a.target_line
                    ),
                ));
            }
        }
        if p.profile == Profile::Full {
            for s in &p.dir.safeties {
                if !s.used.get() {
                    findings.push(Finding::new(
                        &p.rel,
                        s.line,
                        s.col,
                        "unused-safety",
                        format!(
                            "`// SAFETY:` on line {} documents no unsafe site; move it \
                             directly above (or onto) the `unsafe` line, after any \
                             attributes",
                            s.line
                        ),
                    ));
                }
            }
        }
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    suppressions
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.lint).cmp(&(&b.file, b.line, b.col, &b.lint)));

    Report {
        files_scanned: prepared.len(),
        findings,
        suppressions_used: suppressed,
        suppressions,
        wall_ms: started.elapsed().as_millis(),
        prepare_us: tree.prepare_us,
        coverage_reuse_saved_us: 0,
        lint_us,
        calls_total: graph.calls_total,
        calls_resolved: graph.calls_resolved,
        calls_unresolved: graph.calls_unresolved,
        unsafe_sites,
        unsafe_documented,
        entry_points: reach::entry_points(&graph),
    }
}

/// Prepare and scan in one call (tests and single-shot callers).
pub fn scan_sources(files: &[(String, String)]) -> Report {
    scan_prepared(&prepare_sources(files))
}

/// Scan one source file (given its workspace-relative path, which drives
/// the per-crate lint scoping) and return surviving findings plus the
/// number of suppressions honoured. Single-file convenience over
/// [`scan_sources`] — the call graph is built from this file alone.
pub fn scan_source(rel_path: &str, src: &str) -> (Vec<Finding>, usize) {
    let report = scan_sources(&[(rel_path.to_string(), src.to_string())]);
    (report.findings, report.suppressions_used)
}

/// Collect the scan set: every `crates/*/src/**/*.rs` (Full profile)
/// plus root `tests/*.rs` and `examples/*.rs` (Relaxed profile).
fn collect_tree(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    for flat in ["tests", "examples"] {
        let dir = root.join(flat);
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        entries.sort();
        files.extend(entries);
    }
    files.sort();

    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        out.push((rel, src));
    }
    Ok(out)
}

/// Prepare the workspace tree under `root` once, for [`scan_prepared`]
/// and [`run_coverage_prepared`] to share.
pub fn prepare_tree(root: &Path) -> std::io::Result<PreparedTree> {
    Ok(prepare_sources(&collect_tree(root)?))
}

/// Scan the workspace tree under `root`.
pub fn run_check(root: &Path) -> std::io::Result<Report> {
    Ok(scan_prepared(&prepare_tree(root)?))
}

/// Build the call graph from an already-prepared workspace and walk the
/// forward/decode/train entry points, cataloguing every op with its
/// protection status.
pub fn run_coverage_prepared(tree: &PreparedTree) -> reach::Coverage {
    let inputs: Vec<callgraph::FileInput<'_>> = tree
        .prepared
        .iter()
        .filter(|p| p.profile == Profile::Full)
        .filter_map(|p| {
            p.parsed.as_ref().map(|parsed| callgraph::FileInput {
                rel: &p.rel,
                toks: &p.toks,
                ctx: &p.ctx,
                parsed,
            })
        })
        .collect();
    let graph = callgraph::build(&inputs);
    reach::coverage(&graph)
}

/// Prepare-and-walk convenience over [`run_coverage_prepared`].
pub fn run_coverage(root: &Path) -> std::io::Result<reach::Coverage> {
    Ok(run_coverage_prepared(&prepare_tree(root)?))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
