//! # attn_lint
//!
//! A contract-enforcing static-analysis pass for this workspace. The
//! repo's correctness story rests on four invariants that regression
//! tests can only sample; this tool makes violating them a CI failure:
//!
//! 1. **Determinism** — bit-identical results at any worker count
//!    (fixed-order reduction): [`lints::NONDET_REDUCE`].
//! 2. **Alloc-free steady state** — hot paths draw scratch from the
//!    workspace arena, never the global allocator:
//!    [`lints::HOT_PATH_ALLOC`].
//! 3. **Total ABFT coverage** — every model-layer GEMM flows through
//!    `GuardedSection`/`ProtectedLinear`: [`lints::UNGUARDED_GEMM`].
//! 4. **No-panic serving** — the gateway sheds load with typed errors,
//!    it never dies: [`lints::PANIC_IN_SERVE`] (plus [`lints::FLOAT_EQ`]
//!    for the sentinel-comparison hygiene the gates depend on).
//!
//! The tool is self-contained (hand-written lexer, no external deps —
//! this environment is vendored-only) and scans every `crates/*/src`
//! file. Suppression is per-line and justification-carrying:
//!
//! ```text
//! // attn-lint: allow(hot-path-alloc) — construction, not steady state
//! ```
//!
//! Unknown lint names, missing justifications, and allows that suppress
//! nothing are themselves errors, so the suppression inventory stays
//! exact. Run it as:
//!
//! ```text
//! cargo run -p attn_lint --release -- check
//! ```

pub mod directives;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scope;

use std::fmt;
use std::path::{Path, PathBuf};

/// The five contract lints, in report order.
pub const LINT_NAMES: [&str; 5] = [
    lints::NONDET_REDUCE,
    lints::HOT_PATH_ALLOC,
    lints::UNGUARDED_GEMM,
    lints::PANIC_IN_SERVE,
    lints::FLOAT_EQ,
];

/// Meta diagnostics about the suppression inventory itself.
pub const META_NAMES: [&str; 3] = ["unknown-allow", "missing-justification", "unused-allow"];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (`crates/…/src/….rs`).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lint name (one of [`LINT_NAMES`] or [`META_NAMES`]).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(
        file: &str,
        line: u32,
        col: u32,
        lint: &'static str,
        message: String,
    ) -> Self {
        Self {
            file: file.to_string(),
            line,
            col,
            lint,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} · {} · {}",
            self.file, self.line, self.col, self.lint, self.message
        )
    }
}

/// Result of scanning a tree (or a single source, for tests).
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings that survived suppression, sorted by file/line/col.
    pub findings: Vec<Finding>,
    /// Justified allows that suppressed at least one finding.
    pub suppressions_used: usize,
    /// Wall time of the scan, in milliseconds.
    pub wall_ms: u128,
}

impl Report {
    /// Findings counted per lint name (zero entries included, so the
    /// JSON trajectory is diffable across runs).
    pub fn counts(&self) -> Vec<(&'static str, usize)> {
        LINT_NAMES
            .iter()
            .chain(META_NAMES.iter())
            .map(|&name| {
                (
                    name,
                    self.findings.iter().filter(|f| f.lint == name).count(),
                )
            })
            .collect()
    }

    /// True when the tree honours every contract.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scan one source file (given its workspace-relative path, which drives
/// the per-crate lint scoping) and return surviving findings plus the
/// number of suppressions honoured.
pub fn scan_source(rel_path: &str, src: &str) -> (Vec<Finding>, usize) {
    let toks = lexer::lex(src);
    let ctx = scope::analyze(&toks);
    let dir = directives::parse(rel_path, &toks, &ctx.code_lines);
    let raw = lints::run(rel_path, &toks, &ctx, dir.hot_path);

    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let allow = dir
            .allows
            .iter()
            .find(|a| a.target_line == f.line && a.names.iter().any(|n| n == f.lint));
        match allow {
            Some(a) => {
                a.used.set(true);
                suppressed += 1;
            }
            None => findings.push(f),
        }
    }
    // Directive errors and unused allows are findings too — the
    // suppression inventory must stay exact.
    findings.extend(dir.errors);
    for a in &dir.allows {
        if !a.used.get() {
            findings.push(Finding::new(
                rel_path,
                a.line,
                a.col,
                "unused-allow",
                format!(
                    "allow({}) suppresses nothing on line {}; remove it",
                    a.names.join(", "),
                    a.target_line
                ),
            ));
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
    (findings, suppressed)
}

/// Walk `root/crates/*/src` and scan every `.rs` file.
pub fn run_check(root: &Path) -> std::io::Result<Report> {
    let started = std::time::Instant::now();
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let (findings, suppressed) = scan_source(&rel, &src);
        report.files_scanned += 1;
        report.suppressions_used += suppressed;
        report.findings.extend(findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    report.wall_ms = started.elapsed().as_millis();
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
