//! The contract gate: the workspace's own tree must scan clean.
//!
//! This is what turns the lint from a tool into an invariant — `cargo
//! test` (tier 1) fails the moment anyone reintroduces a nondeterministic
//! reduction, a hot-path allocation, an unguarded GEMM, a panic construct
//! reachable from a serving entry, or a raw float compare without a
//! justified allow (or allow-path).

#[test]
fn the_workspace_tree_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = attn_lint::run_check(&root).expect("workspace scan");
    assert!(
        report.files_scanned >= 100,
        "scan walked only {} files — source discovery is broken",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "contract violations in the tree:\n{}",
        attn_lint::report::render_text(&report)
    );
    assert!(
        report.suppressions_used > 0,
        "the tree carries justified allows; zero honoured means directive parsing broke"
    );
    assert!(
        report.resolution_rate() >= 0.90,
        "call resolution collapsed to {:.3} ({} of {} calls) — the reach \
         lints are flying blind",
        report.resolution_rate(),
        report.calls_resolved,
        report.calls_total
    );
    assert!(
        !report.entry_points.is_empty(),
        "no serving entries found — panic-reach has nothing to anchor on"
    );
}
