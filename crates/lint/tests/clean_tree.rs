//! The contract gate: the workspace's own tree must scan clean.
//!
//! This is what turns the lint from a tool into an invariant — `cargo
//! test` (tier 1) fails the moment anyone reintroduces a nondeterministic
//! reduction, a hot-path allocation, an unguarded GEMM, a panic construct
//! reachable from a serving entry, or a raw float compare without a
//! justified allow (or allow-path).

#[test]
fn the_workspace_tree_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = attn_lint::run_check(&root).expect("workspace scan");
    assert!(
        report.files_scanned >= 100,
        "scan walked only {} files — source discovery is broken",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "contract violations in the tree:\n{}",
        attn_lint::report::render_text(&report)
    );
    assert!(
        report.suppressions_used > 0,
        "the tree carries justified allows; zero honoured means directive parsing broke"
    );
    assert!(
        report.resolution_rate() >= 0.90,
        "call resolution collapsed to {:.3} ({} of {} calls) — the reach \
         lints are flying blind",
        report.resolution_rate(),
        report.calls_resolved,
        report.calls_total
    );
    assert!(
        !report.entry_points.is_empty(),
        "no serving entries found — panic-reach has nothing to anchor on"
    );
    // PR-10 floors, explicit even though `is_clean()` implies the zero
    // counts: the three dataflow/dispatch lints must hold tree-wide, and
    // every non-test unsafe site must carry a checked justification.
    for lint in ["encoded-typestate", "unsafe-audit", "target-feature-reach"] {
        let n = report
            .counts()
            .iter()
            .find(|(name, _)| *name == lint)
            .map_or(0, |(_, n)| *n);
        assert_eq!(n, 0, "FLOOR: {lint} findings in the tree");
    }
    assert!(
        report.unsafe_sites > 0,
        "the GEMM kernel carries unsafe sites; zero means the audit went blind"
    );
    assert_eq!(
        report.safety_coverage(),
        1.0,
        "FLOOR: {}/{} unsafe sites documented",
        report.unsafe_documented,
        report.unsafe_sites
    );
}
