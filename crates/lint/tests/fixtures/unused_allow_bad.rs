//! An allow that suppresses nothing is itself a finding — suppression
//! debt cannot accumulate silently.

pub fn clean(x: u32) -> u32 {
    // attn-lint: allow(float-eq) — stale justification kept after the fix
    x + 1
}
