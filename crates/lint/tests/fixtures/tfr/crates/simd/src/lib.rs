//! Mini-tree fixture for `target-feature-reach`: the detected-gate
//! dispatcher is the clean path; `sum_hasty` calls the AVX2 kernel with
//! no gate and must be the tree's single finding.

#[target_feature(enable = "avx2")]
// SAFETY: reached only through a detected-feature gate (or the seeded
// hasty caller below, which exists to trip the reach lint).
pub unsafe fn sum_avx2(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &x in xs {
        acc += x;
    }
    acc
}

pub fn sum(xs: &[f32]) -> f32 {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: the detected gate above proves AVX2 is present.
        unsafe { sum_avx2(xs) }
    } else {
        sum_scalar(xs)
    }
}

pub fn sum_hasty(xs: &[f32]) -> f32 {
    // SAFETY: assumes AVX2 unconditionally — this is the seeded bug.
    unsafe { sum_avx2(xs) }
}

fn sum_scalar(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &x in xs {
        acc += x;
    }
    acc
}
