//! Seeded violations for the `nondet-reduce` lint (three, one per
//! detection: ordered reducer, float accumulation, hash-order leak).

use rayon::prelude::*;
use std::collections::HashMap;

pub fn par_sum(data: &[f32]) -> f32 {
    data.par_iter().map(|x| x * 2.0).sum::<f32>()
}

pub fn par_accumulate(data: &mut [f32], scale: f32) {
    let mut hits = 0usize;
    data.par_iter_mut().for_each(|x| {
        *x += scale * 0.5;
    });
    // Integer counters are exact and associative; outside the chain
    // anyway — must NOT flag.
    hits += 1;
    let _ = hits;
}

pub fn hash_order_leak(weights: &HashMap<usize, f32>) -> f32 {
    let mut total = 0.0f32;
    for (_k, v) in weights.iter() {
        total += *v * 2.0;
    }
    total
}
