//! Lexer torture: allocation keywords, directives, and float compares
//! appear only inside strings, raw strings, chars, and nested comments —
//! nothing here may produce a finding even with the alloc lint armed.
//!
//! attn-lint: hot-path

/* Outer comment /* nested vec![boom] */ still commented: data.unwrap() */

pub fn tricky<'a>(src: &'a str) -> &'a str {
    let quoted = "vec![1.0, 2.0] and x == 0.0 inside a plain string";
    let raw = r#"// attn-lint: allow(float-eq) — strings are not comments; Box::new(0) "#;
    let fence = r##"nested r#"hash"# fences with .to_vec() payload"##;
    let ch = 'a';
    let not_char: &'a str = src;
    let exp = 1.0e3f32.max(2.0);
    if quoted.len() > raw.len().min(fence.len()) && exp.is_finite() {
        src
    } else {
        not_char.trim_start_matches(ch)
    }
}
