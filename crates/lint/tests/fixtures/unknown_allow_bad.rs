//! Unknown lint names and justification-free allows are findings, and a
//! justification-free allow does not suppress its target.

pub fn sloppy(x: f32) -> bool {
    // attn-lint: allow(no-such-lint) — the name is wrong
    let a = x == 0.0; // attn-lint: allow(float-eq)
    a
}
