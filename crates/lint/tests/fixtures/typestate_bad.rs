//! Seeded typestate violations (3): an encoded value escaping without
//! verification, a raw mutation of an encoded operand, and an encoded
//! operand fed to a nonlinearity. The verified fn at the bottom is the
//! negative control and must stay clean.

pub fn leaks_encoded(sec: &mut GuardedSection, q: &Tensor, kt: &Tensor) -> Tensor {
    let leaked = sec.gemm_encode_cols(q, kt);
    leaked
}

pub fn mutates_encoded(sec: &mut GuardedSection, q: &Tensor, kt: &Tensor) {
    let mut scores = sec.gemm_encode_cols(q, kt);
    scores.set(0, 0, 9.0);
}

pub fn feeds_nonlinearity(sec: &mut GuardedSection, q: &Tensor, kt: &Tensor) {
    let scores = sec.gemm_encode_cols(q, kt);
    softmax_rows(&scores);
}

pub fn verified_escape_is_clean(sec: &mut GuardedSection, q: &Tensor, kt: &Tensor) -> Tensor {
    let scores = sec.gemm_encode_cols(q, kt);
    sec.detect(&scores);
    scores
}

pub fn mutation_before_encode_is_clean(sec: &mut GuardedSection, q: &mut Tensor, kt: &Tensor) {
    q.set(0, 0, 1.0);
    let scores = sec.gemm_encode_cols(q, kt);
    sec.exit_reencode_cols(&scores);
}
