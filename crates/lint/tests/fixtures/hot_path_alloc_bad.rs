//! Seeded violations for the `hot-path-alloc` lint (four: `vec!`,
//! `Vec::with_capacity`, `Box::new`, `.to_vec()`).
//!
//! attn-lint: hot-path

pub fn leaky(xs: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; xs.len()];
    let staging: Vec<f32> = Vec::with_capacity(xs.len());
    let boxed = Box::new(xs.len());
    let copy = xs.to_vec();
    out.truncate(staging.capacity().min(*boxed).min(copy.len()));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate() {
        let v = vec![1.0f32];
        assert_eq!(v.len(), 1);
    }
}
