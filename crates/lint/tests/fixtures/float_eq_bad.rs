//! Seeded violations for the `float-eq` lint (three raw comparisons;
//! test-region exact comparisons must NOT flag).

pub fn raw_compares(x: f32, y: f64) -> bool {
    let a = x == 0.0;
    let b = 0.5 != x;
    let c = y == -1.0;
    a && b && c
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_compares_are_fine_in_tests() {
        assert!(super::raw_compares(0.0, -1.0));
        let z = 0.0f32;
        assert!(z == 0.0);
    }
}
