//! Justified allows fully suppress their findings: one trailing form,
//! one standalone-above form. Scans clean with two suppressions honoured.
//!
//! attn-lint: hot-path

pub fn gate_is_off(f: f32) -> bool {
    f == 0.0 // attn-lint: allow(float-eq) — 0.0 is the exact "never check" sentinel
}

pub fn warmup(n: usize) -> Vec<f32> {
    // attn-lint: allow(hot-path-alloc) — one-time construction, not steady state
    vec![0.0f32; n]
}
