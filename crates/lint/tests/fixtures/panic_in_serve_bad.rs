//! Seeded violations for the `panic-in-serve` lint (four: indexing,
//! `.unwrap()`, `.expect()`, `panic!`). Assert-macro arguments and
//! `vec![…]` must NOT flag.

pub fn brittle(queue: &[usize], head: Option<usize>) -> usize {
    debug_assert!(queue[0] <= queue[queue.len() - 1], "sorted");
    let first = queue[0];
    let h = head.unwrap();
    let h2 = head.expect("must be set");
    if first > h {
        panic!("queue ahead of head");
    }
    let safe = vec![first, h, h2];
    safe.len()
}
