//! Seeded unsafe-audit violations (4): an undocumented `unsafe impl`,
//! an undocumented `unsafe fn`, an undocumented `unsafe` block, and a
//! documented `from_raw_parts_mut` whose length is never tied to an
//! asserted bound. The documented/asserted/test sites below them are
//! the negative controls.

pub struct Cursor(*mut f32);

unsafe impl Send for Cursor {}

pub unsafe fn poke(p: *mut f32) {
    *p = 1.0;
}

pub fn reconstruct_loose(ptr: *mut f32, n: usize) -> f32 {
    // SAFETY: caller promises `n` live floats (but nothing checks it).
    let s = unsafe { std::slice::from_raw_parts_mut(ptr, n) };
    s[0]
}

pub fn undocumented_block(p: *mut f32) {
    unsafe {
        *p = 2.0;
    }
}

pub fn reconstruct_checked(ptr: *mut f32, n: usize, cap: usize) -> f32 {
    assert!(n <= cap, "checkout bound");
    // SAFETY: `n` is asserted within the checked-out capacity above.
    let s = unsafe { std::slice::from_raw_parts_mut(ptr, n) };
    s[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let mut x = 0.0f32;
        unsafe { super::poke(&mut x) };
    }
}
