//! Trait-object fixture: a `dyn Backend` call must resolve
//! conservatively to EVERY impl of the method, so the panicking GPU
//! variant is reachable even if runtime wiring only ever uses the CPU.

pub trait Backend {
    fn exec(&self, n: usize) -> usize;
}

pub struct CpuBackend;

impl Backend for CpuBackend {
    fn exec(&self, n: usize) -> usize {
        n.saturating_add(1)
    }
}

pub struct GpuBackend;

impl Backend for GpuBackend {
    fn exec(&self, n: usize) -> usize {
        n.checked_mul(2).expect("gpu slot overflow")
    }
}
