//! Shadowing and test-caller fixtures: a method and a free fn share the
//! name `head`; only the free fn panics. A brittle helper is called
//! solely from `#[cfg(test)]` code and must never flag.

pub struct Queue {
    items: Vec<usize>,
}

impl Queue {
    pub fn new(items: &[usize]) -> Self {
        Queue {
            items: items.to_vec(),
        }
    }

    /// Method `head`: total — returns `None` on empty.
    pub fn head(&self) -> Option<usize> {
        self.items.first().copied()
    }
}

/// Free fn shadow of the method name — panics on empty input.
pub fn head(items: &[usize]) -> usize {
    items[0]
}

/// Reached only from the test module below: excluded from reachability.
pub fn test_only_brittle(x: Option<usize>) -> usize {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exercises_the_brittle_helper() {
        assert_eq!(super::test_only_brittle(Some(3)), 3);
    }
}
