//! The serving entry that wires the fixture workspace together.
//! `Gateway::admit` reaches: the safe `Queue::head` method (exact
//! receiver-type resolution), the panicking free fn `head` (free-call
//! resolution), and both `Backend::exec` impls (conservative trait-object
//! fan-out).

pub struct Gateway {
    pub admitted: usize,
}

impl Gateway {
    pub fn admit(&mut self, q: &Queue, items: &[usize], backend: &dyn Backend) -> usize {
        let safe = q.head().unwrap_or(0);
        let risky = head(items);
        self.admitted += 1;
        backend.exec(safe + risky)
    }
}
