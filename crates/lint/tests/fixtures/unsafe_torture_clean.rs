//! Lexer/directive torture for the PR-10 lints: every marker below is
//! inert — inside strings, raw strings, chars, or block comments — so
//! the whole file must scan with zero findings and zero suppressions.

pub fn torture() -> usize {
    let a = "unsafe { std::slice::from_raw_parts_mut(p, n) } // not code";
    let b = "// SAFETY: not a directive inside a string";
    let c = r##"let s = sec.gemm_encode_cols(&q, &k); r#" nested fence "#"##;
    /* block comment: // SAFETY: never registers here, and `unsafe fn`
       /* nested: attn-lint: allow(float-eq) — never parsed */
       is still inside the outer comment, as is softmax_rows(&scores) */
    let d = 'u'; // a char literal, not the start of `unsafe`
    let tick: &'static str = "lifetime tick must not eat this string";
    let fence = "terminators like */ and \" stay inside the literal";
    a.len() + b.len() + c.len() + d.len_utf8() + tick.len() + fence.len()
}
