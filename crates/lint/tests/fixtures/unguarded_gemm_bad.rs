//! Seeded violations for the `unguarded-gemm` lint (two raw calls; the
//! method form and the test-region call must NOT flag).

use attn_tensor::gemm::{gemm_encode_cols_into, matmul_into};

pub fn sneaky_projection(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    matmul_into(a, b, c.rb_mut());
    gemm_encode_cols_into(a, b, c);
}

pub fn guarded_is_fine(section: &mut GuardedSection, x: &Matrix, w: &Matrix) -> CheckedMatrix {
    // Method call on a GuardedSection IS the guarded API; the encoded
    // value is verified on its way out, so typestate stays clean too.
    let y = section.gemm_encode_cols(x, w);
    section.exit_cols(&y)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_call_raw_kernels() {
        matmul_into(a(), b(), c());
    }
}
