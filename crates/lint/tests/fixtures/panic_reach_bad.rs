//! Seeded violations for the `panic-reach` lint: a serving entry
//! (`Gateway::admit`) calls a helper carrying four panic-capable
//! constructs (indexing, `.unwrap()`, `.expect()`, `panic!`).
//! Assert-macro arguments and `vec![…]` must NOT flag, and the same
//! helper is clean when no serving entry can reach it.

pub struct Gateway;

impl Gateway {
    pub fn admit(&self, queue: &[usize], head: Option<usize>) -> usize {
        brittle(queue, head)
    }
}

fn brittle(queue: &[usize], head: Option<usize>) -> usize {
    debug_assert!(queue[0] <= queue[queue.len() - 1], "sorted");
    let first = queue[0];
    let h = head.unwrap();
    let h2 = head.expect("must be set");
    if first > h {
        panic!("queue ahead of head");
    }
    let safe = vec![first, h, h2];
    safe.len()
}
