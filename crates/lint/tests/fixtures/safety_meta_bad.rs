//! Seeded SAFETY-inventory violations (3): an empty justification (which
//! also leaves its unsafe block undocumented) and a stranded `// SAFETY:`
//! that documents no unsafe site.

pub fn empty_justification(p: *mut f32) {
    // SAFETY:
    unsafe { *p = 1.0 };
}

// SAFETY: stranded — nothing below is unsafe.
pub fn stranded() -> i32 {
    3
}
