//! Fixture-driven behaviour tests: every bad fixture must trip exactly
//! the lints it was seeded with, and the tricky/suppressed fixtures must
//! scan clean. The fixtures live as inert `.rs` files under
//! `tests/fixtures/` (cargo does not compile test subdirectories) so the
//! snippets read like the real code they imitate.

use attn_lint::scan_source;

/// Scan a fixture under the given workspace-relative path (the path
/// drives per-crate lint scoping) and return the lint names found.
fn lints(rel: &str, src: &str) -> Vec<&'static str> {
    let (findings, _) = scan_source(rel, src);
    findings.iter().map(|f| f.lint).collect()
}

fn count(names: &[&str], lint: &str) -> usize {
    names.iter().filter(|&&n| n == lint).count()
}

#[test]
fn nondet_reduce_catches_all_three_detections() {
    let src = include_str!("fixtures/nondet_reduce_bad.rs");
    let names = lints("crates/core/src/fixture.rs", src);
    assert_eq!(
        count(&names, "nondet-reduce"),
        3,
        "ordered reducer + float accumulation + hash-order leak: {names:?}"
    );
    assert_eq!(names.len(), 3, "nothing else may flag: {names:?}");
    // The integer counter (`hits += 1`) must be on none of the findings.
    let (findings, _) = scan_source("crates/core/src/fixture.rs", src);
    assert!(
        findings.iter().all(|f| !src
            .lines()
            .nth(f.line as usize - 1)
            .unwrap_or("")
            .contains("hits")),
        "integer counters are exempt: {findings:?}"
    );
}

#[test]
fn hot_path_alloc_catches_every_alloc_form_outside_tests() {
    let src = include_str!("fixtures/hot_path_alloc_bad.rs");
    let names = lints("crates/tensor/src/fixture.rs", src);
    assert_eq!(
        count(&names, "hot-path-alloc"),
        4,
        "vec! + with_capacity + Box::new + to_vec: {names:?}"
    );
    assert_eq!(
        names.len(),
        4,
        "the test-region vec! must not flag: {names:?}"
    );
}

#[test]
fn hot_path_alloc_is_opt_in_via_module_header() {
    // The same file WITHOUT its `//! attn-lint: hot-path` header is clean.
    let src = include_str!("fixtures/hot_path_alloc_bad.rs")
        .replace("//! attn-lint: hot-path", "//! (cold module)");
    let names = lints("crates/tensor/src/fixture.rs", &src);
    assert!(names.is_empty(), "no header, no alloc lint: {names:?}");
}

#[test]
fn unguarded_gemm_catches_free_calls_not_methods_or_tests() {
    let src = include_str!("fixtures/unguarded_gemm_bad.rs");
    let names = lints("crates/model/src/fixture.rs", src);
    assert_eq!(
        count(&names, "unguarded-gemm"),
        2,
        "two raw free-function calls: {names:?}"
    );
    assert_eq!(
        names.len(),
        2,
        "method form and test call must not flag: {names:?}"
    );
}

#[test]
fn unguarded_gemm_respects_the_kernel_crate_whitelist() {
    let src = include_str!("fixtures/unguarded_gemm_bad.rs");
    let names = lints("crates/tensor/src/fixture.rs", src);
    assert_eq!(count(&names, "unguarded-gemm"), 0, "{names:?}");
}

#[test]
fn panic_reach_catches_the_panic_surface_behind_an_entry() {
    let src = include_str!("fixtures/panic_reach_bad.rs");
    let names = lints("crates/serve/src/fixture.rs", src);
    assert_eq!(
        count(&names, "panic-reach"),
        4,
        "indexing + unwrap + expect + panic!: {names:?}"
    );
    assert_eq!(
        names.len(),
        4,
        "assert-macro args and vec![…] must not flag: {names:?}"
    );
    // Every finding renders the entry → sink call path.
    let (findings, _) = scan_source("crates/serve/src/fixture.rs", src);
    assert!(
        findings
            .iter()
            .all(|f| f.to_string().contains("Gateway::admit → brittle")),
        "path traces name the route: {findings:?}"
    );
}

#[test]
fn panic_reach_needs_a_serving_entry_to_fire() {
    // Detach the entry: rename the method so no serving entry exists.
    let src = include_str!("fixtures/panic_reach_bad.rs").replace("fn admit", "fn review");
    let names = lints("crates/serve/src/fixture.rs", &src);
    assert_eq!(count(&names, "panic-reach"), 0, "{names:?}");
}

#[test]
fn float_eq_catches_raw_literal_compares_outside_tests() {
    let src = include_str!("fixtures/float_eq_bad.rs");
    let names = lints("crates/model/src/fixture.rs", src);
    assert_eq!(
        count(&names, "float-eq"),
        3,
        "==, reversed !=, and negative literal: {names:?}"
    );
    assert_eq!(
        names.len(),
        3,
        "test-region compares must not flag: {names:?}"
    );
}

#[test]
fn tricky_lexing_produces_no_findings() {
    let src = include_str!("fixtures/tricky_lexing_clean.rs");
    let (findings, suppressed) = scan_source("crates/core/src/fixture.rs", src);
    assert!(
        findings.is_empty(),
        "strings/chars/comments must be inert: {findings:?}"
    );
    assert_eq!(suppressed, 0, "nothing to suppress");
}

#[test]
fn justified_allows_suppress_and_are_counted() {
    let src = include_str!("fixtures/suppressed_clean.rs");
    let (findings, suppressed) = scan_source("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 2, "trailing + standalone-above allow");
}

#[test]
fn unused_allow_is_a_finding() {
    let src = include_str!("fixtures/unused_allow_bad.rs");
    let names = lints("crates/core/src/fixture.rs", src);
    assert_eq!(names, vec!["unused-allow"]);
}

#[test]
fn unknown_and_unjustified_allows_do_not_suppress() {
    let src = include_str!("fixtures/unknown_allow_bad.rs");
    let (findings, suppressed) = scan_source("crates/core/src/fixture.rs", src);
    let mut names: Vec<_> = findings.iter().map(|f| f.lint).collect();
    names.sort_unstable();
    assert_eq!(
        names,
        vec!["float-eq", "missing-justification", "unknown-allow"],
        "the bad allows are findings AND the target still flags"
    );
    assert_eq!(suppressed, 0);
}

#[test]
fn encoded_typestate_catches_escape_mutation_and_nonlinearity() {
    let src = include_str!("fixtures/typestate_bad.rs");
    let names = lints("crates/model/src/fixture.rs", src);
    assert_eq!(
        count(&names, "encoded-typestate"),
        3,
        "escape + raw mutation + nonlinearity: {names:?}"
    );
    assert_eq!(
        names.len(),
        3,
        "the verified escape and pre-encode mutation must stay clean: {names:?}"
    );
}

#[test]
fn encoded_typestate_respects_the_kernel_crate_whitelist() {
    let src = include_str!("fixtures/typestate_bad.rs");
    let names = lints("crates/tensor/src/fixture.rs", src);
    assert_eq!(count(&names, "encoded-typestate"), 0, "{names:?}");
}

#[test]
fn encoded_typestate_allows_suppress_with_justification() {
    let src = include_str!("fixtures/typestate_bad.rs").replace(
        "    let leaked = sec.gemm_encode_cols(q, kt);",
        "    // attn-lint: allow(encoded-typestate) — drained by the caller\n    \
         let leaked = sec.gemm_encode_cols(q, kt);",
    );
    let (findings, suppressed) = scan_source("crates/model/src/fixture.rs", &src);
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.lint == "encoded-typestate")
            .count(),
        2,
        "only the vouched escape is silenced: {findings:?}"
    );
    assert_eq!(suppressed, 1);
}

#[test]
fn unsafe_audit_catches_undocumented_sites_and_loose_lengths() {
    let src = include_str!("fixtures/unsafe_audit_bad.rs");
    let names = lints("crates/tensor/src/fixture.rs", src);
    assert_eq!(
        count(&names, "unsafe-audit"),
        4,
        "impl + fn + block + raw-parts length: {names:?}"
    );
    assert_eq!(
        names.len(),
        4,
        "documented, asserted, and test-region sites must not flag: {names:?}"
    );
}

#[test]
fn safety_meta_errors_keep_the_inventory_exact() {
    let src = include_str!("fixtures/safety_meta_bad.rs");
    let mut names = lints("crates/core/src/fixture.rs", src);
    names.sort_unstable();
    assert_eq!(
        names,
        vec!["missing-justification", "unsafe-audit", "unused-safety"],
        "empty justification leaves its block undocumented, stranded SAFETY flags"
    );
}

#[test]
fn unsafe_and_typestate_markers_are_inert_in_strings_and_comments() {
    let src = include_str!("fixtures/unsafe_torture_clean.rs");
    let (findings, suppressed) = scan_source("crates/model/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 0, "the commented-out allow must never parse");
}

#[test]
fn report_ordering_is_deterministic_across_input_order() {
    let src = "pub fn chk(x: f32, y: f32) -> bool {\n    x == 0.5 || y != 1.5\n}\n";
    let zeta = ("crates/zeta/src/a.rs".to_string(), src.to_string());
    let alpha = ("crates/alpha/src/a.rs".to_string(), src.to_string());
    let fwd = attn_lint::scan_sources(&[zeta.clone(), alpha.clone()]);
    let rev = attn_lint::scan_sources(&[alpha, zeta]);
    let key = |r: &attn_lint::Report| -> Vec<(String, u32, u32, &'static str)> {
        r.findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.col, f.lint))
            .collect()
    };
    let (f1, f2) = (key(&fwd), key(&rev));
    assert_eq!(f1, f2, "input order must not leak into the report");
    assert!(
        f1.windows(2).all(|w| w[0] <= w[1]),
        "findings sorted by (file, line, col, lint): {f1:?}"
    );
    assert!(!f1.is_empty(), "the seeded float compares must flag");
}

#[test]
fn findings_render_with_the_documented_format() {
    let src = include_str!("fixtures/float_eq_bad.rs");
    let (findings, _) = scan_source("crates/model/src/fixture.rs", src);
    let line = findings[0].to_string();
    assert!(
        line.starts_with("crates/model/src/fixture.rs:5:"),
        "file:line:col prefix: {line}"
    );
    assert!(
        line.contains(" · float-eq · "),
        "interpunct separators: {line}"
    );
}
