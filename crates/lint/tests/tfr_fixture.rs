//! End-to-end proof for `target-feature-reach` over the mini-tree under
//! `tests/fixtures/tfr/`: a `#[target_feature]` kernel, a detected-gate
//! dispatcher (clean), and a hasty ungated caller — the tree's single
//! seeded finding. The binary must exit nonzero on it, and gating the
//! hasty call must drain the tree clean.

use std::path::Path;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tfr")
}

const FIXTURE: &str = include_str!("fixtures/tfr/crates/simd/src/lib.rs");

#[test]
fn only_the_ungated_call_site_flags() {
    let report = attn_lint::run_check(&fixture_root()).expect("fixture scan");
    let names: Vec<_> = report.findings.iter().map(|f| f.lint).collect();
    assert_eq!(
        names,
        vec!["target-feature-reach"],
        "gated dispatch and the kernel itself must stay clean: {:?}",
        report.findings
    );
    let f = &report.findings[0];
    assert!(f.message.contains("sum_avx2"), "names the kernel: {f}");
    // Anchored on the hasty caller's call site (4-space indent), not the
    // gated dispatch (8-space indent).
    let hasty = FIXTURE
        .lines()
        .position(|l| l == "    unsafe { sum_avx2(xs) }")
        .expect("hasty call line")
        + 1;
    assert_eq!(f.line as usize, hasty, "anchor: {f}");
    // The fixture's own SAFETY hygiene is total — the only finding is
    // the dispatch one.
    assert!(report.unsafe_sites >= 3, "kernel fn + two call blocks");
    assert_eq!(report.safety_coverage(), 1.0);
}

#[test]
fn gating_the_hasty_call_drains_the_tree_clean() {
    let src = FIXTURE.replace(
        "    // SAFETY: assumes AVX2 unconditionally — this is the seeded bug.\n    \
         unsafe { sum_avx2(xs) }",
        "    if is_x86_feature_detected!(\"avx2\") {\n        \
         // SAFETY: the detected gate above proves AVX2 is present.\n        \
         unsafe { sum_avx2(xs) }\n    } else {\n        sum_scalar(xs)\n    }",
    );
    assert_ne!(src, FIXTURE, "replacement must hit");
    let report = attn_lint::scan_sources(&[("crates/simd/src/lib.rs".to_string(), src)]);
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn an_allow_path_vouches_for_the_hasty_call() {
    let src = FIXTURE.replace(
        "    // SAFETY: assumes AVX2 unconditionally — this is the seeded bug.",
        "    // attn-lint: allow-path(target-feature-reach) — caller pre-verifies AVX2\n    \
         // SAFETY: assumes AVX2 unconditionally — this is the seeded bug.",
    );
    assert_ne!(src, FIXTURE, "replacement must hit");
    let report = attn_lint::scan_sources(&[("crates/simd/src/lib.rs".to_string(), src)]);
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.suppressions_used, 1);
}

#[test]
fn the_binary_exits_nonzero_on_the_ungated_path() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_attn_lint"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn attn_lint");
    assert!(
        !status.success(),
        "an ungated `#[target_feature]` call path must fail the gate: {status:?}"
    );
}
