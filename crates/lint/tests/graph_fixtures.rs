//! Interprocedural behaviour tests over the mini-workspace under
//! `tests/fixtures/graph/` (three files, two crates). The fixture wires
//! a serving entry (`Gateway::admit`) through the three resolution
//! shapes the call graph must get right — exact receiver-type binding,
//! free-fn/method shadowing, and conservative trait-object fan-out —
//! plus a `#[cfg(test)]`-only caller that must stay invisible.

use std::path::Path;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph")
}

fn scan() -> attn_lint::Report {
    attn_lint::run_check(&fixture_root()).expect("fixture scan")
}

#[test]
fn the_fixture_workspace_pins_exactly_two_reach_findings() {
    let report = scan();
    assert_eq!(report.files_scanned, 3, "fixture discovery");
    let names: Vec<_> = report.findings.iter().map(|f| f.lint).collect();
    assert_eq!(
        names,
        vec!["panic-reach", "panic-reach"],
        "free-fn indexing + trait-object expect, nothing else: {:?}",
        report.findings
    );
}

#[test]
fn shadowed_free_fn_flags_while_the_method_stays_clean() {
    let report = scan();
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    // The free `head` is reached through the free call and renders the
    // exact entry → sink trace.
    assert!(
        rendered.iter().any(|l| l.contains(
            "slice indexing reachable from a serving entry: \
             Gateway::admit → head → slice indexing \
             at crates/core/src/queue.rs:24"
        )),
        "free-fn path trace: {rendered:?}"
    );
    // The method `Queue::head` is total; no finding may anchor on it.
    assert!(
        rendered.iter().all(|l| !l.contains("Queue::head")),
        "receiver-typed call must bind to the method, not the shadow: {rendered:?}"
    );
}

#[test]
fn trait_object_calls_fan_out_to_every_impl() {
    let report = scan();
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        rendered.iter().any(|l| l.contains(
            "`.expect(…)` reachable from a serving entry: \
             Gateway::admit → GpuBackend::exec → `.expect(…)` \
             at crates/core/src/backend.rs:21"
        )),
        "dyn dispatch must reach the panicking impl: {rendered:?}"
    );
}

#[test]
fn cfg_test_callers_do_not_make_code_reachable() {
    let report = scan();
    assert!(
        report
            .findings
            .iter()
            .all(|f| !f.to_string().contains("test_only_brittle")),
        "the unwrap behind the test module must not flag: {:?}",
        report.findings
    );
}

#[test]
fn the_binary_exits_nonzero_on_the_fixture_workspace() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_attn_lint"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn attn_lint");
    assert!(
        !status.success(),
        "seeded violations must fail the gate: {status:?}"
    );
}
