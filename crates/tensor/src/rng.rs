//! Deterministic random-number helpers.
//!
//! Every experiment in the reproduction (initialisation, data generation,
//! fault-site selection) derives from a seeded [`TensorRng`] so that the
//! campaigns in the paper's Tables 2 and 4 replay bit-identically.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded RNG wrapper with matrix-initialisation conveniences.
///
/// `Clone` snapshots the stream state: a clone replays the same sequence
/// as the original from the point of cloning (used by tests that need a
/// twin of an already-advanced stream).
#[derive(Clone)]
pub struct TensorRng {
    inner: StdRng,
    /// Cached second Box–Muller output.
    spare_normal: Option<f32>,
}

impl TensorRng {
    /// Construct from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive an independent child RNG; used to give each campaign trial its
    /// own stream without cross-contamination.
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::seed_from(self.inner.gen::<u64>())
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Raw u64 draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Bernoulli draw with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Standard normal via Box–Muller (rand's distributions crate is not in
    /// the dependency budget).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1: f32 = 1.0 - self.inner.gen::<f32>();
        let u2: f32 = self.inner.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_scaled(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Matrix of iid normal entries with standard deviation `std`.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.normal_scaled(0.0, std))
    }

    /// Matrix of iid uniform entries in `[lo, hi)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.uniform(lo, hi))
    }

    /// Xavier/Glorot-uniform initialisation for a `fan_in × fan_out` weight.
    pub fn xavier_matrix(&mut self, fan_in: usize, fan_out: usize) -> Matrix {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform_matrix(fan_in, fan_out, -limit, limit)
    }

    /// Truncated-normal initialisation as used for transformer embeddings
    /// (values beyond 2σ are redrawn).
    pub fn trunc_normal_matrix(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| loop {
            let z = self.normal();
            if z.abs() <= 2.0 {
                return z * std;
            }
        })
    }

    /// Fisher–Yates shuffle of indices `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.inner.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = TensorRng::seed_from(42);
        let mut b = TensorRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = TensorRng::seed_from(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn normals_are_finite() {
        let mut rng = TensorRng::seed_from(9);
        assert!((0..10_000).all(|_| rng.normal().is_finite()));
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = TensorRng::seed_from(3);
        let m = rng.xavier_matrix(64, 64);
        let limit = (6.0 / 128.0f32).sqrt();
        assert!(m.data().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn trunc_normal_bounded() {
        let mut rng = TensorRng::seed_from(5);
        let m = rng.trunc_normal_matrix(32, 32, 0.02);
        assert!(m.data().iter().all(|x| x.abs() <= 0.04 + 1e-6));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = TensorRng::seed_from(11);
        let p = rng.permutation(100);
        let mut seen = vec![false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn fork_streams_independent_of_parent_continuation() {
        let mut parent = TensorRng::seed_from(100);
        let mut child = parent.fork();
        let c1 = child.next_u64();
        // Re-derive: same parent seed gives the same child.
        let mut parent2 = TensorRng::seed_from(100);
        let mut child2 = parent2.fork();
        assert_eq!(c1, child2.next_u64());
    }

    #[test]
    fn index_in_range() {
        let mut rng = TensorRng::seed_from(13);
        for _ in 0..1000 {
            assert!(rng.index(17) < 17);
        }
    }
}
