//! Owned dense row-major `f32` matrix.

use crate::view::{MatMut, MatRef};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Owned, row-major dense `f32` matrix.
///
/// This is the workhorse container of the reproduction: model parameters,
/// activations, and ABFT checksums are all `Matrix` values (or views into
/// [`crate::Batch3`] with the same layout).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols], // attn-lint: allow(hot-path-alloc-reach) — constructor: allocation is this fn's contract
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: {} elements for {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols); // attn-lint: allow(hot-path-alloc-reach) — constructor: allocation is this fn's contract
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Contiguous row-major storage.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable contiguous row-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view over the whole matrix.
    #[inline]
    pub fn view(&self) -> MatRef<'_> {
        MatRef::new(&self.data, self.rows, self.cols)
    }

    /// Mutable view over the whole matrix.
    #[inline]
    pub fn view_mut(&mut self) -> MatMut<'_> {
        MatMut::new(&mut self.data, self.rows, self.cols)
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a vector.
    pub fn col_to_vec(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on larger matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise sum with another matrix of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference (`self - other`).
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise binary zip with shape check.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "Matrix::zip: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale every element by `s`.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Scaled copy.
    pub fn scaled(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Maximum absolute element (0 for empty matrices). NaNs are ignored.
    pub fn max_abs(&self) -> f32 {
        self.data
            .iter()
            .filter(|x| !x.is_nan())
            .fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if every element is finite (no INF/NaN).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Approximate equality: `|a-b| <= atol + rtol * |b|` element-wise.
    pub fn approx_eq(&self, other: &Matrix, rtol: f32, atol: f32) -> bool {
        if (self.rows, self.cols) != (other.rows, other.cols) {
            return false;
        }
        self.data
            .iter()
            .zip(&other.data)
            .all(|(&a, &b)| (a - b).abs() <= atol + rtol * b.abs())
    }

    /// Horizontally concatenate (`[self | other]`).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertically concatenate (`[self; other]`).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: col mismatch");
        let mut data = self.data.clone(); // attn-lint: allow(hot-path-alloc-reach) — vstack builds the encoded checksummed matrix at section entry, not per-token
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Copy of the sub-matrix `rows_range × col_range`.
    pub fn submatrix(
        &self,
        row_start: usize,
        row_end: usize,
        col_start: usize,
        col_end: usize,
    ) -> Matrix {
        assert!(row_end <= self.rows && col_end <= self.cols);
        assert!(row_start <= row_end && col_start <= col_end);
        let mut out = Matrix::zeros(row_end - row_start, col_end - col_start);
        for (ro, r) in (row_start..row_end).enumerate() {
            let src = &self.row(r)[col_start..col_end];
            out.row_mut(ro).copy_from_slice(src);
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for r in 0..self.rows.min(max_show) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(max_show) {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(max_show) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_show {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m[(1, 2)] = 4.0;
        assert_eq!(m[(1, 2)], 4.0);
        assert_eq!(m.data()[5], 4.0);
    }

    #[test]
    fn identity_diag() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_row_major() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.data(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.rows(), 7);
        assert_eq!(t.cols(), 5);
        for r in 0..5 {
            for c in 0..7 {
                assert_eq!(m[(r, c)], t[(c, r)]);
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_large_blocked() {
        let m = Matrix::from_fn(65, 47, |r, c| (r * 47 + c) as f32);
        let t = m.transpose();
        for r in 0..65 {
            for c in 0..47 {
                assert_eq!(m[(r, c)], t[(c, r)]);
            }
        }
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert!(a.data().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn max_abs_ignores_nan() {
        let m = Matrix::from_vec(1, 3, vec![1.0, f32::NAN, -2.0]);
        assert_eq!(m.max_abs(), 2.0);
    }

    #[test]
    fn all_finite_detects_inf_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        m[(0, 1)] = f32::INFINITY;
        assert!(!m.all_finite());
        m[(0, 1)] = f32::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn stack_shapes() {
        let a = Matrix::full(2, 3, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        let h = a.hstack(&b);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        assert_eq!(h[(0, 3)], 2.0);
        assert_eq!(h[(1, 2)], 1.0);

        let c = Matrix::full(1, 3, 3.0);
        let v = a.vstack(&c);
        assert_eq!((v.rows(), v.cols()), (3, 3));
        assert_eq!(v[(2, 0)], 3.0);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!((s.rows(), s.cols()), (2, 2));
        assert_eq!(s[(0, 0)], 6.0);
        assert_eq!(s[(1, 1)], 11.0);
    }

    #[test]
    fn approx_eq_tolerances() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 100.0]);
        let b = Matrix::from_vec(1, 2, vec![1.0 + 1e-6, 100.0 + 1e-4]);
        assert!(a.approx_eq(&b, 1e-5, 1e-5));
        let c = Matrix::from_vec(1, 2, vec![1.1, 100.0]);
        assert!(!a.approx_eq(&c, 1e-5, 1e-5));
    }

    #[test]
    #[should_panic]
    fn zip_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = a.add(&b);
    }
}
