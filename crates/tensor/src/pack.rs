//! Operand panel packing for the register-tiled GEMM, with optional fused
//! checksum accumulation.
//!
//! The packed kernel (see [`crate::gemm`]) never reads operands directly
//! from their row-major storage inside the microkernel. Instead each
//! `MC × KC` block of `op(A)` and `KC × NC` block of `op(B)` is first
//! copied into a contiguous *panel* layout:
//!
//! * A-panels: micro-panels of [`MR`] rows, stored k-major —
//!   `ap[panel][kk * MR + r]` — so the microkernel reads one contiguous
//!   `MR`-wide column slice per `k` step.
//! * B-panels: micro-panels of [`NR`] columns, stored k-major —
//!   `bp[panel][kk * NR + j]`.
//!
//! Ragged edges are zero-padded to full micro-panels, which keeps the
//! microkernel branch-free; padded lanes are simply never written back.
//!
//! **Fused encoding.** Packing already streams every element of the
//! operand through registers, so the ABFT checksum projections (`v1 = 1`,
//! `v2 = [1, 2, …]`) accumulate here at near-zero marginal cost — this is
//! the CPU analogue of the paper's §4.6 encoder that produces both sums
//! from a single staged read. The accumulation order this establishes —
//! rows visited ascending within an `MC` row-block (columns ascending
//! within an `NC` column-block for row checksums), block partials combined
//! in block order — is a documented contract: the standalone encoders in
//! `attnchecker::checksum` reproduce it bit-for-bit so fused and
//! standalone encodings are interchangeable.
//!
//! attn-lint: hot-path

use crate::gemm::{MR, NR};

/// Weighted-checksum weight of row/column `i` (1-based, the `v2` vector).
///
/// Canonical definition shared with `attnchecker::checksum::weight` — the
/// fused in-packing encoder and the standalone encoders must agree bitwise.
#[inline]
pub fn checksum_weight(i: usize) -> f32 {
    (i + 1) as f32
}

/// Read-only operand described by its storage, leading dimension, and
/// whether the *logical* operand is the transpose of storage.
#[derive(Clone, Copy)]
pub(crate) struct Src<'a> {
    pub data: &'a [f32],
    /// Leading dimension of the row-major storage.
    pub ld: usize,
    /// When true, logical element `(r, c)` reads `data[c * ld + r]`.
    pub trans: bool,
}

impl<'a> SrcRead for Src<'a> {
    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        if self.trans {
            self.data[c * self.ld + r]
        } else {
            self.data[r * self.ld + c]
        }
    }

    #[inline(always)]
    fn row_slice(&self, r: usize, c0: usize, len: usize) -> Option<&[f32]> {
        if self.trans {
            None
        } else {
            Some(&self.data[r * self.ld + c0..r * self.ld + c0 + len])
        }
    }
}

/// Element access for GEMM operands. The packing loops read *logical*
/// elements through this trait, so any storage layout — contiguous
/// row-major ([`Src`]) or paged rows split across fixed-size blocks
/// ([`crate::kv::PagedSrc`]) — produces bit-identical packed panels, and
/// therefore bit-identical products: the accumulation-order contract is a
/// property of the logical element order, which this trait preserves.
pub(crate) trait SrcRead: Copy + Sync {
    /// Logical element `(r, c)` of `op(X)`.
    fn at(&self, r: usize, c: usize) -> f32;

    /// Contiguous storage of logical row `r`, columns `c0..c0 + len`, when
    /// the layout can serve one (non-transposed sources with row-resident
    /// storage). `None` forces the element-wise path.
    fn row_slice(&self, r: usize, c0: usize, len: usize) -> Option<&[f32]>;
}

/// Fused column-checksum accumulator: per-k-column running `(Σ, Σw)` sums
/// for one `MC` row-block of `op(A)`. Slices span the *full* k dimension;
/// packing a `(i0, p0)` block touches indices `p0..p0+kc`.
pub(crate) struct ColCsAccum<'a> {
    pub sum: &'a mut [f32],
    pub wsum: &'a mut [f32],
}

/// Fused row-checksum accumulator: per-k-row running `(Σ, Σw)` sums for
/// one `NC` column-block of `op(B)`.
pub(crate) struct RowCsAccum<'a> {
    pub sum: &'a mut [f32],
    pub wsum: &'a mut [f32],
}

/// Pack `op(A)[i0..i0+mc, p0..p0+kc]` into MR-row micro-panels.
///
/// `ap[..panels * kc * MR]` is fully overwritten (padding rows written as
/// zero). Pure copy — the fused checksum accumulation runs as its own
/// cache-hot sweep ([`accum_col_cs`]) so this loop stays vectorizable.
pub(crate) fn pack_a_block<A: SrcRead>(
    a: A,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    ap: &mut [f32],
) {
    let panels = mc.div_ceil(MR);
    debug_assert!(ap.len() >= panels * kc * MR);
    for panel in 0..panels {
        let r0 = panel * MR;
        let valid = MR.min(mc - r0);
        let dst = &mut ap[panel * kc * MR..(panel + 1) * kc * MR];
        for kk in 0..kc {
            let col = &mut dst[kk * MR..kk * MR + MR];
            for (r, slot) in col.iter_mut().enumerate() {
                *slot = if r < valid {
                    a.at(i0 + r0 + r, p0 + kk)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Pack `op(B)[p0..p0+kc, j0..j0+nc]` into NR-column micro-panels
/// (pure copy; see [`accum_row_cs`] for the fused checksum sweep).
pub(crate) fn pack_b_block<B: SrcRead>(
    b: B,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    bp: &mut [f32],
) {
    let panels = nc.div_ceil(NR);
    debug_assert!(bp.len() >= panels * kc * NR);
    for panel in 0..panels {
        let c0 = panel * NR;
        let valid = NR.min(nc - c0);
        let dst = &mut bp[panel * kc * NR..(panel + 1) * kc * NR];
        for kk in 0..kc {
            let row = &mut dst[kk * NR..kk * NR + NR];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = if j < valid {
                    b.at(p0 + kk, j0 + c0 + j)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Fused column-checksum sweep over `op(A)[i0..i0+mc, p0..p0+kc]`, run
/// back-to-back with [`pack_a_block`] while the block is cache-hot.
///
/// Accumulation order is the encoder block contract: rows ascending per
/// column within the block (the row-major sweep vectorises across `kk`
/// without changing any column's add order).
pub(crate) fn accum_col_cs<A: SrcRead>(
    a: A,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    acc: &mut ColCsAccum<'_>,
) {
    let sum = &mut acc.sum[p0..p0 + kc];
    let wsum = &mut acc.wsum[p0..p0 + kc];
    for r in i0..i0 + mc {
        let w = checksum_weight(r);
        if let Some(row) = a.row_slice(r, p0, kc) {
            for ((s, ws), &v) in sum.iter_mut().zip(wsum.iter_mut()).zip(row) {
                *s += v;
                *ws += w * v;
            }
        } else {
            for kk in 0..kc {
                let v = a.at(r, p0 + kk);
                sum[kk] += v;
                wsum[kk] += w * v;
            }
        }
    }
}

/// Fused row-checksum sweep over `op(B)[p0..p0+kc, j0..j0+nc]` — columns
/// ascending per row (sequential horizontal sums: the add order *is* the
/// contract, so no lane splitting).
pub(crate) fn accum_row_cs<B: SrcRead>(
    b: B,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    acc: &mut RowCsAccum<'_>,
) {
    for kk in p0..p0 + kc {
        let mut s = acc.sum[kk];
        let mut ws = acc.wsum[kk];
        if let Some(row) = b.row_slice(kk, j0, nc) {
            for (j, &v) in row.iter().enumerate() {
                s += v;
                ws += checksum_weight(j0 + j) * v;
            }
        } else {
            for j in j0..j0 + nc {
                let v = b.at(kk, j);
                s += v;
                ws += checksum_weight(j) * v;
            }
        }
        acc.sum[kk] = s;
        acc.wsum[kk] = ws;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_matrix(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols).map(|i| i as f32).collect()
    }

    #[test]
    fn pack_a_layout_and_padding() {
        // 3×4 block packed with MR-row panels: panel 0 holds rows 0..MR.
        let data = seq_matrix(3, 4);
        let a = Src {
            data: &data,
            ld: 4,
            trans: false,
        };
        let panels = 3usize.div_ceil(MR);
        let mut ap = vec![f32::NAN; panels * 4 * MR];
        pack_a_block(a, 0, 3, 0, 4, &mut ap);
        // Element (r, kk) lives at panel(r/MR): kk*MR + r%MR.
        for r in 0..3 {
            for kk in 0..4 {
                let panel = r / MR;
                let got = ap[panel * 4 * MR + kk * MR + r % MR];
                assert_eq!(got, data[r * 4 + kk], "({r},{kk})");
            }
        }
        // Padding rows are exactly zero.
        if 3 % MR != 0 {
            for kk in 0..4 {
                for r in 3..MR {
                    assert_eq!(ap[kk * MR + r], 0.0);
                }
            }
        }
    }

    #[test]
    fn pack_b_transposed_reads_storage_transpose() {
        // op(B) = Bᵀ where B is 5×3 row-major: logical (kk, j) = B[j, kk].
        let data = seq_matrix(5, 3);
        let b = Src {
            data: &data,
            ld: 3,
            trans: true,
        };
        let panels = 5usize.div_ceil(NR);
        let mut bp = vec![f32::NAN; panels * 3 * NR];
        pack_b_block(b, 0, 3, 0, 5, &mut bp);
        for kk in 0..3 {
            for j in 0..5 {
                let panel = j / NR;
                let got = bp[panel * 3 * NR + kk * NR + j % NR];
                assert_eq!(got, data[j * 3 + kk], "({kk},{j})");
            }
        }
    }

    #[test]
    fn fused_col_checksums_match_direct_sums() {
        let data = seq_matrix(7, 5);
        let a = Src {
            data: &data,
            ld: 5,
            trans: false,
        };
        let mut sum = vec![0.0f32; 5];
        let mut wsum = vec![0.0f32; 5];
        let mut acc = ColCsAccum {
            sum: &mut sum,
            wsum: &mut wsum,
        };
        accum_col_cs(a, 0, 7, 0, 5, &mut acc);
        for c in 0..5 {
            let expect: f32 = (0..7).map(|r| data[r * 5 + c]).sum();
            let wexpect: f32 = (0..7).map(|r| checksum_weight(r) * data[r * 5 + c]).sum();
            assert_eq!(sum[c], expect, "col {c}");
            assert_eq!(wsum[c], wexpect, "col {c} weighted");
        }
    }
}
