//! Packed, cache-blocked, register-tiled GEMM kernels.
//!
//! These kernels stand in for cuBLAS in the paper's setup. Three layout
//! variants cover everything attention and backprop need:
//!
//! * [`matmul`]      — `C = A · B`      (e.g. `X · W_Q`)
//! * [`matmul_nt`]   — `C = A · Bᵀ`     (e.g. `Q · Kᵀ`, `dY · Wᵀ`)
//! * [`matmul_tn`]   — `C = Aᵀ · B`     (e.g. `Xᵀ · dY` for weight grads)
//!
//! All three run through **one** shared kernel: operands are packed into
//! contiguous micro-panels ([`crate::pack`]) block by block
//! ([`MC`]`×`[`KC`] for `op(A)`, [`KC`]`×`[`NC`] for `op(B)`), and an
//! [`MR`]`×`[`NR`] register-tile microkernel accumulates each output tile.
//! The packing step absorbs the transposes, which is what gives the NT
//! path the k-blocking the old row-streaming implementation lacked.
//!
//! # Fused checksum encoding
//!
//! [`gemm_encode_cols_into`] and [`gemm_encode_rows_into`] produce an
//! ABFT-augmented product in the same pass: the operand's checksum
//! projections accumulate *inside the packing loop* (the packing already
//! streams every element through registers), and the checksum border of
//! the product is then a 2-row (2-column) product through the same
//! kernel — bit-identical to encoding the operand first and multiplying
//! the augmented matrix, without the standalone encode sweep or the
//! augmented-copy allocation. This is the paper's §4.6 fusion: "pack the
//! checksum with the operand matrix such that the checksum can be updated
//! together with the original operation".
//!
//! # The accumulation-order contract
//!
//! Exact post-correction replay (`attnchecker::section::replay_nn`)
//! depends on reproducing each output element bit-for-bit, so the
//! accumulation order is a documented contract:
//!
//! * element `C[i, j]` is accumulated per `k`-block: for each [`KC`]-sized
//!   block (ascending), a fresh `f32` partial sums `a[i,kk]·b[kk,j]` with
//!   `kk` ascending, and the partial is added to the (zero-initialised)
//!   output — `C[i,j] = ((0 + p₀) + p₁) + …`;
//! * each element's value depends only on row `i` of `op(A)`, column `j`
//!   of `op(B)`, and `k` — never on `m`, `n`, the tile the element landed
//!   in, or the worker count (every element is produced by exactly one
//!   tile, and tiles don't interact), which is why results are
//!   bit-identical at any rayon pool size and why an augmented
//!   (checksum-bordered) product carries the same data bits as the plain
//!   one;
//! * fused column checksums accumulate rows ascending within each [`MC`]
//!   row-block and combine block partials in block order (columns/[`NC`]
//!   for row checksums) — mirrored by `attnchecker::checksum`'s
//!   standalone encoders.
//!
//! IEEE-754 special values (INF/NaN) propagate exactly as they would
//! through cuBLAS — zero elements are never skipped (a sparsity shortcut
//! would mask `0 × NaN = NaN`), and padding lanes multiply real data only
//! by themselves, never replacing it — which the fault-propagation study
//! relies on.
//!
//! Packing panels and checksum staging come from the thread-local
//! [`crate::workspace`] arena, so a steady-state caller performs no heap
//! allocation inside these kernels.
//!
//! attn-lint: hot-path

use crate::kv::PagedKv;
use crate::matrix::Matrix;
use crate::pack::{
    accum_col_cs, accum_row_cs, pack_a_block, pack_b_block, ColCsAccum, RowCsAccum, Src, SrcRead,
};
use crate::view::{MatMut, MatRef};
use crate::workspace;
use rayon::prelude::*;

/// Rows of one register tile (micro-panel height of packed `op(A)`).
pub const MR: usize = 4;
/// Columns of one register tile (micro-panel width of packed `op(B)`).
pub const NR: usize = 8;
/// Row-block edge: rows of `op(A)` packed (and parallelised) per tile.
pub const MC: usize = 64;
/// Column-block edge: columns of `op(B)` packed per tile.
pub const NC: usize = 64;
/// Cache-block edge for the k dimension — also the partial-sum block size
/// of the accumulation-order contract (see module docs).
pub const KC: usize = 128;

/// Minimum `m*n*k` before the kernels split work across threads.
///
/// Deliberately high: on the few-core hosts this reproduction targets,
/// splitting sub-millisecond GEMMs across rayon workers produces bimodal
/// timings (thread park/unpark latency rivals the arithmetic) that swamp
/// the ABFT overheads being measured. Parallelism is instead applied at
/// the batch/campaign level, where tasks are tens of milliseconds.
pub const PAR_FLOP_THRESHOLD: usize = 256 * 256 * 256;

/// Shared threshold decision for all kernels. The product is formed in
/// `u128` so pathological shapes (huge `k` times huge `n`) cannot wrap
/// `usize` and silently serialise — or worse, parallelise a tiny GEMM.
#[inline]
pub fn exceeds_par_threshold(m: usize, n: usize, k: usize) -> bool {
    (m as u128)
        .saturating_mul(n as u128)
        .saturating_mul(k as u128)
        >= PAR_FLOP_THRESHOLD as u128
}

/// `C = A · B` into a fresh matrix.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a.view(), b.view(), c.view_mut());
    c
}

/// `C = A · Bᵀ` into a fresh matrix.
///
/// # Panics
/// Panics if `A.cols() != B.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    matmul_nt_into(a.view(), b.view(), c.view_mut());
    c
}

/// `C = Aᵀ · B` into a fresh matrix.
///
/// # Panics
/// Panics if `A.rows() != B.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    matmul_tn_into(a.view(), b.view(), c.view_mut());
    c
}

/// `C = A · B` writing into `c` (overwritten, not accumulated).
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_into(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows(), "matmul: inner dims {} vs {}", k, b.rows());
    assert_eq!(m, c.rows(), "matmul: output rows");
    assert_eq!(n, c.cols(), "matmul: output cols");
    let (av, bv) = (src_n(a), src_n(b));
    gemm_driver(av, bv, m, n, k, c.data(), n, Fuse::None);
}

/// `C = A · Bᵀ` writing into `c`.
///
/// The transpose is absorbed by the packing step, so the NT path gets the
/// same KC-blocking (and register tiling) as the NN path — large inner
/// dimensions no longer stream whole rows through an unblocked dot.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_nt_into(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.rows();
    assert_eq!(k, b.cols(), "matmul_nt: inner dims {} vs {}", k, b.cols());
    assert_eq!(m, c.rows(), "matmul_nt: output rows");
    assert_eq!(n, c.cols(), "matmul_nt: output cols");
    let (av, bv) = (src_n(a), src_t(b));
    gemm_driver(av, bv, m, n, k, c.data(), n, Fuse::None);
}

/// `C = Aᵀ · B` writing into `c`.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_tn_into(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (r, m) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(r, b.rows(), "matmul_tn: inner dims {} vs {}", r, b.rows());
    assert_eq!(m, c.rows(), "matmul_tn: output rows");
    assert_eq!(n, c.cols(), "matmul_tn: output cols");
    let (av, bv) = (src_t(a), src_n(b));
    gemm_driver(av, bv, m, n, r, c.data(), n, Fuse::None);
}

/// Fused encode-and-multiply, column side: writes the augmented product
/// `[A; v1ᵀA; v2ᵀA] · B` into the `(m+2) × n` output `c`.
///
/// Rows `0..m` are the plain product `A·B` (bit-identical to
/// [`matmul_into`]); rows `m..m+2` are the riding column checksums
/// `(v1ᵀA)·B` / `(v2ᵀA)·B`. The checksum projections of `A` accumulate
/// inside the packing pass — no standalone encode sweep, no augmented
/// operand copy — and are bit-identical to
/// `attnchecker::checksum::col_checksums(A)` by the shared block contract.
///
/// # Panics
/// Panics unless `c.rows() == a.rows() + 2`, `c.cols() == b.cols()`, and
/// `a.cols() == b.rows()`.
pub fn gemm_encode_cols_into(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows(), "gemm_encode_cols: inner dims");
    assert_eq!(m + 2, c.rows(), "gemm_encode_cols: output rows");
    assert_eq!(n, c.cols(), "gemm_encode_cols: output cols");
    let mut cs = workspace::take(2 * k);
    {
        let (av, bv) = (src_n(a), src_n(b));
        let cd = c.data();
        gemm_driver(av, bv, m, n, k, &mut cd[..m * n], n, Fuse::Cols(&mut cs));
        // Checksum border: CS_A (2 × k) · B as a lean streaming product.
        // It follows the same per-element KC-block contract as the packed
        // kernel — so the border is bit-identical to two extra rows of an
        // augmented A — but streams B once, without re-packing.
        let (cs_row, rest) = cd[m * n..].split_at_mut(n);
        encode_border_cols(&cs, bv, k, n, cs_row, &mut rest[..n]);
    }
}

/// `C = A · B` where `B` is the paged data matrix of a KV cache.
///
/// Bit-identical to [`matmul_into`] over a contiguous copy of `B`: the
/// packing loops read logical elements through the crate-internal
/// `SrcRead` abstraction, so block
/// boundaries never alter the accumulation order.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_paged_into(a: MatRef<'_>, b: &PagedKv, mut c: MatMut<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(
        k,
        b.rows(),
        "matmul_paged: inner dims {} vs {}",
        k,
        b.rows()
    );
    assert_eq!(m, c.rows(), "matmul_paged: output rows");
    assert_eq!(n, c.cols(), "matmul_paged: output cols");
    gemm_driver(src_n(a), b.src(false), m, n, k, c.data(), n, Fuse::None);
}

/// `C[0..m, 0..rows(B)] = A · Bᵀ` where `B` is the paged data matrix of a
/// KV cache (one score per cached row).
///
/// Unlike the dense entries, `c` may be **wider** than the product:
/// `c.cols() >= b.rows()` is required, the product lands in columns
/// `0..b.rows()` at row stride `c.cols()`, and the extra columns are left
/// untouched — a caller appending checksum columns fills them itself.
/// The written region is bit-identical to [`matmul_nt_into`] over a
/// contiguous copy of `B`.
///
/// # Panics
/// Panics if `a.cols() != b.cols()`, `c.rows() != a.rows()`, or
/// `c.cols() < b.rows()`.
pub fn matmul_nt_paged_into(a: MatRef<'_>, b: &PagedKv, mut c: MatMut<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.rows();
    assert_eq!(k, b.cols(), "matmul_nt_paged: inner dims");
    assert_eq!(m, c.rows(), "matmul_nt_paged: output rows");
    assert!(c.cols() >= n, "matmul_nt_paged: output too narrow");
    let ldc = c.cols();
    gemm_driver(src_n(a), b.src(true), m, n, k, c.data(), ldc, Fuse::None);
}

/// Fused encode-and-multiply over a paged operand: writes the augmented
/// product `[A; v1ᵀA; v2ᵀA] · B` into the `(m+2) × cols(B)` output, with
/// `B` the paged data matrix of a KV cache. Data rows are bit-identical
/// to [`matmul_paged_into`]; the checksum border follows the same block
/// contract as [`gemm_encode_cols_into`].
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn gemm_encode_cols_paged_into(a: MatRef<'_>, b: &PagedKv, mut c: MatMut<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows(), "gemm_encode_cols_paged: inner dims");
    assert_eq!(m + 2, c.rows(), "gemm_encode_cols_paged: output rows");
    assert_eq!(n, c.cols(), "gemm_encode_cols_paged: output cols");
    let mut cs = workspace::take(2 * k);
    {
        let (av, bv) = (src_n(a), b.src(false));
        let cd = c.data();
        gemm_driver(av, bv, m, n, k, &mut cd[..m * n], n, Fuse::Cols(&mut cs));
        let (cs_row, rest) = cd[m * n..].split_at_mut(n);
        encode_border_cols(&cs, bv, k, n, cs_row, &mut rest[..n]);
    }
}

/// Streaming `[v1ᵀA; v2ᵀA] · B` border product: column stripes held in
/// registers across each KC block (per-element accumulation order is
/// exactly the packed kernel's contract). `inline(never)` for the same
/// register-allocation reason as the microkernel.
#[inline(never)]
fn encode_border_cols<B: SrcRead>(
    cs: &[f32],
    b: B,
    k: usize,
    n: usize,
    cs_row: &mut [f32],
    csw_row: &mut [f32],
) {
    const STRIPE: usize = 8;
    let mut j0 = 0usize;
    while j0 < n {
        let jw = STRIPE.min(n - j0);
        let mut out0 = [0.0f32; STRIPE];
        let mut out1 = [0.0f32; STRIPE];
        let mut p0 = 0usize;
        while p0 < k {
            let pend = (p0 + KC).min(k);
            let mut part0 = [0.0f32; STRIPE];
            let mut part1 = [0.0f32; STRIPE];
            for kk in p0..pend {
                let av = cs[kk];
                let awv = cs[k + kk];
                if let Some(brow) = b.row_slice(kk, j0, jw) {
                    if jw == STRIPE {
                        for (j, &bv) in brow.iter().enumerate().take(STRIPE) {
                            part0[j] += av * bv;
                            part1[j] += awv * bv;
                        }
                    } else {
                        for (j, &bv) in brow.iter().enumerate() {
                            part0[j] += av * bv;
                            part1[j] += awv * bv;
                        }
                    }
                } else {
                    for j in 0..jw {
                        let bv = b.at(kk, j0 + j);
                        part0[j] += av * bv;
                        part1[j] += awv * bv;
                    }
                }
            }
            for j in 0..jw {
                out0[j] += part0[j];
                out1[j] += part1[j];
            }
            p0 = pend;
        }
        cs_row[j0..j0 + jw].copy_from_slice(&out0[..jw]);
        csw_row[j0..j0 + jw].copy_from_slice(&out1[..jw]);
        j0 += STRIPE;
    }
}

/// Fused encode-and-multiply, row side: writes the augmented product
/// `A · [B | B·v1 | B·v2]` into the `m × (n+2)` output `c`.
///
/// Columns `0..n` are the plain product; columns `n..n+2` are the riding
/// row checksums `A·(B·v1)` / `A·(B·v2)`. `B`'s row-checksum projections
/// accumulate inside the packing pass and are bit-identical to
/// `attnchecker::checksum::row_checksums(B)` by the shared block contract.
///
/// # Panics
/// Panics unless `c.rows() == a.rows()`, `c.cols() == b.cols() + 2`, and
/// `a.cols() == b.rows()`.
pub fn gemm_encode_rows_into(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows(), "gemm_encode_rows: inner dims");
    assert_eq!(m, c.rows(), "gemm_encode_rows: output rows");
    assert_eq!(n + 2, c.cols(), "gemm_encode_rows: output cols");
    let mut rs = workspace::take(2 * k);
    {
        let (av, bv) = (src_n(a), src_n(b));
        let ldc = n + 2;
        let cd = c.data();
        gemm_driver(av, bv, m, n, k, &mut cd[..], ldc, Fuse::Rows(&mut rs));
        // Checksum border: A · RS_B (m × 2) as a lean streaming product
        // under the same per-element KC-block contract — bit-identical to
        // two extra augmented columns, with A's rows read once.
        let a_data = a.data();
        for i in 0..m {
            let arow = &a_data[i * k..i * k + k];
            let mut acc0 = 0.0f32;
            let mut acc1 = 0.0f32;
            let mut p0 = 0usize;
            while p0 < k {
                let pend = (p0 + KC).min(k);
                let mut part0 = 0.0f32;
                let mut part1 = 0.0f32;
                for (kk, &av) in arow[p0..pend].iter().enumerate() {
                    part0 += av * rs[p0 + kk];
                    part1 += av * rs[k + p0 + kk];
                }
                acc0 += part0;
                acc1 += part1;
                p0 = pend;
            }
            cd[i * ldc + n] = acc0;
            cd[i * ldc + n + 1] = acc1;
        }
    }
}

#[inline]
fn src_n(v: MatRef<'_>) -> Src<'_> {
    Src {
        data: v.data(),
        ld: v.cols().max(1),
        trans: false,
    }
}

#[inline]
fn src_t(v: MatRef<'_>) -> Src<'_> {
    Src {
        data: v.data(),
        ld: v.cols().max(1),
        trans: true,
    }
}

/// Which fused encoding (if any) a driver invocation performs. The slices
/// receive `[Σ | Σw]` over the full k dimension.
enum Fuse<'a> {
    None,
    /// Column checksums of `op(A)` (length `2·k`).
    Cols(&'a mut [f32]),
    /// Row checksums of `op(B)` (length `2·k`).
    Rows(&'a mut [f32]),
}

/// Raw output cursor shared across tile tasks. Tiles write disjoint
/// `(row, col)` regions, so concurrent use is sound.
#[derive(Clone, Copy)]
struct DstPtr {
    ptr: *mut f32,
    ldc: usize,
}

unsafe impl Send for DstPtr {} // SAFETY: plain pointer+stride pair; every tile writes a disjoint region.
unsafe impl Sync for DstPtr {} // SAFETY: fields are only read; the pointed-to writes are disjoint per tile.

/// Raw staging cursor for per-block checksum partials (disjoint block
/// slices per tile task). `len` is the checked-out capacity in floats,
/// asserted against before any block slice is reconstructed.
#[derive(Clone, Copy)]
struct StagePtr {
    ptr: *mut f32,
    len: usize,
}

unsafe impl Send for StagePtr {} // SAFETY: plain pointer+len pair; every block owns a disjoint slice.
unsafe impl Sync for StagePtr {} // SAFETY: fields are only read; block slices never overlap across tiles.

#[derive(Clone, Copy, PartialEq)]
enum FuseKind {
    None,
    Cols,
    Rows,
}

/// The shared kernel: `C[0..m, 0..n] = op(A) · op(B)` written at row
/// stride `ldc` into `c` (which must hold `(m-1)·ldc + n` elements), with
/// optional fused checksum accumulation.
///
/// Work is split over a deterministic 2D grid of `MC × NC` output tiles;
/// each tile packs its own operand panels and owns a disjoint output
/// region, so results are bit-identical at any worker count.
#[allow(clippy::too_many_arguments)] // internal kernel plumbing, not API
fn gemm_driver<A: SrcRead, B: SrcRead>(
    a: A,
    b: B,
    m: usize,
    n: usize,
    k: usize,
    c: &mut [f32],
    ldc: usize,
    fuse: Fuse<'_>,
) {
    debug_assert!(m == 0 || c.len() >= (m - 1) * ldc + n);
    // The output is accumulated block-partial by block-partial on top of
    // zero (the documented contract), so clear the owned region first.
    for r in 0..m {
        c[r * ldc..r * ldc + n].fill(0.0);
    }
    let (kind, out) = match fuse {
        Fuse::None => (FuseKind::None, None),
        Fuse::Cols(o) => (FuseKind::Cols, Some(o)),
        Fuse::Rows(o) => (FuseKind::Rows, Some(o)),
    };
    if let Some(o) = &out {
        debug_assert_eq!(o.len(), 2 * k);
    }
    if m == 0 || n == 0 {
        if let Some(o) = out {
            o.fill(0.0);
        }
        return;
    }
    let n_ib = m.div_ceil(MC);
    let n_jb = n.div_ceil(NC);
    // Per-block checksum staging: one `[Σ(k) | Σw(k)]` pair per row-block
    // (Cols) or column-block (Rows), reduced in block order afterwards so
    // the combination order never depends on scheduling.
    let stage_blocks = match kind {
        FuseKind::None => 0,
        FuseKind::Cols => n_ib,
        FuseKind::Rows => n_jb,
    };
    // No staging checkout at all for plain products — the common case
    // stays off the arena entirely.
    let mut stage = (stage_blocks > 0).then(|| workspace::take(stage_blocks * 2 * k));
    let dst = DstPtr {
        ptr: c.as_mut_ptr(),
        ldc,
    };
    let stage_ptr = StagePtr {
        ptr: stage
            .as_mut()
            .map_or(std::ptr::NonNull::<f32>::dangling().as_ptr(), |s| {
                s.as_mut_slice().as_mut_ptr()
            }),
        len: stage_blocks * 2 * k,
    };

    let tiles = n_ib * n_jb;
    let run_tile = |t: usize| {
        let (ib, jb) = (t / n_jb, t % n_jb);
        compute_tile(a, b, m, n, k, dst, ib, jb, kind, stage_ptr);
    };
    if exceeds_par_threshold(m, n, k) && tiles > 1 {
        (0..tiles).into_par_iter().for_each(run_tile);
    } else {
        for t in 0..tiles {
            run_tile(t);
        }
    }

    // Deterministic reduction of the per-block partials, block order
    // ascending — the other half of the encoder block contract.
    if let Some(o) = out {
        let stage = stage
            .as_ref()
            .expect("staging exists whenever fuse is requested");
        o.fill(0.0);
        let (sum, wsum) = o.split_at_mut(k);
        for blk in 0..stage_blocks {
            let part = &stage[blk * 2 * k..(blk + 1) * 2 * k];
            for kk in 0..k {
                sum[kk] += part[kk];
                wsum[kk] += part[k + kk];
            }
        }
    }
}

/// Compute one `MC × NC` output tile: pack the operand panels per
/// [`KC`]-block and run the register microkernel over the tile's
/// micro-panel grid, accumulating straight into the output region.
#[allow(clippy::too_many_arguments)] // internal kernel plumbing, not API
fn compute_tile<A: SrcRead, B: SrcRead>(
    a: A,
    b: B,
    m: usize,
    n: usize,
    k: usize,
    dst: DstPtr,
    ib: usize,
    jb: usize,
    fuse: FuseKind,
    stage: StagePtr,
) {
    let i0 = ib * MC;
    let mc = MC.min(m - i0);
    let j0 = jb * NC;
    let nc = NC.min(n - j0);
    let a_panels = mc.div_ceil(MR);
    let b_panels = nc.div_ceil(NR);
    let kc_cap = KC.min(k.max(1));
    let mut ap = workspace::take(a_panels * MR * kc_cap);
    let mut bp = workspace::take(b_panels * NR * kc_cap);

    // Fused checksum partials for this tile's block. Only the first tile
    // along the non-encoded dimension accumulates (the checksum of op(A)
    // must be fed once, not once per column tile) — regions are disjoint
    // per block index, so the raw slice reconstruction is sound.
    let mut col_cs = (fuse == FuseKind::Cols && jb == 0).then(|| {
        debug_assert!((ib + 1) * 2 * k <= stage.len);
        // SAFETY: the staging checkout holds `stage.len` live floats and
        // row block `ib` owns the disjoint `[ib·2k, (ib+1)·2k)` slice —
        // only the `jb == 0` tile of each block row reconstructs it.
        let s = unsafe { std::slice::from_raw_parts_mut(stage.ptr.add(ib * 2 * k), 2 * k) };
        let (sum, wsum) = s.split_at_mut(k);
        ColCsAccum { sum, wsum }
    });
    let mut row_cs = (fuse == FuseKind::Rows && ib == 0).then(|| {
        debug_assert!((jb + 1) * 2 * k <= stage.len);
        // SAFETY: as above with the roles swapped — column block `jb`
        // owns `[jb·2k, (jb+1)·2k)` and only the `ib == 0` tile of each
        // block column reconstructs it.
        let s = unsafe { std::slice::from_raw_parts_mut(stage.ptr.add(jb * 2 * k), 2 * k) };
        let (sum, wsum) = s.split_at_mut(k);
        RowCsAccum { sum, wsum }
    });

    let mut p0 = 0usize;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_b_block(b, p0, kc, j0, nc, &mut bp);
        if let Some(acc) = row_cs.as_mut() {
            accum_row_cs(b, p0, kc, j0, nc, acc);
        }
        pack_a_block(a, i0, mc, p0, kc, &mut ap);
        if let Some(acc) = col_cs.as_mut() {
            accum_col_cs(a, i0, mc, p0, kc, acc);
        }
        for jp in 0..b_panels {
            let nr = NR.min(nc - jp * NR);
            let bpan = &bp[jp * kc * NR..(jp + 1) * kc * NR];
            for ipan in 0..a_panels {
                let mr = MR.min(mc - ipan * MR);
                let apan = &ap[ipan * kc * MR..(ipan + 1) * kc * MR];
                let mut acc = [[0.0f32; NR]; MR];
                microkernel(apan, bpan, &mut acc);
                // SAFETY: the 2D tile grid gives this task exclusive
                // ownership of the `(i0.., j0..)` output region, and
                // `mr`/`nr` are clipped to the tile edges above.
                unsafe {
                    writeback_add(dst, i0 + ipan * MR, j0 + jp * NR, mr, nr, &acc);
                }
            }
        }
        p0 += kc;
    }
}

/// The register microkernel: `acc[r][j] += Σ_k apan[k·MR+r] · bpan[k·NR+j]`
/// over one packed panel pair. One accumulator per element, `k` ascending —
/// the per-block partial of the accumulation-order contract. ILP comes
/// from the `MR × NR` independent accumulators, never from splitting a
/// single element's sum.
///
/// `inline(never)` is load-bearing: as a standalone function LLVM keeps
/// the whole `MR × NR` accumulator tile in vector registers; inlined into
/// the tile loop it spills the tile to the stack every `k` step, costing
/// ~6× throughput (measured 3.5 vs 20 GFLOP/s at 256³).
#[inline(never)]
fn microkernel(apan: &[f32], bpan: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ak, bk) in apan.chunks_exact(MR).zip(bpan.chunks_exact(NR)) {
        for (accr, &av) in acc.iter_mut().zip(ak) {
            for (cv, &bv) in accr.iter_mut().zip(bk) {
                *cv += av * bv;
            }
        }
    }
}

/// Add the valid region of a register tile into the output.
///
/// # Safety
/// The caller must guarantee the addressed region lies within the output
/// buffer and is not written by any other concurrent tile (the 2D grid
/// gives every tile a disjoint region).
// SAFETY: per the contract above — callers pass tile-owned
// `(i0, j0, mr, nr)` regions clipped to the output shape.
unsafe fn writeback_add(
    dst: DstPtr,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    acc: &[[f32; NR]; MR],
) {
    debug_assert!(mr <= MR && nr <= NR);
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let row = std::slice::from_raw_parts_mut(dst.ptr.add((i0 + r) * dst.ldc + j0), nr);
        for (cv, &v) in row.iter_mut().zip(&accr[..nr]) {
            *cv += v;
        }
    }
}

/// Dense dot product with 4-lane unrolling. Retained as a free-standing
/// utility (reductions, tests); note its lane-split accumulation order is
/// **not** the GEMM contract — exact replay must use
/// `attnchecker::section::replay_nn` instead.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let p = i * 4;
        s0 += a[p] * b[p];
        s1 += a[p + 1] * b[p + 1];
        s2 += a[p + 2] * b[p + 2];
        s3 += a[p + 3] * b[p + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Triple-loop reference GEMM used to validate the blocked kernels.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0;
            for t in 0..a.cols() {
                s += a[(i, t)] * b[(t, j)];
            }
            c[(i, j)] = s;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    fn rand_mat(rng: &mut TensorRng, r: usize, c: usize) -> Matrix {
        rng.uniform_matrix(r, c, -1.0, 1.0)
    }

    #[test]
    fn matmul_matches_naive_small() {
        let mut rng = TensorRng::seed_from(7);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 3, 9)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            let c = matmul(&a, &b);
            let r = matmul_naive(&a, &b);
            assert!(c.approx_eq(&r, 1e-5, 1e-6), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_matches_naive_medium() {
        let mut rng = TensorRng::seed_from(11);
        let a = rand_mat(&mut rng, 96, 80);
        let b = rand_mat(&mut rng, 80, 72);
        let c = matmul(&a, &b);
        let r = matmul_naive(&a, &b);
        assert!(c.approx_eq(&r, 1e-4, 1e-4));
    }

    #[test]
    fn matmul_matches_naive_parallel_path() {
        let mut rng = TensorRng::seed_from(12);
        // 288·256·256 exceeds PAR_FLOP_THRESHOLD so the rayon path runs.
        let a = rand_mat(&mut rng, 288, 256);
        let b = rand_mat(&mut rng, 256, 256);
        let c = matmul(&a, &b);
        let r = matmul_naive(&a, &b);
        assert!(c.approx_eq(&r, 1e-3, 1e-3));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = TensorRng::seed_from(13);
        let a = rand_mat(&mut rng, 6, 10);
        let b = rand_mat(&mut rng, 8, 10);
        let c = matmul_nt(&a, &b);
        let r = matmul(&a, &b.transpose());
        assert!(c.approx_eq(&r, 1e-5, 1e-6));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = TensorRng::seed_from(17);
        let a = rand_mat(&mut rng, 10, 6);
        let b = rand_mat(&mut rng, 10, 8);
        let c = matmul_tn(&a, &b);
        let r = matmul(&a.transpose(), &b);
        assert!(c.approx_eq(&r, 1e-5, 1e-6));
    }

    #[test]
    fn matmul_tn_medium() {
        let mut rng = TensorRng::seed_from(19);
        let a = rand_mat(&mut rng, 90, 70);
        let b = rand_mat(&mut rng, 90, 66);
        let c = matmul_tn(&a, &b);
        let r = matmul(&a.transpose(), &b);
        assert!(c.approx_eq(&r, 1e-4, 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = TensorRng::seed_from(23);
        let a = rand_mat(&mut rng, 9, 9);
        let i = Matrix::identity(9);
        assert!(matmul(&a, &i).approx_eq(&a, 1e-6, 1e-7));
        assert!(matmul(&i, &a).approx_eq(&a, 1e-6, 1e-7));
    }

    #[test]
    fn nan_propagates_through_gemm() {
        // The fault study depends on IEEE semantics: a NaN in A poisons the
        // whole corresponding output row.
        let mut a = Matrix::full(3, 3, 1.0);
        a[(1, 1)] = f32::NAN;
        let b = Matrix::full(3, 3, 1.0);
        let c = matmul(&a, &b);
        for j in 0..3 {
            assert!(c[(1, j)].is_nan(), "row 1 must be NaN-poisoned");
            assert!(c[(0, j)].is_finite());
            assert!(c[(2, j)].is_finite());
        }
    }

    #[test]
    fn inf_propagates_through_gemm() {
        let mut a = Matrix::full(3, 3, 1.0);
        a[(0, 2)] = f32::INFINITY;
        let b = Matrix::full(3, 3, 2.0);
        let c = matmul(&a, &b);
        for j in 0..3 {
            assert_eq!(c[(0, j)], f32::INFINITY);
        }
    }

    #[test]
    fn inf_times_negative_gives_neg_inf() {
        let mut a = Matrix::full(1, 2, 1.0);
        a[(0, 0)] = f32::INFINITY;
        let b = Matrix::from_vec(2, 1, vec![-1.0, 0.5]);
        let c = matmul(&a, &b);
        assert_eq!(c[(0, 0)], f32::NEG_INFINITY);
    }

    #[test]
    fn dot_handles_remainder_lengths() {
        for n in 0..10 {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| (i + 1) as f32).collect();
            let expect: f32 = (0..n).map(|i| (i * (i + 1)) as f32).sum();
            assert_eq!(dot(&a, &b), expect, "n={n}");
        }
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    // ---------------- tiled-kernel and fused-encoding additions ----------

    /// Bit-exact reference for the accumulation-order contract of one
    /// output element.
    fn contract_dot(a_row: &[f32], b_col: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (ab, bb) in a_row.chunks(KC).zip(b_col.chunks(KC)) {
            let mut p = 0.0f32;
            for (&av, &bv) in ab.iter().zip(bb) {
                p += av * bv;
            }
            acc += p;
        }
        acc
    }

    #[test]
    fn elements_follow_the_kc_block_contract() {
        // k spans several KC blocks; every element must equal the blocked
        // partial-sum reference bit-for-bit.
        let mut rng = TensorRng::seed_from(29);
        let (m, k, n) = (5, 2 * KC + 37, 6);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, k, n);
        let c = matmul(&a, &b);
        let bt = b.transpose();
        for i in 0..m {
            for j in 0..n {
                let expect = contract_dot(a.row(i), bt.row(j));
                assert_eq!(
                    c[(i, j)].to_bits(),
                    expect.to_bits(),
                    "element ({i},{j}) broke the accumulation contract"
                );
            }
        }
    }

    #[test]
    fn nt_and_tn_share_the_contract() {
        let mut rng = TensorRng::seed_from(31);
        let k = KC + 51;
        let a = rand_mat(&mut rng, 4, k);
        let b = rand_mat(&mut rng, 3, k);
        let c = matmul_nt(&a, &b);
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(
                    c[(i, j)].to_bits(),
                    contract_dot(a.row(i), b.row(j)).to_bits()
                );
            }
        }
        let at = rand_mat(&mut rng, k, 4);
        let bt = rand_mat(&mut rng, k, 3);
        let ct = matmul_tn(&at, &bt);
        let at_t = at.transpose();
        let bt_t = bt.transpose();
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(
                    ct[(i, j)].to_bits(),
                    contract_dot(at_t.row(i), bt_t.row(j)).to_bits()
                );
            }
        }
    }

    #[test]
    fn element_bits_do_not_depend_on_neighbour_rows() {
        // Augmented (checksum-bordered) operands must carry the same data
        // bits as the plain product: per-element independence of m.
        let mut rng = TensorRng::seed_from(37);
        let a = rand_mat(&mut rng, 9, 70);
        let b = rand_mat(&mut rng, 70, 11);
        let c_full = matmul(&a, &b);
        let a_top = a.submatrix(0, 4, 0, 70);
        let c_top = matmul(&a_top, &b);
        for i in 0..4 {
            for j in 0..11 {
                assert_eq!(c_full[(i, j)].to_bits(), c_top[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn encode_cols_matches_manual_composition() {
        let mut rng = TensorRng::seed_from(41);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 4), (70, 150, 66), (130, 300, 9)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            let mut c = Matrix::zeros(m + 2, n);
            gemm_encode_cols_into(a.view(), b.view(), c.view_mut());
            // Data region is the plain product, bit for bit.
            let plain = matmul(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(c[(i, j)].to_bits(), plain[(i, j)].to_bits(), "{m}x{k}x{n}");
                }
            }
            // Checksum rows approximate v1ᵀ(A·B) up to GEMM round-off.
            for j in 0..n {
                let col_sum: f32 = (0..m).map(|i| plain[(i, j)]).sum();
                assert!(
                    (c[(m, j)] - col_sum).abs() <= 1e-3 + 1e-3 * col_sum.abs(),
                    "{m}x{k}x{n} col {j}: {} vs {col_sum}",
                    c[(m, j)]
                );
            }
        }
    }

    #[test]
    fn encode_rows_matches_manual_composition() {
        let mut rng = TensorRng::seed_from(43);
        for &(m, k, n) in &[(1, 1, 1), (6, 9, 5), (80, 140, 70)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            let mut c = Matrix::zeros(m, n + 2);
            gemm_encode_rows_into(a.view(), b.view(), c.view_mut());
            let plain = matmul(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(c[(i, j)].to_bits(), plain[(i, j)].to_bits(), "{m}x{k}x{n}");
                }
            }
            for i in 0..m {
                let row_sum: f32 = (0..n).map(|j| plain[(i, j)]).sum();
                assert!(
                    (c[(i, n)] - row_sum).abs() <= 1e-3 + 1e-3 * row_sum.abs(),
                    "{m}x{k}x{n} row {i}"
                );
            }
        }
    }

    #[test]
    fn zero_sized_dims_are_handled() {
        // k = 0: the empty sum is +0.0 everywhere.
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert!(crate::float::all_exactly_zero(c.data()));
        let mut ce = Matrix::full(5, 4, f32::NAN);
        gemm_encode_cols_into(a.view(), b.view(), ce.view_mut());
        assert!(crate::float::all_exactly_zero(ce.data()));
        // m = 0 encode: only checksum rows exist, and they are zero.
        let a0 = Matrix::zeros(0, 3);
        let b0 = rand_mat(&mut TensorRng::seed_from(47), 3, 4);
        let mut c0 = Matrix::full(2, 4, f32::NAN);
        gemm_encode_cols_into(a0.view(), b0.view(), c0.view_mut());
        assert!(crate::float::all_exactly_zero(c0.data()));
    }

    #[test]
    fn steady_state_gemm_is_allocation_free() {
        let mut rng = TensorRng::seed_from(53);
        let a = rand_mat(&mut rng, 33, 140);
        let b = rand_mat(&mut rng, 140, 21);
        let mut c = Matrix::zeros(33, 21);
        let mut ce = Matrix::zeros(35, 21);
        // Warm the arena with the exact kernel shapes…
        matmul_into(a.view(), b.view(), c.view_mut());
        gemm_encode_cols_into(a.view(), b.view(), ce.view_mut());
        let before = crate::workspace::thread_alloc_events();
        for _ in 0..5 {
            matmul_into(a.view(), b.view(), c.view_mut());
            gemm_encode_cols_into(a.view(), b.view(), ce.view_mut());
        }
        assert_eq!(
            crate::workspace::thread_alloc_events(),
            before,
            "steady-state GEMM must not allocate"
        );
    }

    // ---------------- paged-operand parity ----------------

    /// A paged copy of `mat` with deliberately awkward paging (block_rows
    /// not dividing the row count) plus `tail` border rows per block.
    fn paged_copy(mat: &Matrix, block_rows: usize, tail: usize) -> PagedKv {
        let mut kv = PagedKv::new(mat.cols(), tail, block_rows);
        for r in 0..mat.rows() {
            kv.push_row(mat.row(r));
        }
        kv
    }

    #[test]
    fn paged_nn_matches_dense_bits_across_kc_blocks() {
        // B paged along k with blocks that straddle KC boundaries; the
        // product must match the contiguous kernel bit for bit.
        let mut rng = TensorRng::seed_from(59);
        let (m, k, n) = (5, 2 * KC + 44, 7);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, k, n);
        for &block_rows in &[4usize, 16, 100] {
            let kv = paged_copy(&b, block_rows, 2);
            let mut c = Matrix::zeros(m, n);
            matmul_paged_into(a.view(), &kv, c.view_mut());
            let dense = matmul(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        c[(i, j)].to_bits(),
                        dense[(i, j)].to_bits(),
                        "block_rows={block_rows} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn paged_nt_matches_dense_bits_and_leaves_extra_cols_untouched() {
        let mut rng = TensorRng::seed_from(61);
        let (m, k, n) = (3, 40, 21);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, n, k);
        let kv = paged_copy(&b, 4, 2);
        // Output two columns wider than the product; sentinels must survive.
        let mut c = Matrix::full(m, n + 2, -7.5);
        matmul_nt_paged_into(a.view(), &kv, c.view_mut());
        let dense = matmul_nt(&a, &b);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(c[(i, j)].to_bits(), dense[(i, j)].to_bits(), "({i},{j})");
            }
            assert_eq!(c[(i, n)], -7.5);
            assert_eq!(c[(i, n + 1)], -7.5);
        }
    }

    #[test]
    fn paged_encode_cols_matches_dense_bits() {
        let mut rng = TensorRng::seed_from(67);
        let (m, k, n) = (6, KC + 19, 10);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, k, n);
        let kv = paged_copy(&b, 16, 0);
        let mut c = Matrix::zeros(m + 2, n);
        gemm_encode_cols_paged_into(a.view(), &kv, c.view_mut());
        let mut dense = Matrix::zeros(m + 2, n);
        gemm_encode_cols_into(a.view(), b.view(), dense.view_mut());
        for i in 0..m + 2 {
            for j in 0..n {
                assert_eq!(c[(i, j)].to_bits(), dense[(i, j)].to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn par_threshold_helper_does_not_overflow() {
        // usize::MAX³ wraps any fixed-width product; the helper must
        // saturate instead of panicking (debug) or wrapping to a tiny
        // value (release).
        assert!(exceeds_par_threshold(usize::MAX, usize::MAX, usize::MAX));
        assert!(exceeds_par_threshold(usize::MAX, 1, usize::MAX));
        assert!(!exceeds_par_threshold(2, 2, 2));
        assert!(exceeds_par_threshold(256, 256, 256));
        assert!(!exceeds_par_threshold(256, 256, 255));
    }
}
