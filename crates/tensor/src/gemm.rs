//! Blocked, parallel GEMM kernels.
//!
//! These kernels stand in for cuBLAS in the paper's setup. Three layout
//! variants cover everything attention and backprop need:
//!
//! * [`matmul`]      — `C = A · B`      (e.g. `X · W_Q`)
//! * [`matmul_nt`]   — `C = A · Bᵀ`     (e.g. `Q · Kᵀ`, `dY · Wᵀ`)
//! * [`matmul_tn`]   — `C = Aᵀ · B`     (e.g. `Xᵀ · dY` for weight grads)
//!
//! The `*_into` forms write into caller-provided views so batched tensors
//! ([`crate::Batch3`]) can run one GEMM per slot without allocation. All
//! kernels parallelise over output rows with rayon once the flop count
//! crosses [`PAR_FLOP_THRESHOLD`].
//!
//! IEEE-754 special values (INF/NaN) propagate through these kernels exactly
//! as they would through cuBLAS — multiplication and addition are performed
//! in the natural order — which is what the fault-propagation study relies
//! on.

use crate::matrix::Matrix;
use crate::view::{MatMut, MatRef};
use rayon::prelude::*;

/// Minimum `m*n*k` before the kernels split work across threads.
///
/// Deliberately high: on the few-core hosts this reproduction targets,
/// splitting sub-millisecond GEMMs across rayon workers produces bimodal
/// timings (thread park/unpark latency rivals the arithmetic) that swamp
/// the ABFT overheads being measured. Parallelism is instead applied at
/// the batch/campaign level, where tasks are tens of milliseconds.
pub const PAR_FLOP_THRESHOLD: usize = 256 * 256 * 256;

/// Cache-block edge for the k dimension.
const KC: usize = 128;

/// `C = A · B` into a fresh matrix.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a.view(), b.view(), c.view_mut());
    c
}

/// `C = A · Bᵀ` into a fresh matrix.
///
/// # Panics
/// Panics if `A.cols() != B.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    matmul_nt_into(a.view(), b.view(), c.view_mut());
    c
}

/// `C = Aᵀ · B` into a fresh matrix.
///
/// # Panics
/// Panics if `A.rows() != B.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    matmul_tn_into(a.view(), b.view(), c.view_mut());
    c
}

/// `C = A · B` writing into `c` (overwritten, not accumulated).
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_into(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows(), "matmul: inner dims {} vs {}", k, b.rows());
    assert_eq!(m, c.rows(), "matmul: output rows");
    assert_eq!(n, c.cols(), "matmul: output cols");

    c.fill(0.0);
    let a_data = a.data();
    let b_data = b.data();

    let row_kernel = |i: usize, c_row: &mut [f32]| {
        // ikj ordering: stream B rows, accumulate into the C row.
        // Vectorises well and keeps B traffic sequential.
        //
        // Zero A elements are NOT skipped: sparsity shortcuts would mask
        // NaN/INF propagation (0 * NaN = NaN), and the fault studies rely
        // on these kernels having faithful IEEE-754 semantics.
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            for kk in kb..kend {
                let aik = a_data[i * k + kk];
                let b_row = &b_data[kk * n..kk * n + n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    };

    if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
        c.data()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, c_row)| row_kernel(i, c_row));
    } else {
        for (i, c_row) in c.data().chunks_mut(n).enumerate() {
            row_kernel(i, c_row);
        }
    }
}

/// `C = A · Bᵀ` writing into `c`.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_nt_into(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.rows();
    assert_eq!(k, b.cols(), "matmul_nt: inner dims {} vs {}", k, b.cols());
    assert_eq!(m, c.rows(), "matmul_nt: output rows");
    assert_eq!(n, c.cols(), "matmul_nt: output cols");

    let a_data = a.data();
    let b_data = b.data();

    let row_kernel = |i: usize, c_row: &mut [f32]| {
        let a_row = &a_data[i * k..i * k + k];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b_data[j * k..j * k + k];
            *cv = dot(a_row, b_row);
        }
    };

    if m * n * k >= PAR_FLOP_THRESHOLD && m > 1 {
        c.data()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, c_row)| row_kernel(i, c_row));
    } else {
        for (i, c_row) in c.data().chunks_mut(n).enumerate() {
            row_kernel(i, c_row);
        }
    }
}

/// `C = Aᵀ · B` writing into `c`.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_tn_into(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (r, m) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(r, b.rows(), "matmul_tn: inner dims {} vs {}", r, b.rows());
    assert_eq!(m, c.rows(), "matmul_tn: output rows");
    assert_eq!(n, c.cols(), "matmul_tn: output cols");

    c.fill(0.0);
    let a_data = a.data();
    let b_data = b.data();

    if m * n * r >= PAR_FLOP_THRESHOLD && m > 1 {
        c.data()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, c_row)| {
                // C[i, :] = sum_t A[t, i] * B[t, :]
                for t in 0..r {
                    let ati = a_data[t * m + i];
                    let b_row = &b_data[t * n..t * n + n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += ati * bv;
                    }
                }
            });
    } else {
        // Sequential: outer-product accumulation keeps both A and B streams
        // sequential (better than per-output-row gather for small m).
        let c_data = c.data();
        for t in 0..r {
            let a_row = &a_data[t * m..t * m + m];
            let b_row = &b_data[t * n..t * n + n];
            for (i, &ati) in a_row.iter().enumerate() {
                let c_row = &mut c_data[i * n..i * n + n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += ati * bv;
                }
            }
        }
    }
}

/// Dense dot product with 4-lane unrolling.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let p = i * 4;
        s0 += a[p] * b[p];
        s1 += a[p + 1] * b[p + 1];
        s2 += a[p + 2] * b[p + 2];
        s3 += a[p + 3] * b[p + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Triple-loop reference GEMM used to validate the blocked kernels.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0;
            for t in 0..a.cols() {
                s += a[(i, t)] * b[(t, j)];
            }
            c[(i, j)] = s;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    fn rand_mat(rng: &mut TensorRng, r: usize, c: usize) -> Matrix {
        rng.uniform_matrix(r, c, -1.0, 1.0)
    }

    #[test]
    fn matmul_matches_naive_small() {
        let mut rng = TensorRng::seed_from(7);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 3, 9)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            let c = matmul(&a, &b);
            let r = matmul_naive(&a, &b);
            assert!(c.approx_eq(&r, 1e-5, 1e-6), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_matches_naive_medium() {
        let mut rng = TensorRng::seed_from(11);
        let a = rand_mat(&mut rng, 96, 80);
        let b = rand_mat(&mut rng, 80, 72);
        let c = matmul(&a, &b);
        let r = matmul_naive(&a, &b);
        assert!(c.approx_eq(&r, 1e-4, 1e-4));
    }

    #[test]
    fn matmul_matches_naive_parallel_path() {
        let mut rng = TensorRng::seed_from(12);
        // 288·256·256 exceeds PAR_FLOP_THRESHOLD so the rayon path runs.
        let a = rand_mat(&mut rng, 288, 256);
        let b = rand_mat(&mut rng, 256, 256);
        let c = matmul(&a, &b);
        let r = matmul_naive(&a, &b);
        assert!(c.approx_eq(&r, 1e-3, 1e-3));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = TensorRng::seed_from(13);
        let a = rand_mat(&mut rng, 6, 10);
        let b = rand_mat(&mut rng, 8, 10);
        let c = matmul_nt(&a, &b);
        let r = matmul(&a, &b.transpose());
        assert!(c.approx_eq(&r, 1e-5, 1e-6));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = TensorRng::seed_from(17);
        let a = rand_mat(&mut rng, 10, 6);
        let b = rand_mat(&mut rng, 10, 8);
        let c = matmul_tn(&a, &b);
        let r = matmul(&a.transpose(), &b);
        assert!(c.approx_eq(&r, 1e-5, 1e-6));
    }

    #[test]
    fn matmul_tn_medium() {
        let mut rng = TensorRng::seed_from(19);
        let a = rand_mat(&mut rng, 90, 70);
        let b = rand_mat(&mut rng, 90, 66);
        let c = matmul_tn(&a, &b);
        let r = matmul(&a.transpose(), &b);
        assert!(c.approx_eq(&r, 1e-4, 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = TensorRng::seed_from(23);
        let a = rand_mat(&mut rng, 9, 9);
        let i = Matrix::identity(9);
        assert!(matmul(&a, &i).approx_eq(&a, 1e-6, 1e-7));
        assert!(matmul(&i, &a).approx_eq(&a, 1e-6, 1e-7));
    }

    #[test]
    fn nan_propagates_through_gemm() {
        // The fault study depends on IEEE semantics: a NaN in A poisons the
        // whole corresponding output row.
        let mut a = Matrix::full(3, 3, 1.0);
        a[(1, 1)] = f32::NAN;
        let b = Matrix::full(3, 3, 1.0);
        let c = matmul(&a, &b);
        for j in 0..3 {
            assert!(c[(1, j)].is_nan(), "row 1 must be NaN-poisoned");
            assert!(c[(0, j)].is_finite());
            assert!(c[(2, j)].is_finite());
        }
    }

    #[test]
    fn inf_propagates_through_gemm() {
        let mut a = Matrix::full(3, 3, 1.0);
        a[(0, 2)] = f32::INFINITY;
        let b = Matrix::full(3, 3, 2.0);
        let c = matmul(&a, &b);
        for j in 0..3 {
            assert_eq!(c[(0, j)], f32::INFINITY);
        }
    }

    #[test]
    fn inf_times_negative_gives_neg_inf() {
        let mut a = Matrix::full(1, 2, 1.0);
        a[(0, 0)] = f32::INFINITY;
        let b = Matrix::from_vec(2, 1, vec![-1.0, 0.5]);
        let c = matmul(&a, &b);
        assert_eq!(c[(0, 0)], f32::NEG_INFINITY);
    }

    #[test]
    fn dot_handles_remainder_lengths() {
        for n in 0..10 {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| (i + 1) as f32).collect();
            let expect: f32 = (0..n).map(|i| (i * (i + 1)) as f32).sum();
            assert_eq!(dot(&a, &b), expect, "n={n}");
        }
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }
}
