//! Error types for shape mismatches.

use std::fmt;

/// Returned when matrix/tensor dimensions do not line up for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Name of the operation that failed, e.g. `"matmul"`.
    pub op: &'static str,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl ShapeError {
    /// Construct a new shape error for `op` with a formatted detail message.
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self {
            op,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error in `{}`: {}", self.op, self.detail)
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_op_and_detail() {
        let e = ShapeError::new("matmul", "2x3 * 4x5");
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3 * 4x5"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ShapeError::new("t", "d"));
    }
}
