//! Scans and reductions used by detection kernels and the fault study.

use crate::matrix::Matrix;

/// Index and value of the maximum-magnitude element of a slice.
///
/// NaN elements are treated as +INF magnitude (a NaN is always "the largest
/// suspect" when hunting for a corrupted element — matches the EEC-ABFT
/// locate-by-scan fallback).
pub fn argmax_abs(v: &[f32]) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in v.iter().enumerate() {
        let mag = if x.is_nan() { f32::INFINITY } else { x.abs() };
        match best {
            Some((_, bm)) if mag <= bm => {}
            _ => best = Some((i, mag)),
        }
    }
    best
}

/// First index whose value is NaN.
pub fn find_nan(v: &[f32]) -> Option<usize> {
    v.iter().position(|x| x.is_nan())
}

/// First index whose value is ±INF.
pub fn find_inf(v: &[f32]) -> Option<usize> {
    v.iter().position(|x| x.is_infinite())
}

/// Count elements that are NaN.
pub fn count_nan(v: &[f32]) -> usize {
    v.iter().filter(|x| x.is_nan()).count()
}

/// Count elements that are ±INF.
pub fn count_inf(v: &[f32]) -> usize {
    v.iter().filter(|x| x.is_infinite()).count()
}

/// Count finite elements whose magnitude exceeds `threshold` (the paper's
/// near-INF census).
pub fn count_above(v: &[f32], threshold: f32) -> usize {
    v.iter()
        .filter(|x| x.is_finite() && x.abs() > threshold)
        .count()
}

/// Kahan-compensated sum — used when validating checksum arithmetic against
/// the plain accumulation the kernels use.
pub fn kahan_sum(v: &[f32]) -> f32 {
    let mut sum = 0.0f32;
    let mut c = 0.0f32;
    for &x in v {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Mean of all matrix elements.
pub fn mean(m: &Matrix) -> f32 {
    if m.is_empty() {
        return 0.0;
    }
    m.data().iter().sum::<f32>() / m.len() as f32
}

/// Count of non-finite (INF or NaN) elements in a matrix.
pub fn count_nonfinite(m: &Matrix) -> usize {
    m.data().iter().filter(|x| !x.is_finite()).count()
}

/// Positions `(row, col)` of every element failing the predicate-of-health:
/// non-finite or (finite and `|x| > near_inf_threshold`).
pub fn extreme_positions(m: &Matrix, near_inf_threshold: f32) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for r in 0..m.rows() {
        for (c, &x) in m.row(r).iter().enumerate() {
            if !x.is_finite() || x.abs() > near_inf_threshold {
                out.push((r, c));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_abs_basic() {
        assert_eq!(argmax_abs(&[1.0, -5.0, 3.0]), Some((1, 5.0)));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn argmax_abs_prefers_nan() {
        let (i, _) = argmax_abs(&[1e30, f32::NAN, 2.0]).unwrap();
        assert_eq!(i, 1);
    }

    #[test]
    fn argmax_abs_inf_beats_finite() {
        let (i, m) = argmax_abs(&[1e38, f32::NEG_INFINITY, 2.0]).unwrap();
        assert_eq!(i, 1);
        assert_eq!(m, f32::INFINITY);
    }

    #[test]
    fn finders_and_counters() {
        let v = [1.0, f32::NAN, f32::INFINITY, -2.0, f32::NEG_INFINITY];
        assert_eq!(find_nan(&v), Some(1));
        assert_eq!(find_inf(&v), Some(2));
        assert_eq!(count_nan(&v), 1);
        assert_eq!(count_inf(&v), 2);
    }

    #[test]
    fn count_above_excludes_nonfinite() {
        let v = [1e12, f32::INFINITY, f32::NAN, 5.0];
        assert_eq!(count_above(&v, 1e10), 1);
    }

    #[test]
    fn kahan_beats_naive_on_drift() {
        // 10_000 + 1000 × 0.01: naive f32 accumulation drifts by rounding at
        // each add; Kahan compensation keeps the result near-exact.
        let mut v = vec![10_000.0f32];
        v.extend(std::iter::repeat_n(0.01f32, 1000));
        let exact = 10_010.0f32;
        let naive: f32 = v.iter().sum();
        let kahan = kahan_sum(&v);
        assert!((kahan - exact).abs() <= (naive - exact).abs());
        assert!((kahan - exact).abs() < 5e-3, "kahan={kahan}");
    }

    #[test]
    fn extreme_positions_finds_all() {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 1)] = f32::NAN;
        m[(2, 2)] = 1e12;
        m[(1, 0)] = f32::NEG_INFINITY;
        let mut pos = extreme_positions(&m, 1e10);
        pos.sort();
        assert_eq!(pos, vec![(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&Matrix::zeros(0, 5)), 0.0);
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mean(&m), 2.5);
    }
}
