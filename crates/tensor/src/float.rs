//! Named exact-float comparisons.
//!
//! A raw `x == 0.0` in the middle of numeric code is ambiguous: is it a
//! tolerance bug, or a deliberate sentinel/short-circuit test? These
//! helpers give the deliberate cases a name — "this value is *bit-for-bit*
//! the result of summing nothing / an all-zero row / a disabled gate" —
//! and the `float-eq` lint points every other raw comparison here.
//!
//! All helpers treat `+0.0` and `-0.0` as zero (IEEE-754 `==` semantics,
//! which is what the masked-row and gate-off contracts want) and are
//! `false` for NaN.

/// True when `x` is exactly `±0.0` (never true for NaN).
///
/// Use for sentinel tests where zero is produced structurally — an empty
/// reduction, a fully masked row, a gate frequency of literal `0.0` —
/// not for "small enough" tolerance checks.
#[inline]
#[must_use]
pub fn exactly_zero(x: f32) -> bool {
    // attn-lint: allow(float-eq) — this is the named helper the lint points to
    x == 0.0
}

/// `f64` twin of [`exactly_zero`], for accumulator/telemetry code.
#[inline]
#[must_use]
pub fn exactly_zero_f64(x: f64) -> bool {
    // attn-lint: allow(float-eq) — this is the named helper the lint points to
    x == 0.0
}

/// True when every element of `xs` is exactly `±0.0`.
///
/// The vectorised form of [`exactly_zero`]; used for "was this row fully
/// masked / never written" checks.
#[inline]
#[must_use]
pub fn all_exactly_zero(xs: &[f32]) -> bool {
    xs.iter().copied().all(exactly_zero)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_signs_and_nan() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(f32::NAN));
        assert!(!exactly_zero(f32::MIN_POSITIVE));
        assert!(!exactly_zero(1e-45)); // smallest subnormal
        assert!(exactly_zero_f64(0.0));
        assert!(exactly_zero_f64(-0.0));
        assert!(!exactly_zero_f64(f64::NAN));
        assert!(!exactly_zero_f64(5e-324)); // smallest subnormal
    }

    #[test]
    fn slices() {
        assert!(all_exactly_zero(&[]));
        assert!(all_exactly_zero(&[0.0, -0.0, 0.0]));
        assert!(!all_exactly_zero(&[0.0, 1.0e-30]));
        assert!(!all_exactly_zero(&[f32::NAN]));
    }
}
