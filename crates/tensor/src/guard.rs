//! Invariant-screened guards for the non-GEMM operators.
//!
//! Exact checksum transport stops at a nonlinearity: softmax, LayerNorm,
//! and GELU all destroy the linear relation a ride-along checksum
//! encodes, so the guarded wrappers here use a two-tier scheme instead:
//!
//! 1. a **cheap invariant screen** over the op's output — softmax rows
//!    sum to one, LayerNorm's normalised rows have ~zero mean and unit
//!    variance, GELU output is bounded by its input, residual adds and
//!    embedding gathers transport an `f64` row sum;
//! 2. on a screen violation, an **exact recompute from the preserved
//!    inputs**, adopted only when it differs *bitwise* from the live
//!    output.
//!
//! The bitwise gate is what makes false positives structurally zero: a
//! screen that trips on tolerance (or on legitimately non-finite inputs
//! propagating through — which the screens cannot distinguish from a
//! fault) recomputes a bit-identical value and records nothing, while a
//! genuine fault striking between compute and check recomputes the
//! fault-free bits. A heal is therefore always an exact correction, and
//! a corrected step is bit-identical to a fault-free step.
//!
//! Every op ships as a `verify_*` entry (screen + heal an existing
//! output against its preserved inputs — what the fault campaigns drive
//! directly) plus a `*_checked` wrapper (compute + verify — what the
//! model paths call).
//!
//! attn-lint: hot-path

use crate::matrix::Matrix;
use crate::ops::{
    gelu, gelu_backward, layer_norm, layer_norm_backward, softmax_rows_backward,
    softmax_rows_inplace, LayerNormCache,
};
use std::cell::Cell;

/// Lower bound of the GELU range (the true minimum is ≈ −0.1700 at
/// x ≈ −0.7509); anything below it cannot be a GELU output.
const GELU_MIN_OUT: f32 = -0.2;

/// Upper bound on |gelu′(x)| (the true maximum is ≈ 1.0836); `|dx|` from
/// the GELU backward can never exceed this multiple of `|dy|`.
const GELU_GRAD_BOUND: f32 = 1.13;

/// Activity counters one [`OpGuard`] accumulates; folded into the step
/// report via `AbftReport::absorb_op_guard`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Invariant screens evaluated (one per guarded row).
    pub checks: usize,
    /// Screens whose exact recompute differed bitwise from the live
    /// output — i.e. genuine detections, never tolerance trips.
    pub detections: usize,
    /// Exact recomputes adopted. Equals `detections` for the invariant
    /// guards: recomputing from preserved inputs *is* the heal.
    pub heals: usize,
    /// Detections that could not be healed (multi-cell corruption beyond
    /// the guard's locate-and-restore capability).
    pub unrecovered: usize,
}

impl GuardStats {
    /// Accumulate another guard's counters.
    pub fn merge(&mut self, other: GuardStats) {
        self.checks += other.checks;
        self.detections += other.detections;
        self.heals += other.heals;
        self.unrecovered += other.unrecovered;
    }

    /// True when no screen ever found a bitwise deviation.
    pub fn is_quiet(&self) -> bool {
        self.detections == 0 && self.unrecovered == 0
    }
}

/// A whole-step guard scope for the non-GEMM operators.
///
/// One `OpGuard` is opened per step (or per layer/item where a step does
/// not thread one through) and shared by reference across every checked
/// wrapper; stats accumulate through a [`Cell`] so the guard can be
/// borrowed immutably alongside the tensors it protects. An inactive
/// guard makes every wrapper a pass-through of the plain op — the same
/// convention as an inactive `GuardedSection` around a GEMM.
#[derive(Debug, Default)]
pub struct OpGuard {
    active: bool,
    tol: f32,
    stats: Cell<GuardStats>,
}

impl OpGuard {
    /// Build a guard; `tol` scales every invariant screen (a typical
    /// value is the ABFT detection tolerance, ~5e-4).
    pub fn new(active: bool, tol: f32) -> Self {
        Self {
            active,
            tol,
            stats: Cell::new(GuardStats::default()),
        }
    }

    /// A disabled guard: every checked wrapper degenerates to the plain
    /// op (used by baseline paths and delegating plain APIs).
    pub fn off() -> Self {
        Self::new(false, 0.0)
    }

    /// Does this guard screen at all?
    pub fn active(&self) -> bool {
        self.active
    }

    /// Screen tolerance.
    pub fn tol(&self) -> f32 {
        self.tol
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> GuardStats {
        self.stats.get()
    }

    /// Drain the counters (for folding into a step report).
    pub fn take_stats(&self) -> GuardStats {
        self.stats.replace(GuardStats::default())
    }

    fn bump(&self, f: impl FnOnce(&mut GuardStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    fn record_check(&self) {
        self.bump(|s| s.checks += 1);
    }

    fn record_heal(&self) {
        self.bump(|s| {
            s.detections += 1;
            s.heals += 1;
        });
    }

    /// Record one screen evaluation performed by a guard whose logic
    /// lives outside this module (e.g. the optimizer moment guard).
    pub fn record_external_check(&self) {
        self.record_check();
    }

    /// Record one externally-performed exact heal.
    pub fn record_external_heal(&self) {
        self.record_heal();
    }

    /// Record a detection the caller could not restore (multi-cell
    /// corruption beyond a locate-and-restore guard's capability).
    pub fn record_unrecovered(&self) {
        self.bump(|s| {
            s.detections += 1;
            s.unrecovered += 1;
        });
    }
}

/// Adopt `reference` into row `r` of `y` iff it differs bitwise; records
/// a detection + heal on the guard when it does.
fn heal_row_bitwise(y: &mut Matrix, r: usize, reference: &[f32], g: &OpGuard) {
    if bits_differ(y.row(r), reference) {
        y.row_mut(r).copy_from_slice(reference);
        g.record_heal();
    }
}

fn bits_differ(a: &[f32], b: &[f32]) -> bool {
    a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits())
}

/// One-row matrix copy of row `r` of `x` — recompute scratch, built only
/// on a screen violation.
fn row_matrix(x: &Matrix, r: usize) -> Matrix {
    // attn-lint: allow(hot-path-alloc) — recompute scratch, built only on a screen violation
    Matrix::from_vec(1, x.cols(), x.row(r).to_vec())
}

// ---------------------------------------------------------------------------
// softmax
// ---------------------------------------------------------------------------

/// Does this row look like a softmax output? All entries in `[0, 1]` and
/// summing to ~1 — or exactly zero everywhere (a fully-masked row).
fn softmax_row_screen(row: &[f32], tol: f32) -> bool {
    let mut sum = 0.0f32;
    for &v in row {
        // NaN fails the range test, so poisoned rows always re-verify.
        if !(0.0..=1.0).contains(&v) {
            return false;
        }
        sum += v;
    }
    (sum - 1.0).abs() <= tol || crate::float::all_exactly_zero(row)
}

/// Screen + heal a softmax output `y` against its preserved pre-softmax
/// input `x` (post-mask scores). Rows failing the row-sum screen are
/// recomputed from `x`; the recompute is adopted only when it differs
/// bitwise (see the module docs for why this cannot false-positive).
///
/// # Panics
/// Panics on shape mismatch.
pub fn verify_softmax_rows(x: &Matrix, y: &mut Matrix, g: &OpGuard) {
    if !g.active() {
        return;
    }
    assert_eq!(
        (x.rows(), x.cols()),
        (y.rows(), y.cols()),
        "verify_softmax_rows: shape mismatch"
    );
    for r in 0..y.rows() {
        g.record_check();
        if softmax_row_screen(y.row(r), g.tol()) {
            continue;
        }
        let mut reference = row_matrix(x, r);
        softmax_rows_inplace(&mut reference);
        heal_row_bitwise(y, r, reference.row(0), g);
    }
}

/// Guarded row softmax: compute, then screen/heal against the input.
pub fn softmax_rows_checked(x: &Matrix, g: &OpGuard) -> Matrix {
    // attn-lint: allow(hot-path-alloc) — owned-result convenience form, same contract as softmax_rows
    let mut y = x.clone();
    softmax_rows_inplace(&mut y);
    verify_softmax_rows(x, &mut y, g);
    y
}

/// Guarded in-place row softmax. While the guard is active the
/// pre-softmax scores are snapshotted so a screen violation can
/// recompute exactly.
pub fn softmax_rows_checked_inplace(x: &mut Matrix, g: &OpGuard) {
    if !g.active() {
        softmax_rows_inplace(x);
        return;
    }
    // attn-lint: allow(hot-path-alloc) — guard snapshot: the pre-softmax scores are the recompute input
    let snapshot = x.clone();
    softmax_rows_inplace(x);
    verify_softmax_rows(&snapshot, x, g);
}

/// Screen + heal a softmax-backward output `dx` against `(y, dy)`. The
/// invariant: rows of a softmax Jacobian product sum to zero
/// (`Σ_c y_c(dy_c − s) = s − s·Σy = 0` when `Σy = 1`).
pub fn verify_softmax_backward(y: &Matrix, dy: &Matrix, dx: &mut Matrix, g: &OpGuard) {
    if !g.active() {
        return;
    }
    for r in 0..dx.rows() {
        g.record_check();
        if zero_rowsum_screen(dx.row(r), g.tol()) {
            continue;
        }
        let reference = softmax_rows_backward(&row_matrix(y, r), &row_matrix(dy, r));
        heal_row_bitwise(dx, r, reference.row(0), g);
    }
}

/// Guarded softmax backward; see [`verify_softmax_backward`].
pub fn softmax_rows_backward_checked(y: &Matrix, dy: &Matrix, g: &OpGuard) -> Matrix {
    let mut dx = softmax_rows_backward(y, dy);
    verify_softmax_backward(y, dy, &mut dx, g);
    dx
}

/// All-finite row summing to ~zero (scaled by the row's absolute mass).
fn zero_rowsum_screen(row: &[f32], tol: f32) -> bool {
    let mut sum = 0.0f64;
    let mut scale = 0.0f64;
    for &v in row {
        if !v.is_finite() {
            return false;
        }
        sum += f64::from(v);
        scale += f64::from(v.abs());
    }
    sum.abs() <= f64::from(tol) * (1.0 + scale)
}

// ---------------------------------------------------------------------------
// layer norm
// ---------------------------------------------------------------------------

/// Does this row of normalised activations have ~zero mean and ~unit
/// variance (the LayerNorm invariant), and does the affine output
/// mirror it bitwise? The variance band is widened by 100× the
/// tolerance: with `d` summands its estimate is much noisier than the
/// mean's. The affine stage (`n·γ + β`) is cheap, so it is re-derived
/// from the screened normalised row and compared bit-for-bit — strict
/// IEEE `f32` arithmetic makes the mirror exact fault-free. The same
/// mirror trick re-derives the normalised row from `(x, mean, inv_std)`,
/// so a corrupted cached statistic breaks the chain and is caught too;
/// only the expensive row reductions (mean/variance) go unduplicated.
#[allow(clippy::too_many_arguments)]
fn layer_norm_row_screen(
    x: &[f32],
    mean: f32,
    inv_std: f32,
    normalized: &[f32],
    out: &[f32],
    gamma: &[f32],
    beta: &[f32],
    tol: f32,
) -> bool {
    let d = normalized.len() as f64;
    let mut sum = 0.0f64;
    let mut sq = 0.0f64;
    for &v in normalized {
        if !v.is_finite() {
            return false;
        }
        sum += f64::from(v);
        sq += f64::from(v) * f64::from(v);
    }
    let m = sum / d;
    let var = sq / d;
    if m.abs() > f64::from(tol) || (var - 1.0).abs() > 100.0 * f64::from(tol) {
        return false;
    }
    x.iter()
        .zip(normalized)
        .zip(out)
        .zip(gamma.iter().zip(beta))
        .all(|(((&xi, &n), &o), (&gc, &bc))| {
            ((xi - mean) * inv_std).to_bits() == n.to_bits()
                && (n * gc + bc).to_bits() == o.to_bits()
        })
}

/// Screen + heal a LayerNorm output and its cache against the preserved
/// input `x`: every row's normalised activations must have ~zero mean
/// and ~unit variance and the affine output must be finite. A violating
/// row is recomputed — output, cache statistics and all.
pub fn verify_layer_norm(
    x: &Matrix,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut Matrix,
    cache: &mut LayerNormCache,
    g: &OpGuard,
) {
    if !g.active() {
        return;
    }
    for r in 0..out.rows() {
        g.record_check();
        let stats_ok = cache.mean[r].is_finite() && cache.inv_std[r].is_finite();
        if stats_ok
            && layer_norm_row_screen(
                x.row(r),
                cache.mean[r],
                cache.inv_std[r],
                cache.normalized.row(r),
                out.row(r),
                gamma,
                beta,
                g.tol(),
            )
        {
            continue;
        }
        let (ref_out, ref_cache) = layer_norm(&row_matrix(x, r), gamma, beta, eps);
        let differs = bits_differ(out.row(r), ref_out.row(0))
            || bits_differ(cache.normalized.row(r), ref_cache.normalized.row(0))
            || cache.mean[r].to_bits() != ref_cache.mean[0].to_bits()
            || cache.inv_std[r].to_bits() != ref_cache.inv_std[0].to_bits();
        if differs {
            out.row_mut(r).copy_from_slice(ref_out.row(0));
            cache
                .normalized
                .row_mut(r)
                .copy_from_slice(ref_cache.normalized.row(0));
            cache.mean[r] = ref_cache.mean[0];
            cache.inv_std[r] = ref_cache.inv_std[0];
            g.record_heal();
        }
    }
}

/// Guarded LayerNorm; see [`verify_layer_norm`].
pub fn layer_norm_checked(
    x: &Matrix,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    g: &OpGuard,
) -> (Matrix, LayerNormCache) {
    let (mut out, mut cache) = layer_norm(x, gamma, beta, eps);
    verify_layer_norm(x, gamma, beta, eps, &mut out, &mut cache, g);
    (out, cache)
}

/// Screen + heal a LayerNorm backward result against its inputs. Screen:
/// `dx` rows sum to ~zero (both the mean-subtraction and the
/// normalised-projection term cancel row-wise, since the normalised row
/// itself has zero mean). `dgamma`/`dbeta` accumulate across rows, so a
/// violation recomputes the whole backward to stay bit-identical.
pub fn verify_layer_norm_backward(
    dy: &Matrix,
    cache: &LayerNormCache,
    gamma: &[f32],
    dx: &mut Matrix,
    dgamma: &mut Vec<f32>,
    dbeta: &mut Vec<f32>,
    g: &OpGuard,
) {
    if !g.active() {
        return;
    }
    let mut violated = false;
    for r in 0..dx.rows() {
        g.record_check();
        // A non-finite upstream gradient legitimately breaks the row-sum
        // identity; the recompute below resolves propagation vs fault.
        if !zero_rowsum_screen(dx.row(r), g.tol()) {
            violated = true;
        }
    }
    if !violated {
        return;
    }
    let (ref_dx, ref_dgamma, ref_dbeta) = layer_norm_backward(dy, cache, gamma);
    let differs = bits_differ(dx.data(), ref_dx.data())
        || bits_differ(dgamma, &ref_dgamma)
        || bits_differ(dbeta, &ref_dbeta);
    if differs {
        *dx = ref_dx;
        *dgamma = ref_dgamma;
        *dbeta = ref_dbeta;
        g.record_heal();
    }
}

/// Guarded LayerNorm backward; see [`verify_layer_norm_backward`].
pub fn layer_norm_backward_checked(
    dy: &Matrix,
    cache: &LayerNormCache,
    gamma: &[f32],
    g: &OpGuard,
) -> (Matrix, Vec<f32>, Vec<f32>) {
    let (mut dx, mut dgamma, mut dbeta) = layer_norm_backward(dy, cache, gamma);
    verify_layer_norm_backward(dy, cache, gamma, &mut dx, &mut dgamma, &mut dbeta, g);
    (dx, dgamma, dbeta)
}

// ---------------------------------------------------------------------------
// GELU
// ---------------------------------------------------------------------------

/// Element screen: a GELU output is finite, bounded below by the global
/// GELU minimum and above by `max(x, 0)`. Non-finite inputs defer to the
/// recompute (propagation recomputes identically).
fn gelu_elem_screen(x: f32, y: f32, tol: f32) -> bool {
    x.is_finite() && y.is_finite() && y >= GELU_MIN_OUT - tol && y <= x.max(0.0) + tol
}

/// Screen + heal a GELU output `y` against its preserved input `x`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn verify_gelu(x: &Matrix, y: &mut Matrix, g: &OpGuard) {
    if !g.active() {
        return;
    }
    assert_eq!(
        (x.rows(), x.cols()),
        (y.rows(), y.cols()),
        "verify_gelu: shape mismatch"
    );
    for r in 0..y.rows() {
        g.record_check();
        let ok = x
            .row(r)
            .iter()
            .zip(y.row(r))
            .all(|(&xi, &yi)| gelu_elem_screen(xi, yi, g.tol()));
        if ok {
            continue;
        }
        let reference: Vec<f32> = x.row(r).iter().map(|&v| gelu(v)).collect();
        heal_row_bitwise(y, r, &reference, g);
    }
}

/// Guarded element-wise GELU.
pub fn gelu_matrix_checked(x: &Matrix, g: &OpGuard) -> Matrix {
    let mut y = x.map(gelu);
    verify_gelu(x, &mut y, g);
    y
}

/// Guarded in-place GELU (snapshots the input while the guard is active
/// so violations can recompute exactly).
pub fn gelu_matrix_checked_inplace(m: &mut Matrix, g: &OpGuard) {
    if !g.active() {
        for v in m.data_mut() {
            *v = gelu(*v);
        }
        return;
    }
    // attn-lint: allow(hot-path-alloc) — guard snapshot: the pre-activation is the recompute input
    let snapshot = m.clone();
    for v in m.data_mut() {
        *v = gelu(*v);
    }
    verify_gelu(&snapshot, m, g);
}

/// Screen + heal a GELU-backward output `dx` against `(x, dy)`:
/// `|dx| ≤ sup|gelu′| · |dy|` element-wise.
pub fn verify_gelu_backward(x: &Matrix, dy: &Matrix, dx: &mut Matrix, g: &OpGuard) {
    if !g.active() {
        return;
    }
    for r in 0..dx.rows() {
        g.record_check();
        let ok = dx
            .row(r)
            .iter()
            .zip(dy.row(r))
            .zip(x.row(r))
            .all(|((&di, &dyi), &xi)| {
                xi.is_finite()
                    && dyi.is_finite()
                    && di.abs() <= GELU_GRAD_BOUND * dyi.abs() + g.tol()
            });
        if ok {
            continue;
        }
        let reference = gelu_backward(&row_matrix(x, r), &row_matrix(dy, r));
        heal_row_bitwise(dx, r, reference.row(0), g);
    }
}

/// Guarded GELU backward; see [`verify_gelu_backward`].
pub fn gelu_backward_checked(x: &Matrix, dy: &Matrix, g: &OpGuard) -> Matrix {
    let mut dx = gelu_backward(x, dy);
    verify_gelu_backward(x, dy, &mut dx, g);
    dx
}

// ---------------------------------------------------------------------------
// residual add / embedding gather
// ---------------------------------------------------------------------------

/// Screen + heal one row of an element-wise sum `out = a + b` through an
/// `f64` row-sum transport: `Σ(a) + Σ(b)` must match `Σ(out)` to within
/// the accumulated rounding budget. Violations recompute element-wise
/// and heal on bitwise difference. Shared by the residual-add guard and
/// the embedding gather guard (whose rows are `tok[t] + pos[p]`).
///
/// # Panics
/// Panics on length mismatch.
pub fn verify_rowsum_add(a: &[f32], b: &[f32], out: &mut [f32], g: &OpGuard) {
    if !g.active() {
        return;
    }
    assert_eq!(a.len(), b.len(), "verify_rowsum_add: length mismatch");
    assert_eq!(a.len(), out.len(), "verify_rowsum_add: length mismatch");
    g.record_check();
    let mut want = 0.0f64;
    let mut have = 0.0f64;
    let mut scale = 0.0f64;
    for ((&ai, &bi), &oi) in a.iter().zip(b).zip(out.iter()) {
        want += f64::from(ai) + f64::from(bi);
        have += f64::from(oi);
        scale += f64::from(oi.abs());
    }
    let ok = want.is_finite()
        && have.is_finite()
        && (want - have).abs() <= f64::from(g.tol()) * (1.0 + scale);
    if ok {
        return;
    }
    let mut healed = false;
    for ((&ai, &bi), oi) in a.iter().zip(b).zip(out.iter_mut()) {
        let reference = ai + bi;
        if reference.to_bits() != oi.to_bits() {
            *oi = reference;
            healed = true;
        }
    }
    if healed {
        g.record_heal();
    }
}

/// Guarded residual add `a + b` with per-row `f64` sum transport.
///
/// # Panics
/// Panics on shape mismatch.
pub fn residual_add_checked(a: &Matrix, b: &Matrix, g: &OpGuard) -> Matrix {
    let mut out = a.add(b);
    if !g.active() {
        return out;
    }
    for r in 0..a.rows() {
        verify_rowsum_add(a.row(r), b.row(r), out.row_mut(r), g);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gelu_matrix, softmax_rows};
    use crate::rng::TensorRng;

    fn guard() -> OpGuard {
        OpGuard::new(true, 5e-4)
    }

    #[test]
    fn fault_free_softmax_is_bit_identical_and_quiet() {
        let mut rng = TensorRng::seed_from(1);
        let x = rng.normal_matrix(6, 16, 3.0);
        let g = guard();
        let y = softmax_rows_checked(&x, &g);
        let reference = softmax_rows(&x);
        assert_eq!(y.data(), reference.data());
        let s = g.stats();
        assert_eq!(s.checks, 6);
        assert!(s.is_quiet(), "{s:?}");
        assert_eq!(s.heals, 0);
    }

    #[test]
    fn extreme_faults_in_softmax_output_are_detected_and_healed_exactly() {
        let mut rng = TensorRng::seed_from(2);
        let x = rng.normal_matrix(4, 8, 2.0);
        let reference = softmax_rows(&x);
        for fault in [f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 3.0e12] {
            let g = guard();
            let mut y = reference.clone();
            y[(2, 5)] = fault;
            verify_softmax_rows(&x, &mut y, &g);
            assert_eq!(y.data(), reference.data(), "fault {fault} not healed");
            assert_eq!(g.stats().detections, 1);
            assert_eq!(g.stats().heals, 1);
        }
    }

    #[test]
    fn poisoned_softmax_input_recomputes_identically_without_detection() {
        // Propagation, not a fault at this op: the NaN row recomputes to
        // the same NaN row, so nothing is detected or healed here.
        let mut x = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.3);
        x[(1, 2)] = f32::NAN;
        let g = guard();
        let y = softmax_rows_checked(&x, &g);
        assert!(y.row(1).iter().all(|v| v.is_nan()));
        assert!(g.stats().is_quiet());
        assert_eq!(g.stats().heals, 0);
    }

    #[test]
    fn fully_masked_softmax_row_passes_the_screen() {
        let x = Matrix::from_vec(1, 3, vec![f32::NEG_INFINITY; 3]);
        let g = guard();
        let y = softmax_rows_checked(&x, &g);
        assert!(crate::float::all_exactly_zero(y.row(0)));
        assert!(g.stats().is_quiet());
    }

    #[test]
    fn inplace_softmax_matches_plain_and_snapshot_free_path() {
        let mut rng = TensorRng::seed_from(3);
        let x = rng.normal_matrix(5, 12, 1.5);
        let mut a = x.clone();
        let g = guard();
        softmax_rows_checked_inplace(&mut a, &g);
        assert_eq!(a.data(), softmax_rows(&x).data());
        assert!(g.stats().is_quiet());
        // Inactive guard takes the snapshot-free path.
        let mut b = x.clone();
        softmax_rows_checked_inplace(&mut b, &OpGuard::off());
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn softmax_backward_guard_heals_planted_extremes() {
        let mut rng = TensorRng::seed_from(4);
        let y = softmax_rows(&rng.normal_matrix(3, 6, 1.0));
        let dy = rng.normal_matrix(3, 6, 1.0);
        let reference = softmax_rows_backward(&y, &dy);
        let g = guard();
        let clean = softmax_rows_backward_checked(&y, &dy, &g);
        assert_eq!(clean.data(), reference.data());
        assert!(g.stats().is_quiet());

        for fault in [f32::INFINITY, f32::NAN, 4.0e12] {
            let g = guard();
            let mut dx = reference.clone();
            dx[(1, 4)] = fault;
            verify_softmax_backward(&y, &dy, &mut dx, &g);
            assert_eq!(dx.data(), reference.data(), "fault {fault} not healed");
            assert_eq!(g.stats().heals, 1);
        }
    }

    #[test]
    fn layer_norm_guard_is_bit_identical_fault_free() {
        let mut rng = TensorRng::seed_from(5);
        let x = rng.normal_matrix(4, 32, 2.0);
        let gamma = vec![1.1f32; 32];
        let beta = vec![0.2f32; 32];
        let (ref_out, ref_cache) = layer_norm(&x, &gamma, &beta, 1e-5);
        let g = guard();
        let (out, cache) = layer_norm_checked(&x, &gamma, &beta, 1e-5, &g);
        assert_eq!(out.data(), ref_out.data());
        assert_eq!(cache.normalized.data(), ref_cache.normalized.data());
        assert_eq!(cache.mean, ref_cache.mean);
        assert_eq!(cache.inv_std, ref_cache.inv_std);
        assert!(g.stats().is_quiet(), "{:?}", g.stats());
    }

    #[test]
    fn layer_norm_guard_heals_faults_in_output_cache_and_stats() {
        let mut rng = TensorRng::seed_from(11);
        let x = rng.normal_matrix(4, 16, 2.0);
        let gamma = vec![0.9f32; 16];
        let beta = vec![-0.1f32; 16];
        let (ref_out, ref_cache) = layer_norm(&x, &gamma, &beta, 1e-5);
        for fault in [f32::INFINITY, f32::NEG_INFINITY, f32::NAN, -2.0e11] {
            // Fault in the affine output.
            let g = guard();
            let (mut out, mut cache) = (ref_out.clone(), ref_cache.clone());
            out[(2, 7)] = fault;
            verify_layer_norm(&x, &gamma, &beta, 1e-5, &mut out, &mut cache, &g);
            assert_eq!(out.data(), ref_out.data(), "out fault {fault} not healed");
            assert_eq!(g.stats().heals, 1);

            // Fault in the cached normalised activations.
            let g = guard();
            let (mut out, mut cache) = (ref_out.clone(), ref_cache.clone());
            cache.normalized[(0, 3)] = fault;
            verify_layer_norm(&x, &gamma, &beta, 1e-5, &mut out, &mut cache, &g);
            assert_eq!(
                cache.normalized.data(),
                ref_cache.normalized.data(),
                "cache fault {fault} not healed"
            );
            assert_eq!(g.stats().heals, 1);

            // Fault in the cached row statistics.
            let g = guard();
            let (mut out, mut cache) = (ref_out.clone(), ref_cache.clone());
            cache.inv_std[1] = fault;
            verify_layer_norm(&x, &gamma, &beta, 1e-5, &mut out, &mut cache, &g);
            assert_eq!(
                cache.inv_std, ref_cache.inv_std,
                "stat fault {fault} not healed"
            );
            assert_eq!(g.stats().heals, 1);
        }
    }

    #[test]
    fn layer_norm_backward_guard_heals_injected_grad_faults() {
        let mut rng = TensorRng::seed_from(12);
        let x = rng.normal_matrix(3, 8, 2.0);
        let gamma: Vec<f32> = (0..8).map(|i| 0.5 + 0.1 * i as f32).collect();
        let beta = vec![0.0f32; 8];
        let dy = rng.normal_matrix(3, 8, 1.0);
        let (_, cache) = layer_norm(&x, &gamma, &beta, 1e-5);
        let (ref_dx, ref_dgamma, ref_dbeta) = layer_norm_backward(&dy, &cache, &gamma);

        let g = guard();
        let (dx, dgamma, dbeta) = layer_norm_backward_checked(&dy, &cache, &gamma, &g);
        assert_eq!(dx.data(), ref_dx.data());
        assert_eq!(dgamma, ref_dgamma);
        assert_eq!(dbeta, ref_dbeta);
        assert!(g.stats().is_quiet());

        for fault in [f32::INFINITY, f32::NAN, 9.0e13] {
            let g = guard();
            let mut dx = ref_dx.clone();
            let mut dgamma = ref_dgamma.clone();
            let mut dbeta = ref_dbeta.clone();
            dx[(1, 5)] = fault;
            verify_layer_norm_backward(&dy, &cache, &gamma, &mut dx, &mut dgamma, &mut dbeta, &g);
            assert_eq!(dx.data(), ref_dx.data(), "fault {fault} not healed");
            assert_eq!(g.stats().heals, 1);
        }
    }

    #[test]
    fn gelu_guard_detects_and_heals_planted_extremes() {
        let mut rng = TensorRng::seed_from(6);
        let x = rng.normal_matrix(3, 10, 2.0);
        let reference = gelu_matrix(&x);
        for fault in [f32::INFINITY, f32::NAN, -7.5, 1.0e11] {
            let g = guard();
            let mut y = reference.clone();
            y[(0, 4)] = fault;
            verify_gelu(&x, &mut y, &g);
            assert_eq!(y.data(), reference.data(), "fault {fault} not healed");
            assert_eq!(g.stats().heals, 1);
        }
        // Fault-free: quiet and bit-identical.
        let g = guard();
        let y = gelu_matrix_checked(&x, &g);
        assert_eq!(y.data(), reference.data());
        assert!(g.stats().is_quiet());
    }

    #[test]
    fn gelu_inplace_checked_matches_map_form() {
        let mut rng = TensorRng::seed_from(7);
        let x = rng.normal_matrix(4, 9, 1.0);
        let mut m = x.clone();
        let g = guard();
        gelu_matrix_checked_inplace(&mut m, &g);
        assert_eq!(m.data(), gelu_matrix(&x).data());
        assert!(g.stats().is_quiet());
        let mut off = x.clone();
        gelu_matrix_checked_inplace(&mut off, &OpGuard::off());
        assert_eq!(off.data(), m.data());
    }

    #[test]
    fn gelu_backward_guard_heals_planted_extremes() {
        let mut rng = TensorRng::seed_from(8);
        let x = rng.normal_matrix(3, 8, 1.5);
        let dy = rng.normal_matrix(3, 8, 1.0);
        let reference = gelu_backward(&x, &dy);
        let g = guard();
        let dx = gelu_backward_checked(&x, &dy, &g);
        assert_eq!(dx.data(), reference.data());
        assert!(g.stats().is_quiet());

        for fault in [f32::NEG_INFINITY, f32::NAN, 5.0e10] {
            let g = guard();
            let mut dx = reference.clone();
            dx[(2, 1)] = fault;
            verify_gelu_backward(&x, &dy, &mut dx, &g);
            assert_eq!(dx.data(), reference.data(), "fault {fault} not healed");
            assert_eq!(g.stats().heals, 1);
        }
    }

    #[test]
    fn residual_add_guard_heals_all_extreme_classes() {
        let mut rng = TensorRng::seed_from(9);
        let a = rng.normal_matrix(4, 12, 1.0);
        let b = rng.normal_matrix(4, 12, 1.0);
        let reference = a.add(&b);
        for fault in [f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 2.0e13] {
            let g = guard();
            let mut out = reference.clone();
            out[(3, 11)] = fault;
            for r in 0..out.rows() {
                let (ar, br) = (a.row(r), b.row(r));
                verify_rowsum_add(ar, br, out.row_mut(r), &g);
            }
            assert_eq!(out.data(), reference.data(), "fault {fault} not healed");
            assert_eq!(g.stats().heals, 1);
        }
        let g = guard();
        let out = residual_add_checked(&a, &b, &g);
        assert_eq!(out.data(), reference.data());
        assert!(g.stats().is_quiet());
    }

    #[test]
    fn sub_threshold_flip_in_residual_add_is_caught_by_f64_transport() {
        // A mid-mantissa flip is far below any extremum screen but well
        // above the f64 row-sum rounding budget.
        let a = Matrix::full(1, 8, 0.5);
        let b = Matrix::full(1, 8, 0.25);
        let reference = a.add(&b);
        let g = guard();
        let mut out = reference.clone();
        let bits = out[(0, 2)].to_bits() ^ (1 << 18);
        out[(0, 2)] = f32::from_bits(bits);
        verify_rowsum_add(a.row(0), b.row(0), out.row_mut(0), &g);
        assert_eq!(out.data(), reference.data());
        assert_eq!(g.stats().heals, 1);
    }

    #[test]
    fn inactive_guard_is_a_pass_through() {
        let mut rng = TensorRng::seed_from(10);
        let x = rng.normal_matrix(2, 6, 1.0);
        let g = OpGuard::off();
        let y = softmax_rows_checked(&x, &g);
        assert_eq!(y.data(), softmax_rows(&x).data());
        assert_eq!(g.stats(), GuardStats::default());
        assert_eq!(g.take_stats(), GuardStats::default());
    }

    #[test]
    fn stats_merge_and_drain() {
        let g = guard();
        g.record_external_check();
        g.record_external_heal();
        g.record_unrecovered();
        let mut total = GuardStats::default();
        total.merge(g.take_stats());
        assert_eq!(total.checks, 1);
        assert_eq!(total.detections, 2);
        assert_eq!(total.heals, 1);
        assert_eq!(total.unrecovered, 1);
        assert!(!total.is_quiet());
        assert_eq!(g.stats(), GuardStats::default());
    }
}
