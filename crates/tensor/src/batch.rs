//! Contiguous batched matrices.
//!
//! Multi-head attention operates on `batch × heads` independent matrices of
//! identical shape. [`Batch3`] stores them in one contiguous allocation
//! (`[n, rows, cols]` row-major) so batched GEMMs parallelise over slots with
//! rayon and so the ABFT encoding kernel sees the exact strided layout the
//! paper's custom GPU encoder is built around (§4.6).

use crate::gemm;
use crate::matrix::Matrix;
use crate::view::{MatMut, MatRef};
use rayon::prelude::*;

/// A batch of `n` dense `rows × cols` matrices in one contiguous buffer.
#[derive(Clone, PartialEq, Debug)]
pub struct Batch3 {
    n: usize,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Batch3 {
    /// All-zeros batch.
    pub fn zeros(n: usize, rows: usize, cols: usize) -> Self {
        Self {
            n,
            rows,
            cols,
            data: vec![0.0; n * rows * cols], // attn-lint: allow(hot-path-alloc-reach) — constructor: the batch buffer allocation is its contract
        }
    }

    /// Build from `n` equally-shaped matrices (copied into one buffer).
    ///
    /// # Panics
    /// Panics if the shapes disagree or `mats` is empty.
    pub fn from_matrices(mats: &[Matrix]) -> Self {
        assert!(!mats.is_empty(), "Batch3::from_matrices: empty");
        let (rows, cols) = (mats[0].rows(), mats[0].cols());
        let mut data = Vec::with_capacity(mats.len() * rows * cols);
        for m in mats {
            assert_eq!((m.rows(), m.cols()), (rows, cols), "shape mismatch");
            data.extend_from_slice(m.data());
        }
        Self {
            n: mats.len(),
            rows,
            cols,
            data,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rows per slot.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per slot.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whole underlying buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Stride (elements) between consecutive slots.
    #[inline]
    pub fn slot_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Immutable view of slot `i`.
    #[inline]
    pub fn slot(&self, i: usize) -> MatRef<'_> {
        let s = self.slot_len();
        MatRef::new(&self.data[i * s..(i + 1) * s], self.rows, self.cols)
    }

    /// Mutable view of slot `i`.
    #[inline]
    pub fn slot_mut(&mut self, i: usize) -> MatMut<'_> {
        let s = self.slot_len();
        MatMut::new(&mut self.data[i * s..(i + 1) * s], self.rows, self.cols)
    }

    /// Copy slot `i` into an owned [`Matrix`].
    pub fn slot_matrix(&self, i: usize) -> Matrix {
        let s = self.slot_len();
        // attn-lint: allow(hot-path-alloc-reach) — inspector for tests and the naive reference; hot kernels read slots in place
        Matrix::from_vec(self.rows, self.cols, self.data[i * s..(i + 1) * s].to_vec())
    }

    /// Overwrite slot `i` from a matrix of matching shape.
    pub fn set_slot(&mut self, i: usize, m: &Matrix) {
        assert_eq!((m.rows(), m.cols()), (self.rows, self.cols));
        let s = self.slot_len();
        self.data[i * s..(i + 1) * s].copy_from_slice(m.data());
    }

    /// Iterate over owned copies of all slots.
    pub fn to_matrices(&self) -> Vec<Matrix> {
        (0..self.n).map(|i| self.slot_matrix(i)).collect()
    }

    /// Run `f` on every `(index, mutable slot buffer)` pair in parallel.
    pub fn par_for_each_slot(&mut self, f: impl Fn(usize, &mut [f32]) + Sync + Send) {
        let s = self.slot_len();
        self.data
            .par_chunks_mut(s)
            .enumerate()
            .for_each(|(i, buf)| f(i, buf));
    }

    /// True if every element across all slots is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Batched `C[i] = A[i] · B[i]`, parallel over slots.
///
/// # Panics
/// Panics if slot counts or inner dimensions disagree.
pub fn batch_matmul(a: &Batch3, b: &Batch3) -> Batch3 {
    assert_eq!(a.n(), b.n(), "batch_matmul: slot count");
    assert_eq!(a.cols(), b.rows(), "batch_matmul: inner dims");
    let mut c = Batch3::zeros(a.n(), a.rows(), b.cols());
    let (ar, ac, bc) = (a.rows(), a.cols(), b.cols());
    let (sa, sb) = (a.slot_len(), b.slot_len());
    let sc = c.slot_len();
    let a_data = a.data();
    let b_data = b.data();
    c.data_mut()
        .par_chunks_mut(sc)
        .enumerate()
        .for_each(|(i, cbuf)| {
            let av = MatRef::new(&a_data[i * sa..(i + 1) * sa], ar, ac);
            let bv = MatRef::new(&b_data[i * sb..(i + 1) * sb], ac, bc);
            gemm::matmul_into(av, bv, MatMut::new(cbuf, ar, bc));
        });
    c
}

/// Batched `C[i] = A[i] · B[i]ᵀ`, parallel over slots.
pub fn batch_matmul_nt(a: &Batch3, b: &Batch3) -> Batch3 {
    assert_eq!(a.n(), b.n(), "batch_matmul_nt: slot count");
    assert_eq!(a.cols(), b.cols(), "batch_matmul_nt: inner dims");
    let mut c = Batch3::zeros(a.n(), a.rows(), b.rows());
    let (ar, ac, br) = (a.rows(), a.cols(), b.rows());
    let (sa, sb) = (a.slot_len(), b.slot_len());
    let sc = c.slot_len();
    let a_data = a.data();
    let b_data = b.data();
    c.data_mut()
        .par_chunks_mut(sc)
        .enumerate()
        .for_each(|(i, cbuf)| {
            let av = MatRef::new(&a_data[i * sa..(i + 1) * sa], ar, ac);
            let bv = MatRef::new(&b_data[i * sb..(i + 1) * sb], br, ac);
            gemm::matmul_nt_into(av, bv, MatMut::new(cbuf, ar, br));
        });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn slots_round_trip() {
        let mut rng = TensorRng::seed_from(31);
        let mats: Vec<Matrix> = (0..4).map(|_| rng.normal_matrix(3, 5, 1.0)).collect();
        let b = Batch3::from_matrices(&mats);
        assert_eq!(b.n(), 4);
        for (i, m) in mats.iter().enumerate() {
            assert_eq!(&b.slot_matrix(i), m);
        }
    }

    #[test]
    fn set_slot_overwrites() {
        let mut b = Batch3::zeros(2, 2, 2);
        let m = Matrix::full(2, 2, 3.0);
        b.set_slot(1, &m);
        assert_eq!(b.slot_matrix(1), m);
        assert!(crate::float::all_exactly_zero(b.slot_matrix(0).data()));
    }

    #[test]
    fn batch_matmul_matches_per_slot() {
        let mut rng = TensorRng::seed_from(37);
        let a_m: Vec<Matrix> = (0..6).map(|_| rng.normal_matrix(4, 7, 1.0)).collect();
        let b_m: Vec<Matrix> = (0..6).map(|_| rng.normal_matrix(7, 5, 1.0)).collect();
        let a = Batch3::from_matrices(&a_m);
        let b = Batch3::from_matrices(&b_m);
        let c = batch_matmul(&a, &b);
        for i in 0..6 {
            let expect = gemm::matmul(&a_m[i], &b_m[i]);
            assert!(c.slot_matrix(i).approx_eq(&expect, 1e-5, 1e-6), "slot {i}");
        }
    }

    #[test]
    fn batch_matmul_nt_matches_per_slot() {
        let mut rng = TensorRng::seed_from(41);
        let a_m: Vec<Matrix> = (0..3).map(|_| rng.normal_matrix(4, 6, 1.0)).collect();
        let b_m: Vec<Matrix> = (0..3).map(|_| rng.normal_matrix(5, 6, 1.0)).collect();
        let a = Batch3::from_matrices(&a_m);
        let b = Batch3::from_matrices(&b_m);
        let c = batch_matmul_nt(&a, &b);
        for i in 0..3 {
            let expect = gemm::matmul_nt(&a_m[i], &b_m[i]);
            assert!(c.slot_matrix(i).approx_eq(&expect, 1e-5, 1e-6), "slot {i}");
        }
    }

    #[test]
    fn par_for_each_slot_touches_every_slot() {
        let mut b = Batch3::zeros(8, 2, 2);
        b.par_for_each_slot(|i, buf| buf.fill(i as f32));
        for i in 0..8 {
            assert!(b.slot_matrix(i).data().iter().all(|&x| x == i as f32));
        }
    }

    #[test]
    fn all_finite_scans_whole_buffer() {
        let mut b = Batch3::zeros(3, 2, 2);
        assert!(b.all_finite());
        b.slot_mut(2).set(1, 1, f32::NAN);
        assert!(!b.all_finite());
    }
}
