//! # attn-tensor
//!
//! Dense `f32` linear-algebra substrate for the ATTNChecker reproduction.
//!
//! The paper's artifact runs its attention GEMMs on NVIDIA A100 GPUs through
//! cuBLAS; this crate is the CPU stand-in. It provides:
//!
//! * [`Matrix`] — an owned, row-major dense matrix.
//! * [`MatRef`] / [`MatMut`] — borrowed views over contiguous row-major
//!   storage, used by every kernel so that batched tensors can share one
//!   allocation.
//! * [`Batch3`] — a contiguous `[n, rows, cols]` batch of matrices (one slot
//!   per `batch × head` in attention).
//! * Packed, cache-blocked, register-tiled, [rayon]-parallel GEMM kernels
//!   in [`gemm`] — including the transposed variants needed by attention
//!   (`Q·Kᵀ`) and backprop (`Aᵀ·B`), and fused checksum-encoding entry
//!   points (`gemm_encode_cols_into` / `gemm_encode_rows_into`) whose
//!   encoding rides inside the packing pass ([`pack`]).
//! * A thread-local scratch arena in [`workspace`] that makes the GEMM and
//!   encoding hot path allocation-free in steady state.
//! * [`PagedKv`] — fixed-size-block paged row storage for KV caches, with
//!   per-block border rows for checksum tails; the paged GEMM entries in
//!   [`gemm`] consume it without copying and without changing result bits.
//! * Neural-network primitive ops in [`ops`] (numerically-stable softmax,
//!   layer norm, GELU, bias, masking).
//! * Invariant-screened guarded variants of the non-GEMM ops in [`guard`]
//!   ([`OpGuard`], `softmax_rows_checked` & co.) — cheap invariant screens
//!   with exact recompute-from-inputs healing, since exact checksum
//!   transport stops at a nonlinearity.
//! * Named exact-float comparisons in [`float`] (`exactly_zero` & co.) —
//!   the helpers the workspace `float-eq` lint points raw `== 0.0` sites
//!   to.
//! * Deterministic RNG helpers in [`rng`] (Box–Muller normal sampling,
//!   Xavier/He initialisation).
//!
//! Everything is deterministic given a seed, which the fault-injection
//! campaigns rely on for reproducibility.

pub mod batch;
pub mod error;
pub mod float;
pub mod gemm;
pub mod guard;
pub mod kv;
pub mod matrix;
pub mod ops;
pub mod pack;
pub mod reduce;
pub mod rng;
pub mod view;
pub mod workspace;

pub use batch::Batch3;
pub use error::ShapeError;
pub use guard::{GuardStats, OpGuard};
pub use kv::PagedKv;
pub use matrix::Matrix;
pub use view::{MatMut, MatRef};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ShapeError>;
