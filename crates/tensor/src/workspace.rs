//! Thread-local scratch arena for the GEMM/encoding hot path.
//!
//! Every packed-GEMM invocation needs transient buffers: A/B panel packing
//! stores, checksum staging rows, and small scratch matrices. Allocating
//! those per call would put `malloc` on the innermost training path — the
//! exact overhead the paper's fused kernels avoid on the GPU by staging in
//! shared memory. This arena makes the steady state allocation-free:
//!
//! * [`take`] checks a buffer out of a **thread-local pool** (best-fit by
//!   capacity) and returns an RAII [`WsBuf`] that puts it back on drop.
//! * Only a checkout that no pooled buffer can satisfy touches the global
//!   allocator; each such event bumps a per-thread counter readable via
//!   [`thread_alloc_events`]. After a warm-up pass over a fixed workload
//!   (e.g. one training step), every later identical pass replays the same
//!   checkout sequence against a pool that already holds every buffer it
//!   needs, so the counter stops moving — the property the trainer's
//!   steady-state test asserts.
//!
//! The pool is deliberately thread-local rather than shared: checkouts are
//! lock-free and contention cannot exist. The warm-pool property therefore
//! holds per *persistent* thread — the sequential trainer's calling thread
//! in particular. The vendored rayon shim spawns fresh scoped threads per
//! parallel region, so arenas on its workers (parallel-grid GEMM tiles,
//! `set_parallelism > 1` batch items) are rebuilt each region; with real
//! rayon's persistent pool threads the same code is warm there too.
//! Buffers are `f32` vectors zero-filled on checkout (`resize` within
//! capacity — no allocation) so callers never observe stale scratch.

use std::cell::{Cell, RefCell};

/// Upper bound on pooled buffers per thread; beyond this, returned buffers
/// are simply freed. Generous compared to the maximum number of live
/// checkouts any kernel performs (a handful), so steady-state workloads
/// never evict.
const MAX_POOLED: usize = 64;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Scratch buffer checked out of the thread-local arena; returned to the
/// pool when dropped. Dereferences to `[f32]` of exactly the requested
/// length, zero-filled.
pub struct WsBuf {
    data: Vec<f32>,
}

impl WsBuf {
    /// The checked-out scratch as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The checked-out scratch as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl std::ops::Deref for WsBuf {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::DerefMut for WsBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl Drop for WsBuf {
    fn drop(&mut self) {
        let data = std::mem::take(&mut self.data);
        // The pool can be gone during thread teardown; dropping the buffer
        // is the correct fallback.
        let _ = POOL.try_with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(data);
            }
        });
    }
}

/// Check a zero-filled `len`-element scratch buffer out of this thread's
/// arena. Reuses the smallest pooled buffer whose capacity fits (no
/// allocation); only on a pool miss does it allocate, bumping the
/// per-thread counter behind [`thread_alloc_events`].
pub fn take(len: usize) -> WsBuf {
    let mut data = POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let mut best: Option<usize> = None;
        for (i, b) in pool.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|j| b.capacity() < pool[j].capacity()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => pool.swap_remove(i),
            None => {
                ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
                Vec::with_capacity(len) // attn-lint: allow(hot-path-alloc-reach) — arena miss: first-touch growth, counted by ALLOC_EVENTS; steady state reuses pooled buffers
            }
        }
    });
    data.clear();
    data.resize(len, 0.0); // within capacity: never reallocates
    WsBuf { data }
}

/// Number of arena checkouts on *this thread* that had to hit the global
/// allocator since the thread started. Stable across two identical
/// workloads ⇔ the second one ran allocation-free.
pub fn thread_alloc_events() -> u64 {
    ALLOC_EVENTS.with(|c| c.get())
}

/// Buffers currently parked in this thread's pool (diagnostics/tests).
pub fn pooled_buffers() -> usize {
    POOL.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_requested_len() {
        let mut b = take(37);
        assert_eq!(b.len(), 37);
        assert!(crate::float::all_exactly_zero(&b));
        b[5] = 9.0;
        drop(b);
        // The dirty buffer goes back to the pool but comes out zeroed.
        let b2 = take(37);
        assert!(crate::float::all_exactly_zero(&b2));
    }

    #[test]
    fn steady_state_reuse_is_allocation_free() {
        // Warm the pool with the exact checkout pattern…
        {
            let _a = take(100);
            let _b = take(200);
        }
        let before = thread_alloc_events();
        // …then replay it: every checkout must be served from the pool.
        for _ in 0..10 {
            let _a = take(100);
            let _b = take(200);
        }
        assert_eq!(
            thread_alloc_events(),
            before,
            "steady state must not allocate"
        );
    }

    #[test]
    fn smaller_request_reuses_larger_buffer() {
        {
            let _b = take(500);
        }
        let before = thread_alloc_events();
        let b = take(50);
        assert_eq!(b.len(), 50);
        assert_eq!(thread_alloc_events(), before);
    }

    #[test]
    fn concurrent_checkouts_are_distinct() {
        let mut a = take(16);
        let mut b = take(16);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(a[0], 1.0);
        assert_eq!(b[0], 2.0);
    }
}
