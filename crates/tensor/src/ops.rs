//! Neural-network primitive operations (forward and backward forms).
//!
//! Attention needs a numerically-stable row softmax plus masking; the
//! surrounding transformer blocks need layer norm, GELU, and bias
//! broadcasting. Backward-pass helpers live here too so the hand-written
//! autodiff in `attn-model` stays thin.
//!
//! attn-lint: hot-path

use crate::matrix::Matrix;

/// Row-wise numerically-stable softmax: `y[i,:] = softmax(x[i,:])`.
///
/// Uses the max-subtraction trick. IEEE special values behave as on GPU:
/// a `+INF` entry saturates its row to a one-hot; `NaN` poisons its row —
/// exactly the transitions catalogued in the paper's Table 2 (`1R-∞* → 1R-Θ`
/// through softmax).
pub fn softmax_rows(x: &Matrix) -> Matrix {
    // attn-lint: allow(hot-path-alloc) — owned-result convenience form; hot loops call softmax_rows_inplace
    let mut y = x.clone();
    softmax_rows_inplace(&mut y);
    y
}

/// In-place row softmax; see [`softmax_rows`].
///
/// A *fully-masked* row — every entry `-INF`, as causal/padding masks
/// produce for padded positions during batched decode — yields a
/// well-defined all-zero probability row: the token attends to nothing.
/// The naive max-subtraction path would fabricate NaNs out of a
/// well-formed mask (`exp(-INF − -INF) = NaN`), which downstream ABFT
/// detectors could only mis-attribute to a hardware fault. Genuine fault
/// propagation is preserved: a NaN entry still poisons its row even when
/// every other entry is `-INF`, and `+INF` still saturates through
/// `INF − INF = NaN` (the Table 2 transitions).
pub fn softmax_rows_inplace(x: &mut Matrix) {
    let cols = x.cols();
    if cols == 0 {
        return;
    }
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        let mut max = f32::NEG_INFINITY;
        for &v in row.iter() {
            // NaN comparisons are false, so NaN is skipped here and instead
            // poisons the row through exp()/sum below.
            if v > max {
                max = v;
            }
        }
        if max == f32::NEG_INFINITY {
            // Fully-masked row (or all-NaN/-INF mixture). Without finite
            // mass the distribution is defined as all-zero; a NaN entry
            // must keep poisoning so fault propagation stays observable.
            let fill = if row.iter().any(|v| v.is_nan()) {
                f32::NAN
            } else {
                0.0
            };
            row.fill(fill);
            continue;
        }
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if crate::float::exactly_zero(sum) {
            // Defensive: with a finite max the max element contributes
            // exp(0) = 1, so this cannot trigger today — but a zero
            // exp-sum must never turn into a 1/0 row of INFs.
            row.fill(0.0);
            continue;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Backward of row softmax: given `y = softmax(x)` and `dy`, returns `dx`
/// where `dx = y ⊙ (dy − rowsum(dy ⊙ y))`.
///
/// An all-zero `y` row (a fully-masked softmax row, see
/// [`softmax_rows_inplace`]) is a constant function of its inputs, so its
/// gradient is exactly zero — even against a non-finite `dy`, where the
/// naive `0 · NaN` product would smuggle NaNs into `dx`.
pub fn softmax_rows_backward(y: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!((y.rows(), y.cols()), (dy.rows(), dy.cols()));
    let mut dx = Matrix::zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let yr = y.row(r);
        if crate::float::all_exactly_zero(yr) {
            continue; // fully-masked row: d(const)/dx = 0
        }
        let dyr = dy.row(r);
        let s: f32 = yr.iter().zip(dyr).map(|(&a, &b)| a * b).sum();
        for (c, d) in dx.row_mut(r).iter_mut().enumerate() {
            *d = yr[c] * (dyr[c] - s);
        }
    }
    dx
}

/// Exact GELU activation `x · Φ(x)` using the erf-free tanh approximation
/// employed by Bert/GPT-2.
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Apply GELU element-wise.
pub fn gelu_matrix(x: &Matrix) -> Matrix {
    x.map(gelu)
}

/// Element-wise GELU backward: `dx = dy ⊙ gelu'(x)`.
pub fn gelu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    x.zip(dy, |xi, di| gelu_grad(xi) * di)
}

/// Add a bias row-vector to every row of `x` in place.
///
/// # Panics
/// Panics if `bias.len() != x.cols()`.
pub fn add_bias_inplace(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), x.cols(), "bias length mismatch");
    for r in 0..x.rows() {
        for (v, &b) in x.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Column-wise sum of `x` — the bias gradient for a row-broadcast bias.
pub fn col_sums(x: &Matrix) -> Vec<f32> {
    // attn-lint: allow(hot-path-alloc) — allocates its owned result by API contract (backward pass, not decode steady state)
    let mut s = vec![0.0f32; x.cols()];
    for r in 0..x.rows() {
        for (acc, &v) in s.iter_mut().zip(x.row(r)) {
            *acc += v;
        }
    }
    s
}

/// Row-wise sum of `x`.
pub fn row_sums(x: &Matrix) -> Vec<f32> {
    (0..x.rows()).map(|r| x.row(r).iter().sum()).collect()
}

/// Cached statistics from a layer-norm forward pass, needed by backward.
#[derive(Clone, Debug)]
pub struct LayerNormCache {
    /// Per-row mean of the input.
    pub mean: Vec<f32>,
    /// Per-row reciprocal standard deviation `1/sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
    /// Normalised activations `(x - mean) * inv_std` before gamma/beta.
    pub normalized: Matrix,
}

/// Layer normalisation over the last dimension with learnable `gamma`/`beta`.
///
/// Returns the output and the cache required for [`layer_norm_backward`].
pub fn layer_norm(x: &Matrix, gamma: &[f32], beta: &[f32], eps: f32) -> (Matrix, LayerNormCache) {
    let d = x.cols();
    assert_eq!(gamma.len(), d);
    assert_eq!(beta.len(), d);
    let mut out = Matrix::zeros(x.rows(), d);
    // attn-lint: allow(hot-path-alloc) — owned cache buffers are layer_norm's return value, sized once per call
    let mut mean = Vec::with_capacity(x.rows());
    // attn-lint: allow(hot-path-alloc) — owned cache buffers are layer_norm's return value, sized once per call
    let mut inv_std = Vec::with_capacity(x.rows());
    let mut normalized = Matrix::zeros(x.rows(), d);

    for r in 0..x.rows() {
        let row = x.row(r);
        let mu: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + eps).sqrt();
        mean.push(mu);
        inv_std.push(istd);
        for c in 0..d {
            let n = (row[c] - mu) * istd;
            normalized[(r, c)] = n;
            out[(r, c)] = n * gamma[c] + beta[c];
        }
    }
    (
        out,
        LayerNormCache {
            mean,
            inv_std,
            normalized,
        },
    )
}

/// Backward of [`layer_norm`].
///
/// Returns `(dx, dgamma, dbeta)`.
pub fn layer_norm_backward(
    dy: &Matrix,
    cache: &LayerNormCache,
    gamma: &[f32],
) -> (Matrix, Vec<f32>, Vec<f32>) {
    let (rows, d) = (dy.rows(), dy.cols());
    let mut dx = Matrix::zeros(rows, d);
    // attn-lint: allow(hot-path-alloc) — gradient outputs are owned by API contract (training path, not decode)
    let mut dgamma = vec![0.0f32; d];
    // attn-lint: allow(hot-path-alloc) — gradient outputs are owned by API contract (training path, not decode)
    let mut dbeta = vec![0.0f32; d];

    for r in 0..rows {
        let n_row = cache.normalized.row(r);
        let dy_row = dy.row(r);
        let istd = cache.inv_std[r];

        let mut sum_dyg = 0.0f32;
        let mut sum_dyg_n = 0.0f32;
        for c in 0..d {
            let dyg = dy_row[c] * gamma[c];
            sum_dyg += dyg;
            sum_dyg_n += dyg * n_row[c];
            dgamma[c] += dy_row[c] * n_row[c];
            dbeta[c] += dy_row[c];
        }
        let inv_d = 1.0 / d as f32;
        for c in 0..d {
            let dyg = dy_row[c] * gamma[c];
            dx[(r, c)] = istd * (dyg - inv_d * sum_dyg - n_row[c] * inv_d * sum_dyg_n);
        }
    }
    (dx, dgamma, dbeta)
}

/// Add an additive attention mask in place: `x[i,j] += mask[i,j]`.
///
/// Masks here use `-INF`-style large negatives (`MASK_NEG`), but literal
/// `-INF` masks are safe too: [`softmax_rows_inplace`] maps a fully-masked
/// row to a well-defined all-zero probability row instead of NaNs.
pub fn apply_additive_mask(x: &mut Matrix, mask: &Matrix) {
    assert_eq!((x.rows(), x.cols()), (mask.rows(), mask.cols()));
    for (v, &m) in x.data_mut().iter_mut().zip(mask.data()) {
        *v += m;
    }
}

/// Large negative used for masked attention logits.
pub const MASK_NEG: f32 = -1.0e9;

/// Causal (lower-triangular) additive mask of size `n × n` (GPT-2 style).
pub fn causal_mask(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| if c > r { MASK_NEG } else { 0.0 })
}

/// Local banded causal mask with attention window `w` (GPT-Neo local layers):
/// position `i` may attend to `j` iff `i - w < j <= i`.
pub fn local_causal_mask(n: usize, w: usize) -> Matrix {
    Matrix::from_fn(
        n,
        n,
        |r, c| {
            if c > r || r >= c + w {
                MASK_NEG
            } else {
                0.0
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = TensorRng::seed_from(1);
        let x = rng.normal_matrix(8, 16, 3.0);
        let y = softmax_rows(&x);
        for r in 0..y.rows() {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
            assert!(y.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let shifted = x.map(|v| v + 100.0);
        assert!(softmax_rows(&x).approx_eq(&softmax_rows(&shifted), 1e-5, 1e-6));
    }

    #[test]
    fn softmax_handles_large_magnitudes_without_overflow() {
        let x = Matrix::from_vec(1, 3, vec![1e30, 1e30, -1e30]);
        let y = softmax_rows(&x);
        assert!(y.all_finite());
        assert!((y[(0, 0)] - 0.5).abs() < 1e-5);
        assert!(y[(0, 2)] < 1e-6);
    }

    #[test]
    fn softmax_inf_becomes_nan_row() {
        // +INF in the attention score passes through max-subtraction as
        // INF - INF = NaN: the Table 2 transition AS:1R-∞* → AP:1R-Θ.
        let x = Matrix::from_vec(1, 4, vec![0.0, f32::INFINITY, 1.0, 2.0]);
        let y = softmax_rows(&x);
        assert!(y.row(0).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn softmax_near_inf_saturates_to_one_hot() {
        // near-INF stays finite, so the row saturates to a one-hot instead of
        // NaN — this is why near-INF faults in AS rarely produce
        // non-trainable states (Table 4: 0.2%–11.2%) while INF/NaN do.
        let x = Matrix::from_vec(1, 4, vec![0.0, 1e20, 1.0, 2.0]);
        let y = softmax_rows(&x);
        assert_eq!(y[(0, 1)], 1.0);
        assert_eq!(y[(0, 0)], 0.0);
        assert!(y.all_finite());
    }

    #[test]
    fn softmax_two_infs_produce_nan() {
        // INF - INF = NaN inside the max-subtraction: mixed ±INF rows go NaN,
        // the "type transition" hazard the paper's EEC-ABFT case 3 handles.
        let x = Matrix::from_vec(1, 3, vec![f32::INFINITY, f32::INFINITY, 0.0]);
        let y = softmax_rows(&x);
        assert!(y.row(0)[..2].iter().any(|v| v.is_nan()));
    }

    #[test]
    fn softmax_nan_poisons_row_only() {
        let x = Matrix::from_vec(2, 3, vec![0.0, f32::NAN, 1.0, 0.5, 0.5, 0.5]);
        let y = softmax_rows(&x);
        assert!(y.row(0).iter().all(|v| v.is_nan()));
        assert!(y.row(1).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_fully_masked_row_is_all_zero_not_nan() {
        // A fully -INF row (causal/padding mask over a padded position)
        // must not fabricate NaNs — it is a well-defined "attend to
        // nothing" row.
        let x = Matrix::from_vec(
            2,
            3,
            vec![
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                0.5,
                0.25,
                -1.0,
            ],
        );
        let y = softmax_rows(&x);
        assert!(crate::float::all_exactly_zero(y.row(0)), "{:?}", y.row(0));
        // The neighbouring genuine row is untouched.
        let s: f32 = y.row(1).iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(y.all_finite());
    }

    #[test]
    fn softmax_single_element_neg_inf_row_is_zero() {
        let x = Matrix::from_vec(1, 1, vec![f32::NEG_INFINITY]);
        let y = softmax_rows(&x);
        assert_eq!(y[(0, 0)], 0.0);
    }

    #[test]
    fn softmax_nan_still_poisons_fully_masked_row() {
        // The NaN-poisoning contract survives the masked-row fix: a NaN
        // among -INF entries keeps the row NaN (fault propagation must
        // stay observable).
        let x = Matrix::from_vec(1, 3, vec![f32::NEG_INFINITY, f32::NAN, f32::NEG_INFINITY]);
        let y = softmax_rows(&x);
        assert!(y.row(0).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn softmax_backward_zero_row_has_zero_gradient() {
        // A fully-masked forward row is constant in its inputs, so its
        // gradient is exactly zero — even against a NaN upstream gradient.
        let y = Matrix::from_vec(2, 3, vec![0.0, 0.0, 0.0, 0.2, 0.3, 0.5]);
        let dy = Matrix::from_vec(2, 3, vec![f32::NAN, 1.0, f32::INFINITY, 0.1, 0.2, 0.3]);
        let dx = softmax_rows_backward(&y, &dy);
        assert!(crate::float::all_exactly_zero(dx.row(0)));
        assert!(dx.row(1).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(2);
        let x = rng.normal_matrix(3, 5, 1.0);
        let dy = rng.normal_matrix(3, 5, 1.0);
        let y = softmax_rows(&x);
        let dx = softmax_rows_backward(&y, &dy);

        let eps = 1e-3;
        for r in 0..3 {
            for c in 0..5 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let lp: f32 = softmax_rows(&xp)
                    .data()
                    .iter()
                    .zip(dy.data())
                    .map(|(&a, &b)| a * b)
                    .sum();
                let lm: f32 = softmax_rows(&xm)
                    .data()
                    .iter()
                    .zip(dy.data())
                    .map(|(&a, &b)| a * b)
                    .sum();
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 2e-2,
                    "fd {fd} vs analytic {} at ({r},{c})",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Asymptotics
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.2, 0.0, 0.4, 1.3, 2.8] {
            let eps = 1e-3;
            let fd = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!((fd - gelu_grad(x)).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn bias_and_col_sums_are_adjoint() {
        let mut rng = TensorRng::seed_from(3);
        let mut x = rng.normal_matrix(4, 6, 1.0);
        let before = x.clone();
        let bias = vec![1.0, -1.0, 0.5, 0.0, 2.0, -0.5];
        add_bias_inplace(&mut x, &bias);
        for r in 0..4 {
            for c in 0..6 {
                assert!((x[(r, c)] - before[(r, c)] - bias[c]).abs() < 1e-6);
            }
        }
        let sums = col_sums(&before);
        for c in 0..6 {
            let expect: f32 = (0..4).map(|r| before[(r, c)]).sum();
            assert!((sums[c] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut rng = TensorRng::seed_from(4);
        let x = rng.normal_matrix(5, 32, 4.0);
        let gamma = vec![1.0; 32];
        let beta = vec![0.0; 32];
        let (y, _) = layer_norm(&x, &gamma, &beta, 1e-5);
        for r in 0..5 {
            let row = y.row(r);
            let mu: f32 = row.iter().sum::<f32>() / 32.0;
            let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / 32.0;
            assert!(mu.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layer_norm_gamma_beta_affine() {
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let (y1, _) = layer_norm(&x, &[1.0; 4], &[0.0; 4], 1e-5);
        let (y2, _) = layer_norm(&x, &[2.0; 4], &[1.0; 4], 1e-5);
        for c in 0..4 {
            assert!((y2[(0, c)] - (2.0 * y1[(0, c)] + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_backward_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(5);
        let x = rng.normal_matrix(2, 8, 2.0);
        let gamma: Vec<f32> = (0..8).map(|i| 0.5 + 0.1 * i as f32).collect();
        let beta: Vec<f32> = (0..8).map(|i| 0.1 * i as f32).collect();
        let dy = rng.normal_matrix(2, 8, 1.0);

        let (_, cache) = layer_norm(&x, &gamma, &beta, 1e-5);
        let (dx, dgamma, dbeta) = layer_norm_backward(&dy, &cache, &gamma);

        let loss = |xx: &Matrix, gg: &[f32], bb: &[f32]| -> f32 {
            let (y, _) = layer_norm(xx, gg, bb, 1e-5);
            y.data().iter().zip(dy.data()).map(|(&a, &b)| a * b).sum()
        };

        let eps = 1e-2;
        for r in 0..2 {
            for c in 0..8 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let fd = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * eps);
                assert!(
                    (fd - dx[(r, c)]).abs() < 3e-2,
                    "dx fd {fd} vs {} at ({r},{c})",
                    dx[(r, c)]
                );
            }
        }
        for c in 0..8 {
            let mut gp = gamma.clone();
            gp[c] += eps;
            let mut gm = gamma.clone();
            gm[c] -= eps;
            let fd = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * eps);
            assert!((fd - dgamma[c]).abs() < 3e-2, "dgamma c={c}");

            let mut bp = beta.clone();
            bp[c] += eps;
            let mut bm = beta.clone();
            bm[c] -= eps;
            let fd = (loss(&x, &gamma, &bp) - loss(&x, &gamma, &bm)) / (2.0 * eps);
            assert!((fd - dbeta[c]).abs() < 3e-2, "dbeta c={c}");
        }
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(4);
        for r in 0..4 {
            for c in 0..4 {
                if c > r {
                    assert_eq!(m[(r, c)], MASK_NEG);
                } else {
                    assert_eq!(m[(r, c)], 0.0);
                }
            }
        }
    }

    #[test]
    fn local_mask_is_banded() {
        let m = local_causal_mask(6, 2);
        // row 4 may attend to columns 3 and 4 only.
        for c in 0..6 {
            let open = crate::float::exactly_zero(m[(4, c)]);
            assert_eq!(open, c == 3 || c == 4, "col {c}");
        }
        // Window covering everything degenerates to the causal mask.
        let full = local_causal_mask(5, 5);
        assert_eq!(full.data(), causal_mask(5).data());
    }

    #[test]
    fn masked_softmax_row_still_sums_to_one() {
        let mut x = Matrix::full(1, 4, 1.0);
        let mask = Matrix::from_vec(1, 4, vec![0.0, MASK_NEG, MASK_NEG, 0.0]);
        apply_additive_mask(&mut x, &mask);
        let y = softmax_rows(&x);
        assert!((y[(0, 0)] - 0.5).abs() < 1e-5);
        assert!(y[(0, 1)] < 1e-6);
        let s: f32 = y.row(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }
}
