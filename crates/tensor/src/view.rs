//! Borrowed row-major matrix views.
//!
//! All compute kernels in this crate are written against [`MatRef`] /
//! [`MatMut`] so the same code path serves owned [`crate::Matrix`] values and
//! slices of a contiguous [`crate::Batch3`] without copies.

/// Immutable view over a `rows × cols` row-major `f32` buffer.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
}

impl<'a> MatRef<'a> {
    /// Wrap a slice as a matrix view.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "MatRef: buffer length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying contiguous storage.
    #[inline]
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a fresh vector.
    pub fn col_to_vec(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.at(r, c)).collect()
    }

    /// Sub-view of the first `rows` rows (a matrix prefix).
    pub fn top_rows(&self, rows: usize) -> MatRef<'a> {
        assert!(rows <= self.rows);
        MatRef::new(&self.data[..rows * self.cols], rows, self.cols)
    }
}

/// Mutable view over a `rows × cols` row-major `f32` buffer.
pub struct MatMut<'a> {
    data: &'a mut [f32],
    rows: usize,
    cols: usize,
}

impl<'a> MatMut<'a> {
    /// Wrap a mutable slice as a matrix view.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(data: &'a mut [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "MatMut: buffer length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying storage.
    #[inline]
    pub fn data(&mut self) -> &mut [f32] {
        self.data
    }

    /// Immutable element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element `(r, c)` to `v`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reborrow as an immutable view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef::new(self.data, self.rows, self.cols)
    }

    /// Fill the whole view with `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_indexing_is_row_major() {
        let buf = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let m = MatRef::new(&buf, 2, 3);
        assert_eq!(m.at(0, 0), 1.0);
        assert_eq!(m.at(0, 2), 3.0);
        assert_eq!(m.at(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col_to_vec(1), vec![2.0, 5.0]);
    }

    #[test]
    fn top_rows_prefix() {
        let buf = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let m = MatRef::new(&buf, 3, 2);
        let t = m.top_rows(2);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.at(1, 1), 4.0);
    }

    #[test]
    fn mut_set_and_fill() {
        let mut buf = vec![0.0; 6];
        let mut m = MatMut::new(&mut buf, 2, 3);
        m.set(1, 2, 9.0);
        assert_eq!(m.at(1, 2), 9.0);
        m.fill(2.5);
        assert!(buf.iter().all(|&x| x == 2.5));
    }

    #[test]
    #[should_panic]
    fn wrong_len_panics() {
        let buf = vec![0.0; 5];
        let _ = MatRef::new(&buf, 2, 3);
    }
}
