//! Growable append-row buffers for per-session KV caches.
//!
//! Autoregressive decoding appends one key/value row per generated token
//! and multiplies against the whole cache every step. [`KvBuf`] is the
//! storage primitive: a row-major matrix that grows by appended rows with
//! amortised-O(1) reallocation, keeps an optional block of **tail border
//! rows** physically pinned after the data rows (where a checksummed cache
//! stores its two column-checksum rows, matching the
//! `CheckedMatrix`-augmented layout GEMM kernels consume), and draws its
//! backing store from the thread-local [`crate::workspace`] arena — a
//! retired session returns its buffers to the pool, so the next session's
//! cache growth replays against warm capacity instead of the global
//! allocator.
//!
//! The GEMM entry points in [`crate::gemm`] take [`MatRef`] views, so a
//! cache participates in products without being copied into an owned
//! [`crate::Matrix`]: [`KvBuf::view`] spans data *and* tail rows (the
//! augmented operand), [`KvBuf::data_view`] spans the data rows only.

use crate::view::{MatMut, MatRef};
use crate::workspace::{self, WsBuf};

/// Row-major growable matrix with `tail` border rows pinned after the data
/// rows. Backed by the thread-local workspace arena.
pub struct KvBuf {
    cols: usize,
    rows: usize,
    tail: usize,
    /// Backing store; always exactly `(capacity_rows) * cols` long with
    /// `capacity_rows >= rows + tail`.
    buf: WsBuf,
    capacity_rows: usize,
}

impl KvBuf {
    /// Initial row capacity (data + tail) for a fresh buffer.
    const INITIAL_ROWS: usize = 16;

    /// An empty buffer of `cols`-wide rows with `tail` pinned border rows
    /// (zero-initialised).
    pub fn new(cols: usize, tail: usize) -> Self {
        Self::with_row_capacity(cols, tail, Self::INITIAL_ROWS)
    }

    /// An empty buffer pre-sized for `capacity` total rows.
    pub fn with_row_capacity(cols: usize, tail: usize, capacity: usize) -> Self {
        assert!(cols > 0, "KvBuf: cols must be positive");
        let capacity_rows = capacity.max(tail + 1);
        Self {
            cols,
            rows: 0,
            tail,
            buf: workspace::take(capacity_rows * cols),
            capacity_rows,
        }
    }

    /// Appended data rows (excluding the tail border).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Pinned border rows after the data region.
    #[inline]
    pub fn tail(&self) -> usize {
        self.tail
    }

    /// Total physical rows (data + tail).
    #[inline]
    pub fn total_rows(&self) -> usize {
        self.rows + self.tail
    }

    /// Ensure capacity for `extra` more data rows without reallocating.
    pub fn reserve_rows(&mut self, extra: usize) {
        let needed = self.rows + self.tail + extra;
        if needed <= self.capacity_rows {
            return;
        }
        let new_cap = needed.max(self.capacity_rows * 2);
        let mut bigger = workspace::take(new_cap * self.cols);
        let live = (self.rows + self.tail) * self.cols;
        bigger[..live].copy_from_slice(&self.buf[..live]);
        self.buf = bigger; // old store drops back into the arena pool
        self.capacity_rows = new_cap;
    }

    /// Append one data row before the tail border (which slides down one
    /// slot); returns the new row's index. O(cols · (1 + tail)) plus
    /// amortised growth.
    ///
    /// # Panics
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f32]) -> usize {
        assert_eq!(row.len(), self.cols, "push_row: width mismatch");
        self.reserve_rows(1);
        let c = self.cols;
        let idx = self.rows;
        if self.tail > 0 {
            // Slide the pinned border down one row slot (regions overlap
            // only when tail > 1, copy_within handles both).
            let start = idx * c;
            self.buf
                .copy_within(start..start + self.tail * c, start + c);
        }
        self.buf[idx * c..(idx + 1) * c].copy_from_slice(row);
        self.rows = idx + 1;
        idx
    }

    /// Data row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.buf[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable data row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.buf[r * self.cols..(r + 1) * self.cols]
    }

    /// Tail border row `i` (0-based within the border block).
    #[inline]
    pub fn tail_row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.tail);
        let r = self.rows + i;
        &self.buf[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable tail border row `i`.
    #[inline]
    pub fn tail_row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.tail);
        let r = self.rows + i;
        &mut self.buf[r * self.cols..(r + 1) * self.cols]
    }

    /// View over data *and* tail rows — the augmented GEMM operand.
    #[inline]
    pub fn view(&self) -> MatRef<'_> {
        MatRef::new(
            &self.buf[..(self.rows + self.tail) * self.cols],
            self.rows + self.tail,
            self.cols,
        )
    }

    /// View over the data rows only.
    #[inline]
    pub fn data_view(&self) -> MatRef<'_> {
        MatRef::new(&self.buf[..self.rows * self.cols], self.rows, self.cols)
    }

    /// Mutable view over data and tail rows.
    #[inline]
    pub fn view_mut(&mut self) -> MatMut<'_> {
        let total = (self.rows + self.tail) * self.cols;
        MatMut::new(&mut self.buf[..total], self.rows + self.tail, self.cols)
    }

    /// Element of the data region at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.buf[r * self.cols + c]
    }
}

impl std::fmt::Debug for KvBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvBuf")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("tail", &self.tail)
            .field("capacity_rows", &self.capacity_rows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rows_are_readable_in_order() {
        let mut kv = KvBuf::new(3, 0);
        for i in 0..10 {
            let row = [i as f32, 2.0 * i as f32, -(i as f32)];
            assert_eq!(kv.push_row(&row), i);
        }
        assert_eq!(kv.rows(), 10);
        for i in 0..10 {
            assert_eq!(kv.row(i), &[i as f32, 2.0 * i as f32, -(i as f32)]);
        }
        let v = kv.data_view();
        assert_eq!((v.rows(), v.cols()), (10, 3));
        assert_eq!(v.at(7, 1), 14.0);
    }

    #[test]
    fn tail_rows_stay_pinned_after_data_across_growth() {
        let mut kv = KvBuf::with_row_capacity(2, 2, 3);
        kv.tail_row_mut(0).copy_from_slice(&[100.0, 200.0]);
        kv.tail_row_mut(1).copy_from_slice(&[300.0, 400.0]);
        // Push well past the initial capacity to force reallocation.
        for i in 0..40 {
            kv.push_row(&[i as f32, i as f32 + 0.5]);
        }
        assert_eq!(kv.tail_row(0), &[100.0, 200.0]);
        assert_eq!(kv.tail_row(1), &[300.0, 400.0]);
        // The augmented view places the border directly after the data.
        let v = kv.view();
        assert_eq!(v.rows(), 42);
        assert_eq!(v.row(40), &[100.0, 200.0]);
        assert_eq!(v.row(41), &[300.0, 400.0]);
        assert_eq!(v.row(39), &[39.0, 39.5]);
    }

    #[test]
    fn tail_updates_survive_interleaved_pushes() {
        let mut kv = KvBuf::new(2, 1);
        for i in 0..20 {
            kv.push_row(&[1.0, 2.0]);
            // Maintain a running column sum in the border row, the way a
            // checksummed cache does.
            let t = kv.tail_row_mut(0);
            t[0] += 1.0;
            t[1] += 2.0;
            assert_eq!(kv.tail_row(0), &[(i + 1) as f32, 2.0 * (i + 1) as f32]);
        }
    }

    #[test]
    fn fresh_buffer_is_zeroed() {
        let kv = KvBuf::with_row_capacity(4, 2, 8);
        assert_eq!(kv.rows(), 0);
        assert_eq!(kv.tail_row(0), &[0.0; 4]);
        assert_eq!(kv.tail_row(1), &[0.0; 4]);
    }

    #[test]
    fn gemm_over_cache_view_matches_owned_matrix() {
        use crate::gemm;
        use crate::rng::TensorRng;
        use crate::Matrix;
        let mut rng = TensorRng::seed_from(9);
        let a = rng.normal_matrix(3, 5, 1.0);
        let b = rng.normal_matrix(7, 5, 1.0);
        let mut kv = KvBuf::new(5, 0);
        for r in 0..7 {
            kv.push_row(b.row(r));
        }
        let mut out = Matrix::zeros(3, 7);
        gemm::matmul_nt_into(a.view(), kv.data_view(), out.view_mut());
        assert_eq!(out, gemm::matmul_nt(&a, &b), "views must hit the same bits");
    }

    #[test]
    fn arena_reuse_after_drop() {
        let before = crate::workspace::thread_alloc_events();
        {
            let mut kv = KvBuf::with_row_capacity(8, 2, 64);
            for _ in 0..32 {
                kv.push_row(&[1.0; 8]);
            }
        }
        // A same-shaped successor replays against the pooled buffer.
        let mut kv = KvBuf::with_row_capacity(8, 2, 64);
        for _ in 0..32 {
            kv.push_row(&[2.0; 8]);
        }
        let after = crate::workspace::thread_alloc_events();
        assert!(
            after - before <= 1,
            "second session must reuse the pooled store ({} allocs)",
            after - before
        );
    }

    #[test]
    #[should_panic]
    fn wrong_width_push_panics() {
        let mut kv = KvBuf::new(3, 0);
        kv.push_row(&[1.0, 2.0]);
    }
}
