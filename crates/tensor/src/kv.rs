//! Paged append-row storage for per-session KV caches.
//!
//! Autoregressive decoding appends one key/value row per generated token
//! and multiplies against the whole cache every step. [`PagedKv`] is the
//! storage primitive: rows live in **fixed-size blocks** of
//! `block_rows × cols` drawn from the thread-local [`crate::workspace`]
//! arena, each block optionally followed by `tail` pinned **border rows**
//! (where a checksummed cache keeps its per-block column-checksum tails).
//! Appending a row never moves existing data — when the current block
//! fills, a fresh block is checked out of the arena — so growth is O(cols)
//! per row with no grow-and-copy, blocks are stable addresses a serving
//! gateway can verify-on-move during eviction/compaction, and a retired
//! session's blocks return to the pool for the next session to reuse.
//!
//! GEMM interop does not require contiguity: the crate-internal
//! `PagedKv::src` view exposes the logical data matrix through the
//! `SrcRead` packing trait, which the packed kernels consume
//! element-order-faithfully — products over a paged cache are
//! bit-identical to the same product over a contiguous matrix (see the
//! paged entry points in [`crate::gemm`]).
//!
//! attn-lint: hot-path

use crate::pack::SrcRead;
use crate::workspace::{self, WsBuf};

/// Row-major matrix paged into fixed-size blocks, each with `tail` pinned
/// border rows after its data region. Backed by the thread-local
/// workspace arena.
pub struct PagedKv {
    cols: usize,
    tail: usize,
    block_rows: usize,
    /// Appended data rows across all blocks.
    rows: usize,
    /// Each block is exactly `(block_rows + tail) * cols` long: data rows
    /// first, then the border rows.
    blocks: Vec<WsBuf>,
}

impl PagedKv {
    /// An empty paged buffer of `cols`-wide rows in `block_rows`-row
    /// blocks, each carrying `tail` border rows (zero-initialised).
    pub fn new(cols: usize, tail: usize, block_rows: usize) -> Self {
        assert!(cols > 0, "PagedKv: cols must be positive");
        assert!(block_rows > 0, "PagedKv: block_rows must be positive");
        Self {
            cols,
            tail,
            block_rows,
            rows: 0,
            // attn-lint: allow(hot-path-alloc) — empty construction; blocks come from the workspace arena as rows append
            blocks: Vec::new(),
        }
    }

    /// Appended data rows (across all blocks, excluding borders).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Border rows per block.
    #[inline]
    pub fn tail(&self) -> usize {
        self.tail
    }

    /// Data rows per block.
    #[inline]
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of allocated blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// True when no rows have been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Valid data rows in block `b` (only the last block can be partial).
    #[inline]
    pub fn block_len(&self, b: usize) -> usize {
        debug_assert!(b < self.blocks.len());
        (self.rows - b * self.block_rows).min(self.block_rows)
    }

    /// Append one data row; returns the new row's global index. O(cols):
    /// existing rows never move — a full final block just means the next
    /// block is checked out of the arena (zero-filled, so fresh borders
    /// start at zero).
    ///
    /// # Panics
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f32]) -> usize {
        assert_eq!(row.len(), self.cols, "push_row: width mismatch");
        let idx = self.rows;
        if idx == self.blocks.len() * self.block_rows {
            self.blocks
                .push(workspace::take((self.block_rows + self.tail) * self.cols));
        }
        let local = idx % self.block_rows;
        let block = self.blocks.last_mut().expect("block just ensured");
        block[local * self.cols..(local + 1) * self.cols].copy_from_slice(row);
        self.rows = idx + 1;
        idx
    }

    /// Data row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        let b = r / self.block_rows;
        let local = r % self.block_rows;
        &self.blocks[b][local * self.cols..(local + 1) * self.cols]
    }

    /// Mutable data row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let b = r / self.block_rows;
        let local = r % self.block_rows;
        &mut self.blocks[b][local * self.cols..(local + 1) * self.cols]
    }

    /// Element of the data region at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.blocks[r / self.block_rows][(r % self.block_rows) * self.cols + c]
    }

    /// Border row `i` of block `b`.
    #[inline]
    pub fn tail_row(&self, b: usize, i: usize) -> &[f32] {
        debug_assert!(b < self.blocks.len() && i < self.tail);
        let r = self.block_rows + i;
        &self.blocks[b][r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable border row `i` of block `b`.
    #[inline]
    pub fn tail_row_mut(&mut self, b: usize, i: usize) -> &mut [f32] {
        debug_assert!(b < self.blocks.len() && i < self.tail);
        let r = self.block_rows + i;
        &mut self.blocks[b][r * self.cols..(r + 1) * self.cols]
    }

    /// The valid data rows of block `b` as one contiguous slice
    /// (`block_len(b) * cols` elements).
    #[inline]
    pub fn block_data(&self, b: usize) -> &[f32] {
        &self.blocks[b][..self.block_len(b) * self.cols]
    }

    /// The logical data matrix (`rows × cols`, or its transpose when
    /// `trans`) as a GEMM operand.
    #[inline]
    pub(crate) fn src(&self, trans: bool) -> PagedSrc<'_> {
        PagedSrc {
            blocks: &self.blocks,
            block_rows: self.block_rows,
            cols: self.cols,
            trans,
        }
    }
}

impl std::fmt::Debug for PagedKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedKv")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("tail", &self.tail)
            .field("block_rows", &self.block_rows)
            .field("num_blocks", &self.blocks.len())
            .finish()
    }
}

/// [`SrcRead`] view over a [`PagedKv`]'s data rows. Logical element order
/// is exactly the dense row-major order, so packed panels — and therefore
/// GEMM results — are bit-identical to a contiguous operand.
#[derive(Clone, Copy)]
pub(crate) struct PagedSrc<'a> {
    blocks: &'a [WsBuf],
    block_rows: usize,
    cols: usize,
    trans: bool,
}

impl SrcRead for PagedSrc<'_> {
    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        let (rr, cc) = if self.trans { (c, r) } else { (r, c) };
        self.blocks[rr / self.block_rows][(rr % self.block_rows) * self.cols + cc]
    }

    #[inline(always)]
    fn row_slice(&self, r: usize, c0: usize, len: usize) -> Option<&[f32]> {
        if self.trans {
            // A logical row crosses blocks in storage: element-wise path.
            None
        } else {
            let b = &self.blocks[r / self.block_rows];
            let off = (r % self.block_rows) * self.cols + c0;
            Some(&b[off..off + len])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rows_are_readable_in_order_across_blocks() {
        let mut kv = PagedKv::new(3, 0, 4);
        for i in 0..10 {
            let row = [i as f32, 2.0 * i as f32, -(i as f32)];
            assert_eq!(kv.push_row(&row), i);
        }
        assert_eq!(kv.rows(), 10);
        assert_eq!(kv.num_blocks(), 3);
        assert_eq!(kv.block_len(0), 4);
        assert_eq!(kv.block_len(2), 2);
        for i in 0..10 {
            assert_eq!(kv.row(i), &[i as f32, 2.0 * i as f32, -(i as f32)]);
            assert_eq!(kv.at(i, 1), 2.0 * i as f32);
        }
    }

    #[test]
    fn per_block_tails_are_independent_and_survive_growth() {
        let mut kv = PagedKv::new(2, 2, 3);
        for i in 0..7 {
            kv.push_row(&[i as f32, i as f32 + 0.5]);
            // Maintain a running column sum in the current block's border,
            // the way a checksummed cache does.
            let b = i / 3;
            let t = kv.tail_row_mut(b, 0);
            t[0] += i as f32;
            t[1] += i as f32 + 0.5;
        }
        // Block 0 saw rows 0..3, block 1 rows 3..6, block 2 row 6.
        assert_eq!(kv.tail_row(0, 0), &[3.0, 4.5]);
        assert_eq!(kv.tail_row(1, 0), &[12.0, 13.5]);
        assert_eq!(kv.tail_row(2, 0), &[6.0, 6.5]);
        // The second border row of each block was never touched: zero.
        for b in 0..3 {
            assert_eq!(kv.tail_row(b, 1), &[0.0, 0.0]);
        }
    }

    #[test]
    fn fresh_blocks_are_zeroed() {
        let mut kv = PagedKv::new(4, 2, 8);
        kv.push_row(&[1.0; 4]);
        assert_eq!(kv.tail_row(0, 0), &[0.0; 4]);
        assert_eq!(kv.tail_row(0, 1), &[0.0; 4]);
    }

    #[test]
    fn block_data_spans_valid_rows_only() {
        let mut kv = PagedKv::new(2, 1, 4);
        for i in 0..6 {
            kv.push_row(&[i as f32, 10.0 + i as f32]);
        }
        assert_eq!(kv.block_data(0).len(), 8);
        assert_eq!(kv.block_data(1), &[4.0, 14.0, 5.0, 15.0]);
    }

    #[test]
    fn arena_reuse_after_drop() {
        {
            let mut kv = PagedKv::new(8, 2, 16);
            for _ in 0..32 {
                kv.push_row(&[1.0; 8]);
            }
        }
        let before = crate::workspace::thread_alloc_events();
        // A same-shaped successor replays against the pooled blocks.
        let mut kv = PagedKv::new(8, 2, 16);
        for _ in 0..32 {
            kv.push_row(&[2.0; 8]);
        }
        let after = crate::workspace::thread_alloc_events();
        assert_eq!(
            after,
            before,
            "second session must reuse the pooled blocks ({} allocs)",
            after - before
        );
    }

    #[test]
    fn paged_src_reads_logical_elements_and_transpose() {
        let mut kv = PagedKv::new(3, 1, 2);
        for i in 0..5 {
            kv.push_row(&[3.0 * i as f32, 3.0 * i as f32 + 1.0, 3.0 * i as f32 + 2.0]);
        }
        let s = kv.src(false);
        let t = kv.src(true);
        for r in 0..5 {
            for c in 0..3 {
                assert_eq!(s.at(r, c), (3 * r + c) as f32);
                assert_eq!(t.at(c, r), (3 * r + c) as f32);
            }
            // Row slices are served within a block and never cross tails.
            let sl = s.row_slice(r, 1, 2).unwrap();
            assert_eq!(sl, &[(3 * r + 1) as f32, (3 * r + 2) as f32]);
        }
        assert!(t.row_slice(0, 0, 2).is_none());
    }

    #[test]
    #[should_panic]
    fn wrong_width_push_panics() {
        let mut kv = PagedKv::new(3, 0, 4);
        kv.push_row(&[1.0, 2.0]);
    }
}
