//! Protection scheduling: one owner for the per-section frequency gates.
//!
//! Paper §4.5 assigns each section a detection *frequency*; a frequency is
//! realised as a deterministic [`FrequencyGate`] that decides, per
//! execution, whether the section checks. Before this module existed every
//! caller (the trainer, ad-hoc experiment loops) hand-rolled one gate per
//! section and had to keep them in step with the config — an easy way to
//! desync. [`ProtectionPolicy`] owns the config *and* all four gates and
//! hands out ready-made [`SectionToggles`] per execution, so there is one
//! place where "which sections check this step" is decided.

use crate::attention::SectionToggles;
use crate::config::{FrequencyGate, ProtectionConfig};

/// Owns a [`ProtectionConfig`] plus the per-section [`FrequencyGate`]s, and
/// realises the configured frequencies as per-execution [`SectionToggles`].
///
/// Gates advance only through [`Self::next_toggles`], so two callers can
/// never observe inconsistent phases, and a config update via
/// [`Self::sync_config`] keeps the accumulated phases (matching the paper's
/// semantics: changing a frequency mid-training re-paces future checks, it
/// does not reset history).
#[derive(Debug, Clone)]
pub struct ProtectionPolicy {
    config: ProtectionConfig,
    gate_as: FrequencyGate,
    gate_cl: FrequencyGate,
    gate_o: FrequencyGate,
    gate_ffn: FrequencyGate,
}

impl ProtectionPolicy {
    /// Build a policy around `config` with all gates at phase zero.
    pub fn new(config: ProtectionConfig) -> Self {
        Self {
            config,
            gate_as: FrequencyGate::default(),
            gate_cl: FrequencyGate::default(),
            gate_o: FrequencyGate::default(),
            gate_ffn: FrequencyGate::default(),
        }
    }

    /// The governing configuration.
    pub fn config(&self) -> &ProtectionConfig {
        &self.config
    }

    /// Replace the configuration, keeping the gates' accumulated phases.
    pub fn sync_config(&mut self, config: ProtectionConfig) {
        self.config = config;
    }

    /// Advance every gate one execution and return the sections to protect
    /// this execution.
    pub fn next_toggles(&mut self) -> SectionToggles {
        SectionToggles {
            s_as: self.gate_as.tick(self.config.f_as),
            s_cl: self.gate_cl.tick(self.config.f_cl),
            s_o: self.gate_o.tick(self.config.f_o),
            s_ffn: self.gate_ffn.tick(self.config.f_ffn),
        }
    }

    /// Could any section ever check under this policy? Exactly
    /// `!config.is_off()` — see [`FrequencyGate::would_ever_fire`] for why
    /// the underlying `== 0.0` sentinel comparison is sound.
    pub fn would_ever_fire(&self) -> bool {
        FrequencyGate::would_ever_fire(self.config.f_as)
            || FrequencyGate::would_ever_fire(self.config.f_cl)
            || FrequencyGate::would_ever_fire(self.config.f_o)
            || FrequencyGate::would_ever_fire(self.config.f_ffn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_policy_always_checks_everything() {
        let mut p = ProtectionPolicy::new(ProtectionConfig::full());
        for _ in 0..10 {
            let t = p.next_toggles();
            assert!(t.s_as && t.s_cl && t.s_o && t.s_ffn);
        }
    }

    #[test]
    fn off_policy_never_checks_and_never_fires() {
        let mut p = ProtectionPolicy::new(ProtectionConfig::off());
        assert!(!p.would_ever_fire());
        for _ in 0..10 {
            assert!(!p.next_toggles().any());
        }
    }

    #[test]
    fn half_frequency_alternates_in_lockstep() {
        let mut p = ProtectionPolicy::new(
            ProtectionConfig::with_frequencies(0.5, 0.5, 0.5).ffn_frequency(0.5),
        );
        let pattern: Vec<bool> = (0..6).map(|_| p.next_toggles().s_as).collect();
        assert_eq!(
            pattern,
            vec![false, true, false, true, false, true],
            "error-diffusion gate at 0.5 checks every other execution"
        );
        // All four sections share the phase when configured identically.
        let t = p.next_toggles();
        assert_eq!(t.s_as, t.s_ffn);
    }

    #[test]
    fn sync_config_keeps_gate_phase() {
        let mut p = ProtectionPolicy::new(ProtectionConfig::with_frequencies(0.5, 0.5, 0.5));
        let _ = p.next_toggles(); // phase 0.5 accumulated
        p.sync_config(ProtectionConfig::full());
        // Next tick fires (0.5 + 1.0 crosses 1), and from a *fresh* policy
        // it would too — but the retained phase shows in the one after.
        assert!(p.next_toggles().s_as);
        assert!(p.next_toggles().s_as);
    }

    #[test]
    fn would_ever_fire_matches_is_off() {
        for cfg in [
            ProtectionConfig::full(),
            ProtectionConfig::attention_only(),
            ProtectionConfig::off().ffn_frequency(0.25),
        ] {
            assert_eq!(ProtectionPolicy::new(cfg).would_ever_fire(), !cfg.is_off());
        }
        assert!(!ProtectionPolicy::new(ProtectionConfig::off()).would_ever_fire());
    }
}
