//! ABFT-protected autoregressive decode: single-query attention over a
//! checksummed KV cache.
//!
//! Training protects attention one full `seq × seq` forward at a time;
//! serving appends one token per step and re-reads the whole prefix. This
//! module keeps every decode-time GEMM inside the same three guarded
//! sections as the training forward — `S_AS` (Q/K projections + the
//! appended `q·Kᵀ` score row), `S_CL` (V projection + `ap·V`), `S_O`
//! (output projection) — with three decode-specific twists:
//!
//! * **Incremental cache encoding.** [`AttnKvCache`] stores per-head K
//!   blocks with their two column-checksum rows physically pinned after
//!   the data rows (a [`KvBuf`] tail — the `CheckedMatrix`-augmented
//!   layout, so the cache *is* the GEMM operand), and per-head V blocks
//!   with the two row-checksum columns inline in each row. Appending a
//!   token updates K's column checksums in place — O(d) per token, not an
//!   O(seq·d) re-encode — and V rows carry the checksums ridden out of
//!   their producing projection GEMM.
//! * **Verify-on-append.** The training forward heals `Q`/`K`/`V` lazily,
//!   at the section's delayed detection point. A decode step instead heals
//!   them *eagerly*, before the K/V rows join the cache: cache rows are
//!   long-lived state reused by every future step, and a surviving extreme
//!   value would both poison all later score rows and be folded into the
//!   incremental checksums, making it permanently invisible. The score,
//!   context, and output GEMMs keep the delayed-detection shape.
//! * **The blocked accumulation contract.** Every decode GEMM runs the
//!   same packed kernels (and therefore the same per-element KC-blocked
//!   accumulation order) as the full forward, so a decoded step is
//!   **bit-identical** to re-running the full protected forward over the
//!   grown prefix — the parity property `tests/decode_parity.rs` pins —
//!   and exact replay restores corrected elements to their original bits.

use crate::attention::{AttentionWeights, AttnOp, FaultSite, ProtectedAttention};
use crate::checked::CheckedMatrix;
use crate::checksum::weight;
use crate::config::ProtectionConfig;
use crate::report::SectionId;
use crate::section::{replay_nn, ForwardCtx, GuardedSection};
use attn_tensor::gemm::{self, NC};
use attn_tensor::kv::KvBuf;
use attn_tensor::ops::{apply_additive_mask, softmax_rows_inplace};
use attn_tensor::Matrix;

/// Per-session, per-layer KV cache with incrementally maintained checksums.
#[derive(Debug)]
pub struct AttnKvCache {
    heads: usize,
    d: usize,
    /// Per-head key blocks, `len × d` data rows + 2 pinned column-checksum
    /// tail rows when checksummed.
    k: Vec<KvBuf>,
    /// Per-head value blocks; rows are `d + 2` wide when checksummed (data
    /// followed by the row-checksum pair), `d` wide otherwise.
    v: Vec<KvBuf>,
    /// Whether checksum borders are maintained (protection not hard-off).
    checksummed: bool,
}

impl AttnKvCache {
    /// Empty cache for a `hidden`-wide, `heads`-headed attention block.
    /// `checksummed` controls whether ABFT borders are maintained; an
    /// unprotected serving path skips them entirely.
    ///
    /// # Panics
    /// Panics when `heads` does not divide `hidden`.
    pub fn new(hidden: usize, heads: usize, checksummed: bool) -> Self {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "heads must divide hidden"
        );
        let d = hidden / heads;
        let k_tail = if checksummed { 2 } else { 0 };
        let v_width = d + if checksummed { 2 } else { 0 };
        Self {
            heads,
            d,
            k: (0..heads).map(|_| KvBuf::new(d, k_tail)).collect(),
            v: (0..heads).map(|_| KvBuf::new(v_width, 0)).collect(),
            checksummed,
        }
    }

    /// Cache sized for `attn`, checksummed unless protection is hard-off.
    pub fn for_attention(attn: &ProtectedAttention) -> Self {
        Self::new(
            attn.weights.hidden,
            attn.weights.heads,
            !attn.config.is_off(),
        )
    }

    /// Cached tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.k[0].rows()
    }

    /// True before the first append.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Head count.
    #[inline]
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head width.
    #[inline]
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// Whether checksum borders are maintained.
    #[inline]
    pub fn checksummed(&self) -> bool {
        self.checksummed
    }

    /// Append one (verified) full-width key row, splitting it per head and
    /// folding each element into the pinned column checksums — O(hidden)
    /// total, independent of the cached prefix length.
    pub fn append_k(&mut self, k_row: &[f32]) {
        assert_eq!(k_row.len(), self.heads * self.d, "append_k: width");
        for (h, kb) in self.k.iter_mut().enumerate() {
            let seg = &k_row[h * self.d..(h + 1) * self.d];
            let idx = kb.push_row(seg);
            if self.checksummed {
                let w = weight(idx);
                for (t0, &v) in kb.tail_row_mut(0).iter_mut().zip(seg) {
                    *t0 += v;
                }
                for (t1, &v) in kb.tail_row_mut(1).iter_mut().zip(seg) {
                    *t1 += w * v;
                }
            }
        }
    }

    /// Append one head's (verified) value row. When the producing GEMM ran
    /// guarded, `v_h` carries ridden row checksums and they are stored
    /// as-is; otherwise (section gated off this step, but the cache still
    /// checksummed) the pair is recomputed under the blocked encoder
    /// contract so later guarded steps can ride it.
    ///
    /// # Panics
    /// Panics on width mismatch or when called with head rows out of sync
    /// with [`Self::append_k`].
    pub fn append_v(&mut self, head: usize, v_h: &CheckedMatrix) {
        assert_eq!(v_h.rows(), 1, "append_v: one row per token");
        assert_eq!(v_h.cols(), self.d, "append_v: head width");
        let vb = &mut self.v[head];
        if !self.checksummed {
            vb.push_row(v_h.logical_row(0));
            return;
        }
        if v_h.has_row_checksums() {
            // Data + ridden (checksum, weighted checksum), already laid
            // out contiguously in the augmented buffer row.
            vb.push_row(v_h.buf().row(0));
        } else {
            let data = v_h.logical_row(0);
            let (s, ws) = row_checksum_blocked(data);
            let mut row = Vec::with_capacity(self.d + 2);
            row.extend_from_slice(data);
            row.push(s);
            row.push(ws);
            vb.push_row(&row);
        }
    }

    /// Seed the cache from full-forward K/V activations (`seq × hidden`,
    /// post-correction — e.g. the prefill tape), row by row, so the cache
    /// state is exactly what `seq` decode appends would have produced.
    pub fn seed(&mut self, k: &Matrix, v: &Matrix) {
        assert_eq!(k.cols(), self.heads * self.d);
        assert_eq!((k.rows(), k.cols()), (v.rows(), v.cols()));
        for r in 0..k.rows() {
            self.append_k(k.row(r));
            for h in 0..self.heads {
                let seg = &v.row(r)[h * self.d..(h + 1) * self.d];
                let vm = CheckedMatrix::from_plain_owned(Matrix::from_vec(1, self.d, seg.to_vec()));
                self.append_v(h, &vm);
            }
        }
    }

    /// Key element `(token, kk)` of `head` — the replay view of the cache.
    #[inline]
    pub fn k_at(&self, head: usize, token: usize, kk: usize) -> f32 {
        self.k[head].at(token, kk)
    }

    /// Value element `(token, c)` of `head`.
    #[inline]
    pub fn v_at(&self, head: usize, token: usize, c: usize) -> f32 {
        self.v[head].at(token, c)
    }

    /// The appended score row `q_h · K_hᵀ` over the grown cache, computed
    /// with the packed NT kernel directly over the cache view. `q_h`'s
    /// column checksums (3 buffer rows) ride through; the cache's pinned
    /// column-checksum tail transposes into the row's row checksums — the
    /// single-query image of `S_AS` acquiring both borders.
    pub fn score_row(&self, q_h: &CheckedMatrix, head: usize) -> CheckedMatrix {
        assert_eq!(q_h.rows(), 1, "score_row: single query");
        assert_eq!(q_h.cols(), self.d, "score_row: head width");
        let kb = &self.k[head];
        let len = kb.rows();
        assert!(len > 0, "score_row: empty cache");
        let (b_view, row_cs) = if self.checksummed {
            (kb.view(), true)
        } else {
            (kb.data_view(), false)
        };
        let mut buf = Matrix::zeros(q_h.buf().rows(), b_view.rows());
        gemm::matmul_nt_into(q_h.buf().view(), b_view, buf.view_mut());
        CheckedMatrix::from_augmented(1, len, q_h.has_col_checksums(), row_cs, buf)
    }

    /// The appended context row `ap · V_h` over the grown cache. When
    /// `active`, `ap`'s column encoding rides inside the GEMM's packing
    /// pass (the fused §4.6 entry, single-row image) and the cache rows'
    /// inline row checksums ride through to the product.
    pub fn context_row(&self, ap: &Matrix, head: usize, active: bool) -> CheckedMatrix {
        assert_eq!(ap.rows(), 1, "context_row: single query");
        let vb = &self.v[head];
        assert_eq!(ap.cols(), vb.rows(), "context_row: prefix length");
        let width = vb.cols();
        if active {
            let mut buf = Matrix::zeros(3, width);
            gemm::gemm_encode_cols_into(ap.view(), vb.data_view(), buf.view_mut());
            CheckedMatrix::from_augmented(1, self.d, true, self.checksummed, buf)
        } else {
            let mut buf = Matrix::zeros(1, width);
            gemm::matmul_into(ap.view(), vb.data_view(), buf.view_mut());
            if self.checksummed {
                // Drop the riding checksum columns: an unguarded step
                // returns plain data, exactly like the inactive training
                // sections.
                CheckedMatrix::from_plain(&buf.submatrix(0, 1, 0, self.d))
            } else {
                CheckedMatrix::from_plain_owned(buf)
            }
        }
    }

    /// Worst absolute disagreement between the maintained K column
    /// checksums and a from-scratch recomputation over the cached rows
    /// (diagnostics/tests: bounds incremental drift).
    pub fn max_k_checksum_drift(&self) -> f32 {
        assert!(self.checksummed, "unchecksummed cache has no borders");
        let mut worst = 0.0f32;
        for kb in &self.k {
            for c in 0..kb.cols() {
                let mut s = 0.0f64;
                let mut ws = 0.0f64;
                for r in 0..kb.rows() {
                    let v = kb.at(r, c) as f64;
                    s += v;
                    ws += weight(r) as f64 * v;
                }
                worst = worst
                    .max((kb.tail_row(0)[c] - s as f32).abs())
                    .max((kb.tail_row(1)[c] - ws as f32).abs());
            }
        }
        worst
    }
}

/// `(checksum, weighted checksum)` of one row under the NC-blocked encoder
/// contract (see `crate::checksum::row_checksums`).
fn row_checksum_blocked(row: &[f32]) -> (f32, f32) {
    let mut s = 0.0f32;
    let mut ws = 0.0f32;
    for c0 in (0..row.len()).step_by(NC) {
        let cend = (c0 + NC).min(row.len());
        let mut ps = 0.0f32;
        let mut pws = 0.0f32;
        for (c, &v) in row[c0..cend].iter().enumerate() {
            ps += v;
            pws += weight(c0 + c) * v;
        }
        s += ps;
        ws += pws;
    }
    (s, ws)
}

/// Borrowed view of one attention block's parameters, for the decode hot
/// path: one of these is built per step from wherever the parameters
/// already live (`attn_model`'s `Param`s, an [`AttentionWeights`]), so a
/// decoded token never pays a `hidden × hidden` weight-snapshot clone per
/// layer.
#[derive(Clone, Copy)]
pub struct AttentionWeightsRef<'a> {
    /// Model width.
    pub hidden: usize,
    /// Head count (must divide `hidden`).
    pub heads: usize,
    /// Query projection, `hidden × hidden`.
    pub wq: &'a Matrix,
    /// Key projection.
    pub wk: &'a Matrix,
    /// Value projection.
    pub wv: &'a Matrix,
    /// Output projection.
    pub wo: &'a Matrix,
    /// Query bias.
    pub bq: &'a [f32],
    /// Key bias.
    pub bk: &'a [f32],
    /// Value bias.
    pub bv: &'a [f32],
    /// Output bias.
    pub bo: &'a [f32],
}

impl AttentionWeightsRef<'_> {
    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

impl<'a> From<&'a AttentionWeights> for AttentionWeightsRef<'a> {
    fn from(w: &'a AttentionWeights) -> Self {
        Self {
            hidden: w.hidden,
            heads: w.heads,
            wq: &w.wq,
            wk: &w.wk,
            wv: &w.wv,
            wo: &w.wo,
            bq: &w.bq,
            bk: &w.bk,
            bv: &w.bv,
            bo: &w.bo,
        }
    }
}

impl ProtectedAttention {
    /// One protected autoregressive decode step — see the free
    /// [`decode_step`] this delegates to (borrowing the owned weights).
    pub fn decode_step(
        &self,
        x: &Matrix,
        cache: &mut AttnKvCache,
        ctx: &mut ForwardCtx<'_, '_>,
    ) -> Matrix {
        decode_step(&(&self.weights).into(), &self.config, x, cache, ctx)
    }
}

/// One protected autoregressive decode step: append token `x`
/// (`1 × hidden`, the block input row) to `cache` and return the
/// attention output row (`1 × hidden`).
///
/// `ctx.mask`, when present, must be the **single mask row** of the new
/// token over the grown prefix (`1 × (len+1)`), e.g. row `len` of the
/// causal or local-banded mask — not the full `seq × seq` matrix the
/// training forward takes. `ctx.toggles`/`ctx.hook`/`ctx.report` have
/// their usual meaning; hooks fire at the same [`FaultSite`]s as the
/// training forward, on the single-row matrices.
///
/// Fault-free, the returned row is bit-identical to row `len` of
/// [`ProtectedAttention::forward_ctx`] over the grown prefix (see the
/// module docs for why the contract holds); after an injected extreme
/// value in any of the six decode GEMMs it is *still* bit-identical, via
/// checksum correction plus exact replay.
///
/// # Panics
/// Panics on shape mismatches (input width, cache geometry, mask row).
#[allow(clippy::needless_range_loop)] // head index drives several buffers
pub fn decode_step(
    w: &AttentionWeightsRef<'_>,
    config: &ProtectionConfig,
    x: &Matrix,
    cache: &mut AttnKvCache,
    ctx: &mut ForwardCtx<'_, '_>,
) -> Matrix {
    {
        assert_eq!(x.rows(), 1, "decode_step: one token per step");
        assert_eq!(x.cols(), w.hidden, "decode_step: input width");
        assert_eq!(cache.heads(), w.heads, "decode_step: cache geometry");
        assert_eq!(
            cache.head_dim(),
            w.head_dim(),
            "decode_step: cache geometry"
        );
        let d = w.head_dim();
        let scale = 1.0 / (d as f32).sqrt();
        let new_len = cache.len() + 1;
        let mask = ctx.mask;
        if let Some(m) = mask {
            assert_eq!(
                (m.rows(), m.cols()),
                (1, new_len),
                "decode_step: mask must be one row over the grown prefix"
            );
        }

        let s_as = GuardedSection::begin(
            SectionId::AttentionScore,
            config,
            ctx.toggles.s_as,
            ctx.report,
        );
        let s_cl = GuardedSection::begin(
            SectionId::ContextLayer,
            config,
            ctx.toggles.s_cl,
            ctx.report,
        );
        let s_o = GuardedSection::begin(SectionId::Output, config, ctx.toggles.s_o, ctx.report);

        // ------------------------------------------------ section S_AS
        // Single-query projections through the fused encode entry: the
        // row's column checksums accumulate inside the GEMM packing pass.
        let mut q = s_as.gemm_encode_cols(x, &s_as.operand(w.wq));
        let mut k = s_as.gemm_encode_cols(x, &s_as.operand(w.wk));
        q.add_bias(w.bq);
        k.add_bias(w.bk);
        ctx.fire(
            FaultSite {
                op: AttnOp::Q,
                head: None,
            },
            &mut q,
        );
        ctx.fire(
            FaultSite {
                op: AttnOp::K,
                head: None,
            },
            &mut k,
        );
        // Verify-on-append (see module docs): heal eagerly — K joins
        // long-lived cache state this step, Q feeds every head's score row.
        if s_as.active() {
            s_as.heal_operand_cols(ctx.report, &mut q, usize::MAX, |_r, c| {
                replay_nn(x.row(0), |kk| w.wq[(kk, c)]) + w.bq[c]
            });
            s_as.heal_operand_cols(ctx.report, &mut k, usize::MAX, |_r, c| {
                replay_nn(x.row(0), |kk| w.wk[(kk, c)]) + w.bk[c]
            });
        }
        cache.append_k(k.logical_row(0));

        let mut ap_rows: Vec<Matrix> = Vec::with_capacity(w.heads);
        for h in 0..w.heads {
            let qh = q.slice_cols(h * d, (h + 1) * d);
            let mut as_row = cache.score_row(&qh, h);
            as_row.scale_inplace(scale);
            ctx.fire(
                FaultSite {
                    op: AttnOp::AS,
                    head: Some(h),
                },
                &mut as_row,
            );
            let mut det = s_as.detect(&mut as_row, h);
            if det.detections() > 0 {
                det.refine(&mut as_row, |_r, c| {
                    replay_nn(qh.logical_row(0), |kk| cache.k_at(h, c, kk)) * scale
                });
            }
            det.absorb(ctx.report);

            // Leave the checksummed region: mask + softmax are nonlinear;
            // the re-encoding rides inside the fused `ap·V` entry below.
            let ap = s_cl.exit_cols(&as_row, |m| {
                if let Some(mrow) = mask {
                    apply_additive_mask(m, mrow);
                }
                softmax_rows_inplace(m);
            });
            ap_rows.push(ap);
        }

        // ------------------------------------------------ section S_CL
        let x_plain = s_cl.operand(x);
        let mut cl_blocks = Vec::with_capacity(w.heads);
        for h in 0..w.heads {
            let wv_h = w.wv.submatrix(0, w.hidden, h * d, (h + 1) * d);
            let bv_h = &w.bv[h * d..(h + 1) * d];
            let mut v_h = s_cl.gemm_encode_rows(&x_plain, &wv_h);
            v_h.add_bias(bv_h);
            ctx.fire(
                FaultSite {
                    op: AttnOp::V,
                    head: Some(h),
                },
                &mut v_h,
            );
            // Verify-on-append: the V row joins the cache now.
            if s_cl.active() && v_h.has_row_checksums() {
                s_cl.heal_operand_rows(ctx.report, &mut v_h, h, |_r, c| {
                    replay_nn(x.row(0), |kk| wv_h[(kk, c)]) + bv_h[c]
                });
            }
            cache.append_v(h, &v_h);

            let mut cl_row = cache.context_row(&ap_rows[h], h, s_cl.active());
            ctx.fire(
                FaultSite {
                    op: AttnOp::CL,
                    head: Some(h),
                },
                &mut cl_row,
            );
            let mut det = s_cl.detect(&mut cl_row, h);
            if det.detections() > 0 {
                let ap = &ap_rows[h];
                det.refine(&mut cl_row, |_r, c| {
                    replay_nn(ap.row(0), |kk| cache.v_at(h, kk, c))
                });
            }
            det.absorb(ctx.report);
            cl_blocks.push(cl_row.drop_row_checksums());
        }
        let cl_merged = CheckedMatrix::concat_cols(&cl_blocks);

        // ------------------------------------------------ section S_O
        let mut o = s_o.gemm_adopt_cols(&cl_merged, &s_o.operand(w.wo));
        o.add_bias(w.bo);
        ctx.fire(
            FaultSite {
                op: AttnOp::O,
                head: None,
            },
            &mut o,
        );
        let mut det = s_o.detect(&mut o, usize::MAX);
        if det.fixes() > 0 {
            det.refine(&mut o, |_r, c| {
                replay_nn(cl_merged.logical_row(0), |kk| w.wo[(kk, c)]) + w.bo[c]
            });
        }
        det.absorb(ctx.report);
        o.logical()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // step index t addresses parallel row/prefix structures
mod tests {
    use super::*;
    use crate::attention::{AttentionWeights, ForwardOptions, SectionToggles};
    use crate::config::ProtectionConfig;
    use crate::report::AbftReport;
    use attn_fault::FaultKind;
    use attn_tensor::ops::causal_mask;
    use attn_tensor::rng::TensorRng;

    fn setup(seq: usize, hidden: usize, heads: usize) -> (Matrix, ProtectedAttention) {
        let mut rng = TensorRng::seed_from(77);
        let w = AttentionWeights::random(hidden, heads, &mut rng);
        let x = rng.normal_matrix(seq, hidden, 0.5);
        (x, ProtectedAttention::new(w, ProtectionConfig::full()))
    }

    fn decode_all(
        attn: &ProtectedAttention,
        x: &Matrix,
        masked: bool,
        toggles: SectionToggles,
    ) -> (Vec<Matrix>, AbftReport) {
        let mut cache = AttnKvCache::for_attention(attn);
        let mut report = AbftReport::default();
        let mut rows = Vec::new();
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mask_row = masked.then(|| Matrix::zeros(1, t + 1));
            let mut ctx = ForwardCtx {
                mask: mask_row.as_ref(),
                toggles,
                hook: None,
                report: &mut report,
            };
            rows.push(attn.decode_step(&x_row, &mut cache, &mut ctx));
        }
        (rows, report)
    }

    #[test]
    fn decode_rows_are_bit_identical_to_full_forward_over_each_prefix() {
        let (x, attn) = setup(9, 32, 4);
        let (rows, report) = decode_all(&attn, &x, false, SectionToggles::all());
        assert!(
            report.is_quiet(),
            "fault-free decode must be quiet: {report}"
        );
        for t in 0..x.rows() {
            let prefix = x.submatrix(0, t + 1, 0, x.cols());
            let mut r = AbftReport::default();
            let full = attn.forward(&prefix, ForwardOptions::default(), &mut r);
            let full_row = full.output.row(t);
            let dec_row = rows[t].row(0);
            for (c, (a, b)) in dec_row.iter().zip(full_row).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "t={t} c={c}: decode {a} vs full {b}"
                );
            }
        }
    }

    #[test]
    fn decode_parity_holds_with_causal_mask_rows() {
        let (x, attn) = setup(7, 24, 3);
        let mut cache = AttnKvCache::for_attention(&attn);
        let mut report = AbftReport::default();
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let full_mask = causal_mask(t + 1);
            let mask_row = full_mask.submatrix(t, t + 1, 0, t + 1);
            let mut ctx = ForwardCtx {
                mask: Some(&mask_row),
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut report,
            };
            let dec = attn.decode_step(&x_row, &mut cache, &mut ctx);

            let prefix = x.submatrix(0, t + 1, 0, x.cols());
            let mut r = AbftReport::default();
            let full = attn.forward(
                &prefix,
                ForwardOptions {
                    mask: Some(&full_mask),
                    ..Default::default()
                },
                &mut r,
            );
            assert_eq!(
                dec.row(0).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                full.output
                    .row(t)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "t={t}"
            );
        }
    }

    #[test]
    fn decode_parity_holds_with_sections_gated_off() {
        // Per-step frequency gating must not perturb logical values: an
        // unguarded decode step is bit-transparent, like inactive training
        // sections.
        let (x, attn) = setup(6, 16, 2);
        let (all_rows, _) = decode_all(&attn, &x, false, SectionToggles::all());
        let (none_rows, report) = decode_all(&attn, &x, false, SectionToggles::none());
        assert_eq!(report.sections_checked, 0);
        for (t, (a, b)) in all_rows.iter().zip(&none_rows).enumerate() {
            assert_eq!(a, b, "t={t}: gated-off step diverged");
        }
    }

    #[test]
    fn incremental_k_checksums_track_the_cache() {
        let (x, attn) = setup(24, 32, 4);
        let mut cache = AttnKvCache::for_attention(&attn);
        let mut report = AbftReport::default();
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut report,
            };
            let _ = attn.decode_step(&x_row, &mut cache, &mut ctx);
        }
        assert_eq!(cache.len(), 24);
        let drift = cache.max_k_checksum_drift();
        assert!(drift < 1e-3, "incremental checksum drift {drift}");
    }

    fn inject_then_check(op: AttnOp, kind: FaultKind) {
        let (x, attn) = setup(8, 32, 4);
        let (clean_rows, _) = decode_all(&attn, &x, false, SectionToggles::all());

        let mut cache = AttnKvCache::for_attention(&attn);
        let mut report = AbftReport::default();
        let strike_at = 5usize; // a mid-sequence step with a grown cache
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut fired = false;
            let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
                let right = site.op == op && (site.head.is_none() || site.head == Some(1));
                if right && !fired {
                    fired = true;
                    let (r, c) = (0, m.cols() * 2 / 3);
                    let old = m.get(r, c);
                    m.set(r, c, kind.apply(old));
                }
            };
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: (t == strike_at).then_some(&mut hook as _),
                report: &mut report,
            };
            let out = attn.decode_step(&x_row, &mut cache, &mut ctx);
            assert_eq!(
                out, clean_rows[t],
                "{op:?}/{kind:?} t={t}: corrected decode must match fault-free bits; {report}"
            );
            if t == strike_at {
                assert!(fired, "hook never fired for {op:?}");
            }
        }
        assert!(
            report.correction_count() > 0,
            "{op:?}/{kind:?}: no corrections recorded"
        );
        assert_eq!(report.unrecovered, 0, "{op:?}/{kind:?}");
    }

    #[test]
    fn decode_corrects_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::Inf);
        }
    }

    #[test]
    fn decode_corrects_nan_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NaN);
        }
    }

    #[test]
    fn decode_corrects_near_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NearInf);
        }
    }

    #[test]
    fn unprotected_decode_lets_faults_poison_the_cache() {
        let (x, attn) = setup(6, 16, 2);
        let off = ProtectedAttention::new(attn.weights.clone(), ProtectionConfig::off());
        let mut cache = AttnKvCache::for_attention(&off);
        assert!(!cache.checksummed());
        let mut report = AbftReport::default();
        let mut poisoned = false;
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
                if site.op == AttnOp::K {
                    m.set(0, 3, f32::NAN);
                }
            };
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::none(),
                hook: (t == 2).then_some(&mut hook as _),
                report: &mut report,
            };
            let out = off.decode_step(&x_row, &mut cache, &mut ctx);
            if t >= 2 {
                poisoned |= !out.all_finite();
            }
        }
        assert!(poisoned, "unprotected NaN in K must reach decode outputs");
        assert_eq!(report.correction_count(), 0);
    }

    #[test]
    fn seeded_cache_continues_bit_identically() {
        // Prefill via the full forward, seed the cache from its K/V tape,
        // then decode the tail — the parity contract across the seam.
        let (x, attn) = setup(10, 32, 4);
        let (all_decoded, _) = decode_all(&attn, &x, false, SectionToggles::all());

        let prefill = 6usize;
        let prefix = x.submatrix(0, prefill, 0, x.cols());
        let mut r = AbftReport::default();
        let full = attn.forward(&prefix, ForwardOptions::default(), &mut r);
        let mut cache = AttnKvCache::for_attention(&attn);
        cache.seed(&full.cache.k, &full.cache.v);
        assert_eq!(cache.len(), prefill);

        let mut report = AbftReport::default();
        for t in prefill..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut report,
            };
            let out = attn.decode_step(&x_row, &mut cache, &mut ctx);
            assert_eq!(out, all_decoded[t], "t={t}: seam broke bit parity");
        }
        assert!(report.is_quiet());
    }
}
