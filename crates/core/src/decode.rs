//! ABFT-protected autoregressive decode: single-query attention over a
//! checksummed KV cache.
//!
//! Training protects attention one full `seq × seq` forward at a time;
//! serving appends one token per step and re-reads the whole prefix. This
//! module keeps every decode-time GEMM inside the same three guarded
//! sections as the training forward — `S_AS` (Q/K projections + the
//! appended `q·Kᵀ` score row), `S_CL` (V projection + `ap·V`), `S_O`
//! (output projection) — with three decode-specific twists:
//!
//! * **Incremental cache encoding.** [`AttnKvCache`] stores per-head K
//!   rows in fixed-size [`PagedKv`] blocks, each block carrying its own
//!   two column-checksum tail rows over **local** (position-within-block)
//!   weights — so a block is a self-verifying unit that an eviction or
//!   compaction pass can check and move independently ([`ColdKvCache`]) —
//!   and per-head V blocks with the two row-checksum columns inline in
//!   each row. Appending a token updates the current K block's tails in
//!   place — O(d) per token, not an O(seq·d) re-encode — and V rows carry
//!   the checksums ridden out of their producing projection GEMM. The
//!   score row's riding row checksums are assembled from the per-block
//!   tails (local weights shifted by each block's start offset), so the
//!   augmented layout downstream detection consumes is unchanged.
//! * **Verify-on-append.** The training forward heals `Q`/`K`/`V` lazily,
//!   at the section's delayed detection point. A decode step instead heals
//!   them *eagerly*, before the K/V rows join the cache: cache rows are
//!   long-lived state reused by every future step, and a surviving extreme
//!   value would both poison all later score rows and be folded into the
//!   incremental checksums, making it permanently invisible. The score,
//!   context, and output GEMMs keep the delayed-detection shape.
//! * **The blocked accumulation contract.** Every decode GEMM runs the
//!   same packed kernels (and therefore the same per-element KC-blocked
//!   accumulation order) as the full forward, so a decoded step is
//!   **bit-identical** to re-running the full protected forward over the
//!   grown prefix — the parity property `tests/decode_parity.rs` pins —
//!   and exact replay restores corrected elements to their original bits.
//!
//! attn-lint: hot-path

use crate::attention::{AttentionWeights, AttnOp, FaultSite, ProtectedAttention};
use crate::checked::CheckedMatrix;
use crate::checksum::weight;
use crate::config::{AbftConfig, ProtectionConfig};
use crate::eec::{eec_correct_vector, VectorVerdict};
use crate::report::{AbftReport, CorrectionRecord, SectionId};
use crate::section::{replay_nn, ForwardCtx, GuardedSection};
use attn_tensor::gemm::{self, KC, NC};
use attn_tensor::guard::softmax_rows_checked_inplace;
use attn_tensor::kv::PagedKv;
use attn_tensor::ops::apply_additive_mask;
use attn_tensor::Matrix;

/// Default data rows per KV block — the verify-on-move granularity.
pub const KV_BLOCK_ROWS: usize = 16;

/// Per-session, per-layer KV cache with incrementally maintained checksums.
#[derive(Debug)]
pub struct AttnKvCache {
    heads: usize,
    d: usize,
    block_rows: usize,
    /// Per-head paged key storage, `d`-wide rows; each block carries 2
    /// column-checksum tail rows over local weights when checksummed.
    k: Vec<PagedKv>,
    /// Per-head paged value storage; rows are `d + 2` wide when
    /// checksummed (data followed by the row-checksum pair), `d` wide
    /// otherwise. No block tails — rows self-verify.
    v: Vec<PagedKv>,
    /// Whether checksum borders are maintained (protection not hard-off).
    checksummed: bool,
}

impl AttnKvCache {
    /// Empty cache for a `hidden`-wide, `heads`-headed attention block.
    /// `checksummed` controls whether ABFT borders are maintained; an
    /// unprotected serving path skips them entirely.
    ///
    /// # Panics
    /// Panics when `heads` does not divide `hidden`.
    pub fn new(hidden: usize, heads: usize, checksummed: bool) -> Self {
        Self::with_block_rows(hidden, heads, checksummed, KV_BLOCK_ROWS)
    }

    /// [`Self::new`] with an explicit paging granularity (tests exercise
    /// awkward block sizes; the result bits never depend on the choice).
    pub fn with_block_rows(
        hidden: usize,
        heads: usize,
        checksummed: bool,
        block_rows: usize,
    ) -> Self {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "heads must divide hidden"
        );
        let d = hidden / heads;
        let k_tail = if checksummed { 2 } else { 0 };
        let v_width = d + if checksummed { 2 } else { 0 };
        Self {
            heads,
            d,
            block_rows,
            k: (0..heads)
                .map(|_| PagedKv::new(d, k_tail, block_rows))
                .collect(),
            v: (0..heads)
                .map(|_| PagedKv::new(v_width, 0, block_rows))
                .collect(),
            checksummed,
        }
    }

    /// Cache sized for `attn`, checksummed unless protection is hard-off.
    pub fn for_attention(attn: &ProtectedAttention) -> Self {
        Self::new(
            attn.weights.hidden,
            attn.weights.heads,
            !attn.config.is_off(),
        )
    }

    /// Cached tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.k[0].rows()
    }

    /// True before the first append.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Head count.
    #[inline]
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head width.
    #[inline]
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// Whether checksum borders are maintained.
    #[inline]
    pub fn checksummed(&self) -> bool {
        self.checksummed
    }

    /// Paging granularity (data rows per block).
    #[inline]
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Append one (verified) full-width key row, splitting it per head and
    /// folding each element into its block's column-checksum tails —
    /// O(hidden) total, independent of the cached prefix length. Tails use
    /// **local** weights (`weight(idx % block_rows)`), so a block's
    /// checksums are position-independent and survive eviction/compaction.
    pub fn append_k(&mut self, k_row: &[f32]) {
        assert_eq!(k_row.len(), self.heads * self.d, "append_k: width");
        for (h, kb) in self.k.iter_mut().enumerate() {
            let seg = &k_row[h * self.d..(h + 1) * self.d];
            let idx = kb.push_row(seg);
            if self.checksummed {
                let b = idx / self.block_rows;
                let w = weight(idx % self.block_rows);
                for (t0, &v) in kb.tail_row_mut(b, 0).iter_mut().zip(seg) {
                    *t0 += v;
                }
                for (t1, &v) in kb.tail_row_mut(b, 1).iter_mut().zip(seg) {
                    *t1 += w * v;
                }
            }
        }
    }

    /// Append one head's (verified) value row. When the producing GEMM ran
    /// guarded, `v_h` carries ridden row checksums and they are stored
    /// as-is; otherwise (section gated off this step, but the cache still
    /// checksummed) the pair is recomputed under the blocked encoder
    /// contract so later guarded steps can ride it.
    ///
    /// # Panics
    /// Panics on width mismatch or when called with head rows out of sync
    /// with [`Self::append_k`].
    pub fn append_v(&mut self, head: usize, v_h: &CheckedMatrix) {
        assert_eq!(v_h.rows(), 1, "append_v: one row per token");
        assert_eq!(v_h.cols(), self.d, "append_v: head width");
        let vb = &mut self.v[head];
        if !self.checksummed {
            vb.push_row(v_h.logical_row(0));
            return;
        }
        if v_h.has_row_checksums() {
            // Data + ridden (checksum, weighted checksum), already laid
            // out contiguously in the augmented buffer row.
            vb.push_row(v_h.buf().row(0));
        } else {
            let data = v_h.logical_row(0);
            let (s, ws) = row_checksum_blocked(data);
            // attn-lint: allow(hot-path-alloc) — O(d) augmented-row assembly; replacing it with arena scratch measured as noise
            let mut row = Vec::with_capacity(self.d + 2);
            row.extend_from_slice(data);
            row.push(s);
            row.push(ws);
            vb.push_row(&row);
        }
    }

    /// Seed the cache from full-forward K/V activations (`seq × hidden`,
    /// post-correction — e.g. the prefill tape), row by row, so the cache
    /// state is exactly what `seq` decode appends would have produced.
    pub fn seed(&mut self, k: &Matrix, v: &Matrix) {
        assert_eq!(k.cols(), self.heads * self.d);
        assert_eq!((k.rows(), k.cols()), (v.rows(), v.cols()));
        for r in 0..k.rows() {
            self.append_k(k.row(r));
            for h in 0..self.heads {
                let seg = &v.row(r)[h * self.d..(h + 1) * self.d];
                // attn-lint: allow(hot-path-alloc) — seed() runs once at prefill, not in the per-token steady state
                let vm = CheckedMatrix::from_plain_owned(Matrix::from_vec(1, self.d, seg.to_vec()));
                self.append_v(h, &vm);
            }
        }
    }

    /// Key element `(token, kk)` of `head` — the replay view of the cache.
    #[inline]
    pub fn k_at(&self, head: usize, token: usize, kk: usize) -> f32 {
        self.k[head].at(token, kk)
    }

    /// Value element `(token, c)` of `head`.
    #[inline]
    pub fn v_at(&self, head: usize, token: usize, c: usize) -> f32 {
        self.v[head].at(token, c)
    }

    /// The appended score row `q_h · K_hᵀ` over the grown cache, computed
    /// with the packed NT kernel directly over the paged storage (no
    /// gather copy — the kernel reads logical rows through block views).
    /// `q_h`'s column checksums (3 buffer rows) ride through; the riding
    /// row checksums are assembled from the per-block tails — block `b`'s
    /// local weights shift by its start offset, `Σ_r weight(r)·s_r =
    /// Σ_b [q·t1_b + start_b·(q·t0_b)]` — so the augmented layout
    /// downstream detection consumes is the same single-query image of
    /// `S_AS` acquiring both borders.
    pub fn score_row(&self, q_h: &CheckedMatrix, head: usize) -> CheckedMatrix {
        assert_eq!(q_h.rows(), 1, "score_row: single query");
        assert_eq!(q_h.cols(), self.d, "score_row: head width");
        let kb = &self.k[head];
        let len = kb.rows();
        assert!(len > 0, "score_row: empty cache");
        let qb = q_h.buf();
        let width = if self.checksummed { len + 2 } else { len };
        let mut buf = Matrix::zeros(qb.rows(), width);
        gemm::matmul_nt_paged_into(qb.view(), kb, buf.view_mut());
        if self.checksummed {
            for i in 0..qb.rows() {
                let qrow = qb.row(i);
                let mut cs = 0.0f32;
                let mut wcs = 0.0f32;
                for b in 0..kb.num_blocks() {
                    let p0 = dot_blocked(qrow, kb.tail_row(b, 0));
                    let p1 = dot_blocked(qrow, kb.tail_row(b, 1));
                    cs += p0;
                    wcs += p1 + (b * self.block_rows) as f32 * p0;
                }
                buf[(i, len)] = cs;
                buf[(i, len + 1)] = wcs;
            }
        }
        CheckedMatrix::from_augmented(1, len, q_h.has_col_checksums(), self.checksummed, buf)
    }

    /// The appended context row `ap · V_h` over the grown cache. When
    /// `active`, `ap`'s column encoding rides inside the GEMM's packing
    /// pass (the fused §4.6 entry, single-row image) and the cache rows'
    /// inline row checksums ride through to the product.
    pub fn context_row(&self, ap: &Matrix, head: usize, active: bool) -> CheckedMatrix {
        assert_eq!(ap.rows(), 1, "context_row: single query");
        let vb = &self.v[head];
        assert_eq!(ap.cols(), vb.rows(), "context_row: prefix length");
        let width = vb.cols();
        if active {
            let mut buf = Matrix::zeros(3, width);
            gemm::gemm_encode_cols_paged_into(ap.view(), vb, buf.view_mut());
            CheckedMatrix::from_augmented(1, self.d, true, self.checksummed, buf)
        } else {
            let mut buf = Matrix::zeros(1, width);
            gemm::matmul_paged_into(ap.view(), vb, buf.view_mut());
            if self.checksummed {
                // Drop the riding checksum columns: an unguarded step
                // returns plain data, exactly like the inactive training
                // sections.
                CheckedMatrix::from_plain(&buf.submatrix(0, 1, 0, self.d))
            } else {
                CheckedMatrix::from_plain_owned(buf)
            }
        }
    }

    /// Worst absolute disagreement between the maintained per-block K
    /// column checksums and a from-scratch recomputation over each block's
    /// rows under local weights (diagnostics/tests: bounds incremental
    /// drift).
    pub fn max_k_checksum_drift(&self) -> f32 {
        assert!(self.checksummed, "unchecksummed cache has no borders");
        let mut worst = 0.0f32;
        for kb in &self.k {
            for b in 0..kb.num_blocks() {
                let blen = kb.block_len(b);
                for c in 0..kb.cols() {
                    let mut s = 0.0f64;
                    let mut ws = 0.0f64;
                    for i in 0..blen {
                        let v = kb.at(b * self.block_rows + i, c) as f64;
                        s += v;
                        ws += weight(i) as f64 * v;
                    }
                    worst = worst
                        .max((kb.tail_row(b, 0)[c] - s as f32).abs())
                        .max((kb.tail_row(b, 1)[c] - ws as f32).abs());
                }
            }
        }
        worst
    }

    /// Verify-on-move **park**: consume the live cache into a compact
    /// [`ColdKvCache`] image, checking every K block column against its
    /// local-weight tails and every V row against its inline checksum
    /// pair on the way out. Single corrupted elements are corrected
    /// (recorded in `report`), corrupted checksums are rebuilt, and
    /// multi-element damage is counted as unrecovered — the move never
    /// panics. An unchecksummed cache is copied without verification.
    pub fn park(mut self, cfg: &AbftConfig, report: &mut AbftReport) -> ColdKvCache {
        if self.checksummed {
            for h in 0..self.heads {
                verify_k_blocks(&mut self.k[h], self.block_rows, cfg, report, h);
                verify_v_rows(&mut self.v[h], self.d, cfg, report, h);
            }
        }
        let rows = self.len();
        let v_width = self.v[0].cols();
        // attn-lint: allow(hot-path-alloc) — park() moves a session to cold storage once per lifecycle, off the decode path
        let mut k = Vec::with_capacity(self.heads);
        // attn-lint: allow(hot-path-alloc) — park() moves a session to cold storage once per lifecycle, off the decode path
        let mut k_tails = Vec::with_capacity(self.heads);
        // attn-lint: allow(hot-path-alloc) — park() moves a session to cold storage once per lifecycle, off the decode path
        let mut v = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let kb = &self.k[h];
            // attn-lint: allow(hot-path-alloc) — park() moves a session to cold storage once per lifecycle, off the decode path
            let mut kd = Vec::with_capacity(rows * self.d);
            // attn-lint: allow(hot-path-alloc) — park() moves a session to cold storage once per lifecycle, off the decode path
            let mut kt = Vec::with_capacity(kb.num_blocks() * 2 * self.d);
            for b in 0..kb.num_blocks() {
                kd.extend_from_slice(kb.block_data(b));
                if self.checksummed {
                    kt.extend_from_slice(kb.tail_row(b, 0));
                    kt.extend_from_slice(kb.tail_row(b, 1));
                }
            }
            let vb = &self.v[h];
            // attn-lint: allow(hot-path-alloc) — park() moves a session to cold storage once per lifecycle, off the decode path
            let mut vd = Vec::with_capacity(rows * v_width);
            for b in 0..vb.num_blocks() {
                vd.extend_from_slice(vb.block_data(b));
            }
            k.push(kd);
            k_tails.push(kt);
            v.push(vd);
        }
        ColdKvCache {
            heads: self.heads,
            d: self.d,
            block_rows: self.block_rows,
            rows,
            v_width,
            checksummed: self.checksummed,
            k,
            k_tails,
            v,
        }
    }
}

/// Compact, verified at-rest image of an [`AttnKvCache`] — what a serving
/// gateway holds for a parked (memory-evicted) session. Plain `Vec`
/// storage: the workspace-arena blocks went back to the pool when the
/// live cache was consumed, so a parked session costs exactly its data
/// (plus per-block K tails) and nothing from the hot arena.
#[derive(Debug, Clone)]
pub struct ColdKvCache {
    heads: usize,
    d: usize,
    block_rows: usize,
    rows: usize,
    v_width: usize,
    checksummed: bool,
    /// Per-head K data, `rows × d` row-major.
    k: Vec<Vec<f32>>,
    /// Per-head local-weight block tails, `num_blocks × 2 × d` (t0 then t1
    /// per block). Empty when unchecksummed.
    k_tails: Vec<Vec<f32>>,
    /// Per-head V data, `rows × v_width` row-major (inline row checksums
    /// in the last two columns when checksummed).
    v: Vec<Vec<f32>>,
}

impl ColdKvCache {
    /// Cached tokens in the parked image.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the parked image holds no tokens.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Approximate resident size of the image in bytes (data vectors).
    pub fn approx_bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        self.k.iter().map(Vec::len).sum::<usize>() * f
            + self.k_tails.iter().map(Vec::len).sum::<usize>() * f
            + self.v.iter().map(Vec::len).sum::<usize>() * f
    }

    /// Mutable K data of `head` (tests inject at-rest bit flips here).
    pub fn k_data_mut(&mut self, head: usize) -> &mut [f32] {
        &mut self.k[head]
    }

    /// Mutable V data of `head` (tests inject at-rest bit flips here).
    pub fn v_data_mut(&mut self, head: usize) -> &mut [f32] {
        &mut self.v[head]
    }

    /// Verify-on-move **unpark**: rebuild a live [`AttnKvCache`], checking
    /// every K block column and V row against the parked checksums first —
    /// damage acquired at rest is corrected (or counted unrecovered)
    /// before any row rejoins the hot path. The live cache's block tails
    /// are re-accumulated in append order, so a fault-free park/unpark
    /// round trip is bit-identical to never having parked.
    pub fn unpark(mut self, cfg: &AbftConfig, report: &mut AbftReport) -> AttnKvCache {
        if self.checksummed {
            for h in 0..self.heads {
                self.verify_cold_head(h, cfg, report);
            }
        }
        let mut cache = AttnKvCache::with_block_rows(
            self.heads * self.d,
            self.heads,
            self.checksummed,
            self.block_rows,
        );
        for r in 0..self.rows {
            for h in 0..self.heads {
                let seg = &self.k[h][r * self.d..(r + 1) * self.d];
                let kb = &mut cache.k[h];
                let idx = kb.push_row(seg);
                if self.checksummed {
                    let b = idx / self.block_rows;
                    let w = weight(idx % self.block_rows);
                    for (t0, &val) in kb.tail_row_mut(b, 0).iter_mut().zip(seg) {
                        *t0 += val;
                    }
                    for (t1, &val) in kb.tail_row_mut(b, 1).iter_mut().zip(seg) {
                        *t1 += w * val;
                    }
                }
                let vrow = &self.v[h][r * self.v_width..(r + 1) * self.v_width];
                cache.v[h].push_row(vrow);
            }
        }
        cache
    }

    /// At-rest verification of one head: every K block column against its
    /// parked local-weight tails, every V row against its inline pair.
    fn verify_cold_head(&mut self, h: usize, cfg: &AbftConfig, report: &mut AbftReport) {
        let d = self.d;
        let num_blocks = self.rows.div_ceil(self.block_rows);
        // attn-lint: allow(hot-path-alloc) — one scratch column per at-rest verification sweep, reused via clear()
        let mut col = Vec::with_capacity(self.block_rows);
        for b in 0..num_blocks {
            let start = b * self.block_rows;
            let blen = (self.rows - start).min(self.block_rows);
            for c in 0..d {
                col.clear();
                col.extend((0..blen).map(|i| self.k[h][(start + i) * d + c]));
                let t0 = self.k_tails[h][b * 2 * d + c];
                let t1 = self.k_tails[h][(b * 2 + 1) * d + c];
                let verdict = eec_correct_vector(&mut col, t0, t1, cfg);
                apply_vector_verdict(&verdict, report, SectionId::AttentionScore, h, start, c);
                match verdict {
                    VectorVerdict::Corrected { index, .. } => {
                        self.k[h][(start + index) * d + c] = col[index];
                    }
                    VectorVerdict::ChecksumCorrupt => {
                        let (s, ws, _) = crate::checksum::vector_sums(&col);
                        self.k_tails[h][b * 2 * d + c] = s;
                        self.k_tails[h][(b * 2 + 1) * d + c] = ws;
                    }
                    _ => {}
                }
            }
        }
        for r in 0..self.rows {
            let row = &mut self.v[h][r * self.v_width..(r + 1) * self.v_width];
            let (data, cs) = row.split_at_mut(d);
            let verdict = eec_correct_vector(data, cs[0], cs[1], cfg);
            apply_vector_verdict(&verdict, report, SectionId::ContextLayer, h, r, 0);
            if matches!(verdict, VectorVerdict::ChecksumCorrupt) {
                let (s, ws, _) = crate::checksum::vector_sums(data);
                cs[0] = s;
                cs[1] = ws;
            }
        }
    }
}

/// Verify one live K cache's blocks in place (columns against local-weight
/// tails), correcting single errors and rebuilding corrupt tails.
fn verify_k_blocks(
    kb: &mut PagedKv,
    block_rows: usize,
    cfg: &AbftConfig,
    report: &mut AbftReport,
    head: usize,
) {
    let d = kb.cols();
    // attn-lint: allow(hot-path-alloc) — one scratch column per gated verification sweep, reused via clear()
    let mut col = Vec::with_capacity(block_rows);
    for b in 0..kb.num_blocks() {
        let start = b * block_rows;
        let blen = kb.block_len(b);
        for c in 0..d {
            col.clear();
            col.extend((0..blen).map(|i| kb.at(start + i, c)));
            let t0 = kb.tail_row(b, 0)[c];
            let t1 = kb.tail_row(b, 1)[c];
            let verdict = eec_correct_vector(&mut col, t0, t1, cfg);
            apply_vector_verdict(&verdict, report, SectionId::AttentionScore, head, start, c);
            match verdict {
                VectorVerdict::Corrected { index, .. } => {
                    kb.row_mut(start + index)[c] = col[index];
                }
                VectorVerdict::ChecksumCorrupt => {
                    let (s, ws, _) = crate::checksum::vector_sums(&col);
                    kb.tail_row_mut(b, 0)[c] = s;
                    kb.tail_row_mut(b, 1)[c] = ws;
                }
                _ => {}
            }
        }
    }
}

/// Verify one live V cache's rows in place against their inline checksum
/// pairs.
fn verify_v_rows(
    vb: &mut PagedKv,
    d: usize,
    cfg: &AbftConfig,
    report: &mut AbftReport,
    head: usize,
) {
    for r in 0..vb.rows() {
        let row = vb.row_mut(r);
        let (data, cs) = row.split_at_mut(d);
        let verdict = eec_correct_vector(data, cs[0], cs[1], cfg);
        apply_vector_verdict(&verdict, report, SectionId::ContextLayer, head, r, 0);
        if matches!(verdict, VectorVerdict::ChecksumCorrupt) {
            let (s, ws, _) = crate::checksum::vector_sums(data);
            cs[0] = s;
            cs[1] = ws;
        }
    }
}

/// Fold one at-rest verification verdict into the report. `row0` is the
/// global token index of the vector's first element (K columns) or the
/// row itself (V rows); `col` the element column.
fn apply_vector_verdict(
    verdict: &VectorVerdict,
    report: &mut AbftReport,
    section: SectionId,
    head: usize,
    row0: usize,
    col: usize,
) {
    match verdict {
        VectorVerdict::Clean => {}
        VectorVerdict::Corrected {
            index,
            old_value,
            new_value,
            ..
        } => {
            report.detections += 1;
            report.corrections.push(CorrectionRecord {
                section,
                head,
                row: row0 + index,
                col,
                old_value: *old_value,
                new_value: *new_value,
            });
        }
        VectorVerdict::ChecksumCorrupt => {
            report.detections += 1;
            report.checksum_rebuilds += 1;
        }
        VectorVerdict::Propagated { .. } => {
            report.detections += 1;
            report.propagations += 1;
            report.unrecovered += 1;
        }
        VectorVerdict::Unrecoverable => {
            report.detections += 1;
            report.unrecovered += 1;
        }
    }
}

/// Plain KC-blocked dot product under the kernel's per-element
/// accumulation contract (fresh partial per KC block, combined in block
/// order) — used to assemble score-row checksum columns from block tails.
fn dot_blocked(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (ab, bb) in a.chunks(KC).zip(b.chunks(KC)) {
        let mut p = 0.0f32;
        for (&x, &y) in ab.iter().zip(bb) {
            p += x * y;
        }
        acc += p;
    }
    acc
}

/// `(checksum, weighted checksum)` of one row under the NC-blocked encoder
/// contract (see `crate::checksum::row_checksums`).
fn row_checksum_blocked(row: &[f32]) -> (f32, f32) {
    let mut s = 0.0f32;
    let mut ws = 0.0f32;
    for c0 in (0..row.len()).step_by(NC) {
        let cend = (c0 + NC).min(row.len());
        let mut ps = 0.0f32;
        let mut pws = 0.0f32;
        for (c, &v) in row[c0..cend].iter().enumerate() {
            ps += v;
            pws += weight(c0 + c) * v;
        }
        s += ps;
        ws += pws;
    }
    (s, ws)
}

/// Borrowed view of one attention block's parameters, for the decode hot
/// path: one of these is built per step from wherever the parameters
/// already live (`attn_model`'s `Param`s, an [`AttentionWeights`]), so a
/// decoded token never pays a `hidden × hidden` weight-snapshot clone per
/// layer.
#[derive(Clone, Copy)]
pub struct AttentionWeightsRef<'a> {
    /// Model width.
    pub hidden: usize,
    /// Head count (must divide `hidden`).
    pub heads: usize,
    /// Query projection, `hidden × hidden`.
    pub wq: &'a Matrix,
    /// Key projection.
    pub wk: &'a Matrix,
    /// Value projection.
    pub wv: &'a Matrix,
    /// Output projection.
    pub wo: &'a Matrix,
    /// Query bias.
    pub bq: &'a [f32],
    /// Key bias.
    pub bk: &'a [f32],
    /// Value bias.
    pub bv: &'a [f32],
    /// Output bias.
    pub bo: &'a [f32],
}

impl AttentionWeightsRef<'_> {
    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

impl<'a> From<&'a AttentionWeights> for AttentionWeightsRef<'a> {
    fn from(w: &'a AttentionWeights) -> Self {
        Self {
            hidden: w.hidden,
            heads: w.heads,
            wq: &w.wq,
            wk: &w.wk,
            wv: &w.wv,
            wo: &w.wo,
            bq: &w.bq,
            bk: &w.bk,
            bv: &w.bv,
            bo: &w.bo,
        }
    }
}

impl ProtectedAttention {
    /// One protected autoregressive decode step — see the free
    /// [`decode_step`] this delegates to (borrowing the owned weights).
    pub fn decode_step(
        &self,
        x: &Matrix,
        cache: &mut AttnKvCache,
        ctx: &mut ForwardCtx<'_, '_>,
    ) -> Matrix {
        decode_step(&(&self.weights).into(), &self.config, x, cache, ctx)
    }
}

/// One protected autoregressive decode step: append token `x`
/// (`1 × hidden`, the block input row) to `cache` and return the
/// attention output row (`1 × hidden`).
///
/// `ctx.mask`, when present, must be the **single mask row** of the new
/// token over the grown prefix (`1 × (len+1)`), e.g. row `len` of the
/// causal or local-banded mask — not the full `seq × seq` matrix the
/// training forward takes. `ctx.toggles`/`ctx.hook`/`ctx.report` have
/// their usual meaning; hooks fire at the same [`FaultSite`]s as the
/// training forward, on the single-row matrices.
///
/// Fault-free, the returned row is bit-identical to row `len` of
/// [`ProtectedAttention::forward_ctx`] over the grown prefix (see the
/// module docs for why the contract holds); after an injected extreme
/// value in any of the six decode GEMMs it is *still* bit-identical, via
/// checksum correction plus exact replay.
///
/// # Panics
/// Panics on shape mismatches (input width, cache geometry, mask row).
#[allow(clippy::needless_range_loop)] // head index drives several buffers
pub fn decode_step(
    w: &AttentionWeightsRef<'_>,
    config: &ProtectionConfig,
    x: &Matrix,
    cache: &mut AttnKvCache,
    ctx: &mut ForwardCtx<'_, '_>,
) -> Matrix {
    {
        assert_eq!(x.rows(), 1, "decode_step: one token per step");
        assert_eq!(x.cols(), w.hidden, "decode_step: input width");
        assert_eq!(cache.heads(), w.heads, "decode_step: cache geometry");
        assert_eq!(
            cache.head_dim(),
            w.head_dim(),
            "decode_step: cache geometry"
        );
        let d = w.head_dim();
        let scale = 1.0 / (d as f32).sqrt();
        let new_len = cache.len() + 1;
        let mask = ctx.mask;
        if let Some(m) = mask {
            assert_eq!(
                (m.rows(), m.cols()),
                (1, new_len),
                "decode_step: mask must be one row over the grown prefix"
            );
        }

        let s_as = GuardedSection::begin(
            SectionId::AttentionScore,
            config,
            ctx.toggles.s_as,
            ctx.report,
        );
        let s_cl = GuardedSection::begin(
            SectionId::ContextLayer,
            config,
            ctx.toggles.s_cl,
            ctx.report,
        );
        let s_o = GuardedSection::begin(SectionId::Output, config, ctx.toggles.s_o, ctx.report);
        // Non-GEMM scope over the per-head softmax rows; heals recompute
        // from a pre-softmax snapshot the checked in-place form keeps.
        let op_guard = GuardedSection::guard_step(config);

        // ------------------------------------------------ section S_AS
        // Single-query projections through the fused encode entry: the
        // row's column checksums accumulate inside the GEMM packing pass.
        let mut q = s_as.gemm_encode_cols(x, &s_as.operand(w.wq));
        let mut k = s_as.gemm_encode_cols(x, &s_as.operand(w.wk));
        q.add_bias(w.bq);
        k.add_bias(w.bk);
        ctx.fire(
            FaultSite {
                op: AttnOp::Q,
                head: None,
            },
            &mut q,
        );
        ctx.fire(
            FaultSite {
                op: AttnOp::K,
                head: None,
            },
            &mut k,
        );
        // Verify-on-append (see module docs): heal eagerly — K joins
        // long-lived cache state this step, Q feeds every head's score row.
        if s_as.active() {
            s_as.heal_operand_cols(ctx.report, &mut q, usize::MAX, |_r, c| {
                replay_nn(x.row(0), |kk| w.wq[(kk, c)]) + w.bq[c]
            });
            s_as.heal_operand_cols(ctx.report, &mut k, usize::MAX, |_r, c| {
                replay_nn(x.row(0), |kk| w.wk[(kk, c)]) + w.bk[c]
            });
        }
        cache.append_k(k.logical_row(0));

        // attn-lint: allow(hot-path-alloc) — O(heads) handle vector per step; the row payloads inside draw on the arena
        let mut ap_rows: Vec<Matrix> = Vec::with_capacity(w.heads);
        for h in 0..w.heads {
            let qh = q.slice_cols(h * d, (h + 1) * d);
            let mut as_row = cache.score_row(&qh, h);
            as_row.scale_inplace(scale);
            ctx.fire(
                FaultSite {
                    op: AttnOp::AS,
                    head: Some(h),
                },
                &mut as_row,
            );
            let mut det = s_as.detect(&mut as_row, h);
            if det.detections() > 0 {
                det.refine(&mut as_row, |_r, c| {
                    replay_nn(qh.logical_row(0), |kk| cache.k_at(h, c, kk)) * scale
                });
            }
            det.absorb(ctx.report);

            // Leave the checksummed region: mask + softmax are nonlinear;
            // the re-encoding rides inside the fused `ap·V` entry below.
            let ap = s_cl.exit_cols(&as_row, |m| {
                if let Some(mrow) = mask {
                    apply_additive_mask(m, mrow);
                }
                softmax_rows_checked_inplace(m, &op_guard);
            });
            ap_rows.push(ap);
        }

        // ------------------------------------------------ section S_CL
        let x_plain = s_cl.operand(x);
        // attn-lint: allow(hot-path-alloc) — O(heads) handle vector per step; the row payloads inside draw on the arena
        let mut cl_blocks = Vec::with_capacity(w.heads);
        for h in 0..w.heads {
            let wv_h = w.wv.submatrix(0, w.hidden, h * d, (h + 1) * d);
            let bv_h = &w.bv[h * d..(h + 1) * d];
            let mut v_h = s_cl.gemm_encode_rows(&x_plain, &wv_h);
            v_h.add_bias(bv_h);
            ctx.fire(
                FaultSite {
                    op: AttnOp::V,
                    head: Some(h),
                },
                &mut v_h,
            );
            // Verify-on-append: the V row joins the cache now.
            if s_cl.active() && v_h.has_row_checksums() {
                s_cl.heal_operand_rows(ctx.report, &mut v_h, h, |_r, c| {
                    replay_nn(x.row(0), |kk| wv_h[(kk, c)]) + bv_h[c]
                });
            }
            cache.append_v(h, &v_h);

            let mut cl_row = cache.context_row(&ap_rows[h], h, s_cl.active());
            ctx.fire(
                FaultSite {
                    op: AttnOp::CL,
                    head: Some(h),
                },
                &mut cl_row,
            );
            let mut det = s_cl.detect(&mut cl_row, h);
            if det.detections() > 0 {
                let ap = &ap_rows[h];
                det.refine(&mut cl_row, |_r, c| {
                    replay_nn(ap.row(0), |kk| cache.v_at(h, kk, c))
                });
            }
            det.absorb(ctx.report);
            cl_blocks.push(cl_row.drop_row_checksums());
        }
        let cl_merged = CheckedMatrix::concat_cols(&cl_blocks);

        // ------------------------------------------------ section S_O
        let mut o = s_o.gemm_adopt_cols(&cl_merged, &s_o.operand(w.wo));
        o.add_bias(w.bo);
        ctx.fire(
            FaultSite {
                op: AttnOp::O,
                head: None,
            },
            &mut o,
        );
        let mut det = s_o.detect(&mut o, usize::MAX);
        if det.fixes() > 0 {
            det.refine(&mut o, |_r, c| {
                replay_nn(cl_merged.logical_row(0), |kk| w.wo[(kk, c)]) + w.bo[c]
            });
        }
        det.absorb(ctx.report);
        ctx.report.absorb_op_guard(op_guard.take_stats());
        o.logical()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // step index t addresses parallel row/prefix structures
mod tests {
    use super::*;
    use crate::attention::{AttentionWeights, ForwardOptions, SectionToggles};
    use crate::config::ProtectionConfig;
    use crate::report::AbftReport;
    use attn_fault::FaultKind;
    use attn_tensor::ops::causal_mask;
    use attn_tensor::rng::TensorRng;

    fn setup(seq: usize, hidden: usize, heads: usize) -> (Matrix, ProtectedAttention) {
        let mut rng = TensorRng::seed_from(77);
        let w = AttentionWeights::random(hidden, heads, &mut rng);
        let x = rng.normal_matrix(seq, hidden, 0.5);
        (x, ProtectedAttention::new(w, ProtectionConfig::full()))
    }

    fn decode_all(
        attn: &ProtectedAttention,
        x: &Matrix,
        masked: bool,
        toggles: SectionToggles,
    ) -> (Vec<Matrix>, AbftReport) {
        let mut cache = AttnKvCache::for_attention(attn);
        let mut report = AbftReport::default();
        let mut rows = Vec::new();
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mask_row = masked.then(|| Matrix::zeros(1, t + 1));
            let mut ctx = ForwardCtx {
                mask: mask_row.as_ref(),
                toggles,
                hook: None,
                report: &mut report,
            };
            rows.push(attn.decode_step(&x_row, &mut cache, &mut ctx));
        }
        (rows, report)
    }

    #[test]
    fn decode_rows_are_bit_identical_to_full_forward_over_each_prefix() {
        let (x, attn) = setup(9, 32, 4);
        let (rows, report) = decode_all(&attn, &x, false, SectionToggles::all());
        assert!(
            report.is_quiet(),
            "fault-free decode must be quiet: {report}"
        );
        for t in 0..x.rows() {
            let prefix = x.submatrix(0, t + 1, 0, x.cols());
            let mut r = AbftReport::default();
            let full = attn.forward(&prefix, ForwardOptions::default(), &mut r);
            let full_row = full.output.row(t);
            let dec_row = rows[t].row(0);
            for (c, (a, b)) in dec_row.iter().zip(full_row).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "t={t} c={c}: decode {a} vs full {b}"
                );
            }
        }
    }

    #[test]
    fn decode_parity_holds_with_causal_mask_rows() {
        let (x, attn) = setup(7, 24, 3);
        let mut cache = AttnKvCache::for_attention(&attn);
        let mut report = AbftReport::default();
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let full_mask = causal_mask(t + 1);
            let mask_row = full_mask.submatrix(t, t + 1, 0, t + 1);
            let mut ctx = ForwardCtx {
                mask: Some(&mask_row),
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut report,
            };
            let dec = attn.decode_step(&x_row, &mut cache, &mut ctx);

            let prefix = x.submatrix(0, t + 1, 0, x.cols());
            let mut r = AbftReport::default();
            let full = attn.forward(
                &prefix,
                ForwardOptions {
                    mask: Some(&full_mask),
                    ..Default::default()
                },
                &mut r,
            );
            assert_eq!(
                dec.row(0).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                full.output
                    .row(t)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "t={t}"
            );
        }
    }

    #[test]
    fn decode_parity_holds_with_sections_gated_off() {
        // Per-step frequency gating must not perturb logical values: an
        // unguarded decode step is bit-transparent, like inactive training
        // sections.
        let (x, attn) = setup(6, 16, 2);
        let (all_rows, _) = decode_all(&attn, &x, false, SectionToggles::all());
        let (none_rows, report) = decode_all(&attn, &x, false, SectionToggles::none());
        assert_eq!(report.sections_checked, 0);
        for (t, (a, b)) in all_rows.iter().zip(&none_rows).enumerate() {
            assert_eq!(a, b, "t={t}: gated-off step diverged");
        }
    }

    #[test]
    fn incremental_k_checksums_track_the_cache() {
        let (x, attn) = setup(24, 32, 4);
        let mut cache = AttnKvCache::for_attention(&attn);
        let mut report = AbftReport::default();
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut report,
            };
            let _ = attn.decode_step(&x_row, &mut cache, &mut ctx);
        }
        assert_eq!(cache.len(), 24);
        let drift = cache.max_k_checksum_drift();
        assert!(drift < 1e-3, "incremental checksum drift {drift}");
    }

    fn inject_then_check(op: AttnOp, kind: FaultKind) {
        let (x, attn) = setup(8, 32, 4);
        let (clean_rows, _) = decode_all(&attn, &x, false, SectionToggles::all());

        let mut cache = AttnKvCache::for_attention(&attn);
        let mut report = AbftReport::default();
        let strike_at = 5usize; // a mid-sequence step with a grown cache
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut fired = false;
            let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
                let right = site.op == op && (site.head.is_none() || site.head == Some(1));
                if right && !fired {
                    fired = true;
                    let (r, c) = (0, m.cols() * 2 / 3);
                    let old = m.get(r, c);
                    m.set(r, c, kind.apply(old));
                }
            };
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: (t == strike_at).then_some(&mut hook as _),
                report: &mut report,
            };
            let out = attn.decode_step(&x_row, &mut cache, &mut ctx);
            assert_eq!(
                out, clean_rows[t],
                "{op:?}/{kind:?} t={t}: corrected decode must match fault-free bits; {report}"
            );
            if t == strike_at {
                assert!(fired, "hook never fired for {op:?}");
            }
        }
        assert!(
            report.correction_count() > 0,
            "{op:?}/{kind:?}: no corrections recorded"
        );
        assert_eq!(report.unrecovered, 0, "{op:?}/{kind:?}");
    }

    #[test]
    fn decode_corrects_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::Inf);
        }
    }

    #[test]
    fn decode_corrects_nan_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NaN);
        }
    }

    #[test]
    fn decode_corrects_near_inf_at_every_site() {
        for op in AttnOp::ALL {
            inject_then_check(op, FaultKind::NearInf);
        }
    }

    #[test]
    fn unprotected_decode_lets_faults_poison_the_cache() {
        let (x, attn) = setup(6, 16, 2);
        let off = ProtectedAttention::new(attn.weights.clone(), ProtectionConfig::off());
        let mut cache = AttnKvCache::for_attention(&off);
        assert!(!cache.checksummed());
        let mut report = AbftReport::default();
        let mut poisoned = false;
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut hook = |site: FaultSite, m: &mut CheckedMatrix| {
                if site.op == AttnOp::K {
                    m.set(0, 3, f32::NAN);
                }
            };
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::none(),
                hook: (t == 2).then_some(&mut hook as _),
                report: &mut report,
            };
            let out = off.decode_step(&x_row, &mut cache, &mut ctx);
            if t >= 2 {
                poisoned |= !out.all_finite();
            }
        }
        assert!(poisoned, "unprotected NaN in K must reach decode outputs");
        assert_eq!(report.correction_count(), 0);
    }

    #[test]
    fn decode_parity_holds_at_awkward_block_sizes() {
        // The paging granularity must never reach the result bits.
        let (x, attn) = setup(9, 32, 4);
        let (reference, _) = decode_all(&attn, &x, false, SectionToggles::all());
        for &block_rows in &[1usize, 3, 5, 64] {
            let mut cache = AttnKvCache::with_block_rows(32, 4, true, block_rows);
            let mut report = AbftReport::default();
            for t in 0..x.rows() {
                let x_row = x.submatrix(t, t + 1, 0, x.cols());
                let mut ctx = ForwardCtx {
                    mask: None,
                    toggles: SectionToggles::all(),
                    hook: None,
                    report: &mut report,
                };
                let out = attn.decode_step(&x_row, &mut cache, &mut ctx);
                assert_eq!(out, reference[t], "block_rows={block_rows} t={t}");
            }
            assert!(report.is_quiet(), "block_rows={block_rows}: {report}");
        }
    }

    #[test]
    fn park_unpark_roundtrip_is_bit_exact() {
        // Fault-free verify-on-move must be invisible: parking mid-decode
        // and unparking yields the same bits as never having parked.
        let (x, attn) = setup(10, 32, 4);
        let (reference, _) = decode_all(&attn, &x, false, SectionToggles::all());
        let cfg = attn.config.abft;

        let mut cache = AttnKvCache::with_block_rows(32, 4, true, 3);
        let mut ref_cache = AttnKvCache::with_block_rows(32, 4, true, 3);
        let mut report = AbftReport::default();
        for t in 0..x.rows() {
            if t == 6 {
                // Park and immediately unpark between steps.
                let cold = cache.park(&cfg, &mut report);
                assert_eq!(cold.len(), 6);
                assert!(cold.approx_bytes() > 0);
                cache = cold.unpark(&cfg, &mut report);
            }
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut report,
            };
            let out = attn.decode_step(&x_row, &mut cache, &mut ctx);
            assert_eq!(out, reference[t], "t={t}: park/unpark broke bit parity");

            let mut rctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut AbftReport::default(),
            };
            let _ = attn.decode_step(&x_row, &mut ref_cache, &mut rctx);
        }
        assert_eq!(report.detections, 0, "fault-free move must be quiet");
        // The round-tripped cache state itself matches the untouched one.
        for h in 0..4 {
            for t in 0..10 {
                for c in 0..8 {
                    assert_eq!(
                        cache.k_at(h, t, c).to_bits(),
                        ref_cache.k_at(h, t, c).to_bits()
                    );
                    assert_eq!(
                        cache.v_at(h, t, c).to_bits(),
                        ref_cache.v_at(h, t, c).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn at_rest_flip_in_parked_kv_is_detected_and_corrected() {
        let (x, attn) = setup(8, 32, 4);
        let cfg = attn.config.abft;
        let mut cache = AttnKvCache::with_block_rows(32, 4, true, 4);
        let mut report = AbftReport::default();
        for t in 0..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut report,
            };
            let _ = attn.decode_step(&x_row, &mut cache, &mut ctx);
        }
        let mut cold = cache.park(&cfg, &mut report);
        assert_eq!(report.detections, 0, "clean park must be quiet");

        // Flip one K element and one V element while the session is
        // parked — the fault class eviction churn exposes.
        cold.k_data_mut(1)[5 * 8 + 3] = f32::NAN;
        let vw = 8 + 2;
        cold.v_data_mut(2)[4 * vw + 6] = f32::INFINITY;
        let _live = cold.unpark(&cfg, &mut report);
        assert!(
            report.detections >= 2,
            "at-rest flips must be detected: {report}"
        );
        assert_eq!(report.unrecovered, 0, "single flips must be corrected");
        assert!(report.correction_count() >= 2, "{report}");
    }

    #[test]
    fn seeded_cache_continues_bit_identically() {
        // Prefill via the full forward, seed the cache from its K/V tape,
        // then decode the tail — the parity contract across the seam.
        let (x, attn) = setup(10, 32, 4);
        let (all_decoded, _) = decode_all(&attn, &x, false, SectionToggles::all());

        let prefill = 6usize;
        let prefix = x.submatrix(0, prefill, 0, x.cols());
        let mut r = AbftReport::default();
        let full = attn.forward(&prefix, ForwardOptions::default(), &mut r);
        let mut cache = AttnKvCache::for_attention(&attn);
        cache.seed(&full.cache.k, &full.cache.v);
        assert_eq!(cache.len(), prefill);

        let mut report = AbftReport::default();
        for t in prefill..x.rows() {
            let x_row = x.submatrix(t, t + 1, 0, x.cols());
            let mut ctx = ForwardCtx {
                mask: None,
                toggles: SectionToggles::all(),
                hook: None,
                report: &mut report,
            };
            let out = attn.decode_step(&x_row, &mut cache, &mut ctx);
            assert_eq!(out, all_decoded[t], "t={t}: seam broke bit parity");
        }
        assert!(report.is_quiet());
    }
}
