//! Configuration for ABFT detection, correction, and protection scheduling.

/// Thresholds governing EEC-ABFT detection and correction (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbftConfig {
    /// Finite values with magnitude above this count as near-INF.
    /// Paper: `T_near-INF = 1e10`.
    pub near_inf_threshold: f32,
    /// Corrupted values with magnitude above this are corrected by
    /// *reconstruction* from the checksum rather than by adding δ1, because
    /// round-off absorption would otherwise corrupt the recovery.
    /// Paper: `T_correct = 1e5`.
    pub correct_threshold: f32,
    /// Relative round-off tolerance `E` for checksum comparison: a checksum
    /// discrepancy counts as an error only when
    /// `|δ1| > detect_tol · (Σ|v| + 1)`.
    pub detect_tol: f32,
}

impl Default for AbftConfig {
    fn default() -> Self {
        Self {
            near_inf_threshold: 1e10,
            correct_threshold: 1e5,
            detect_tol: 5e-4,
        }
    }
}

impl AbftConfig {
    /// Round-off detection bound for a vector whose absolute sum is
    /// `sum_abs`.
    #[inline]
    pub fn detection_bound(&self, sum_abs: f32) -> f32 {
        self.detect_tol * (sum_abs + 1.0)
    }
}

/// Checksum update/encoding strategy — the Fig 8 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Paper §4.6 optimizations: checksums are packed into the operand so
    /// one GEMM updates data and checksums together; encodings are single
    /// fused passes; detection is one parallel divergence-free sweep.
    Fused,
    /// "Non-OPT" baseline: every checksum is produced by separate passes
    /// (distinct encode "kernels" with their own allocations and memory
    /// sweeps), mimicking a cuBLAS-composed implementation.
    Separate,
}

/// Which protection sections run, at what frequency, and how.
///
/// Frequencies follow paper §4.5: `f = 1.0` checks the section on every
/// execution, `f = 0.5` every other execution, `f = 0` never. Fractional
/// frequencies are realised deterministically by an execution counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtectionConfig {
    /// Detection frequency for the attention-score section
    /// `S_AS = {X·W_Q, X·W_K, Q·Kᵀ}`.
    pub f_as: f64,
    /// Detection frequency for the context-layer section
    /// `S_CL = {X·W_V, AP·V}`.
    pub f_cl: f64,
    /// Detection frequency for the output section `S_O = {CL·W_O}`.
    pub f_o: f64,
    /// Detection frequency for the feed-forward section
    /// `S_FFN = {H·W_1, GELU(·)·W_2}` — the end-to-end extension beyond the
    /// paper's attention scope (cf. FT-Transformer, arXiv 2504.02211).
    pub f_ffn: f64,
    /// Encoding/update strategy.
    pub strategy: Strategy,
    /// Detection/correction thresholds.
    pub abft: AbftConfig,
}

impl ProtectionConfig {
    /// Full protection: every section — the three attention sections *and*
    /// the FFN section — checked on every execution with the fused strategy
    /// (the configuration evaluated in paper §5.2–5.3, extended end-to-end).
    pub fn full() -> Self {
        Self {
            f_as: 1.0,
            f_cl: 1.0,
            f_o: 1.0,
            f_ffn: 1.0,
            strategy: Strategy::Fused,
            abft: AbftConfig::default(),
        }
    }

    /// Protection disabled everywhere — the unprotected baseline.
    pub fn off() -> Self {
        Self {
            f_as: 0.0,
            f_cl: 0.0,
            f_o: 0.0,
            f_ffn: 0.0,
            strategy: Strategy::Fused,
            abft: AbftConfig::default(),
        }
    }

    /// The paper's original scope: attention sections at full frequency,
    /// FFN protection off. The Fig 7 overhead reproduction uses this so the
    /// attention-overhead comparison is not diluted by FFN work.
    pub fn attention_only() -> Self {
        Self {
            f_ffn: 0.0,
            ..Self::full()
        }
    }

    /// Full protection through the deliberately naive separate-pass
    /// strategy (paper Fig 8 "ATTNChecker(Non-OPT)").
    pub fn full_unoptimized() -> Self {
        Self {
            strategy: Strategy::Separate,
            ..Self::full()
        }
    }

    /// Custom per-section frequencies for the *attention* sections (the
    /// output of the adaptive optimizer, paper §4.5/§5.4). The optimizer
    /// models only the attention pipeline, so FFN protection is left off;
    /// opt back in with [`Self::ffn_frequency`].
    pub fn with_frequencies(f_as: f64, f_cl: f64, f_o: f64) -> Self {
        Self {
            f_as: f_as.clamp(0.0, 1.0),
            f_cl: f_cl.clamp(0.0, 1.0),
            f_o: f_o.clamp(0.0, 1.0),
            f_ffn: 0.0,
            ..Self::full()
        }
    }

    /// Builder: set the FFN-section detection frequency.
    pub fn ffn_frequency(mut self, f_ffn: f64) -> Self {
        self.f_ffn = f_ffn.clamp(0.0, 1.0);
        self
    }

    /// True when no section is ever checked.
    ///
    /// The `== 0.0` comparisons are intentional, not a float-comparison
    /// bug: frequencies are control values, and `0.0` is the exact sentinel
    /// meaning "never check" — [`FrequencyGate::tick`] accumulates `f`
    /// verbatim, so any `f > 0.0` eventually fires (see
    /// [`FrequencyGate::would_ever_fire`]) while `f == 0.0` never does.
    /// There is no round-off to absorb: callers either pass the sentinel or
    /// they don't.
    pub fn is_off(&self) -> bool {
        attn_tensor::float::exactly_zero_f64(self.f_as)
            && attn_tensor::float::exactly_zero_f64(self.f_cl)
            && attn_tensor::float::exactly_zero_f64(self.f_o)
            && attn_tensor::float::exactly_zero_f64(self.f_ffn)
    }
}

/// Deterministic frequency gate: decides whether the `n`-th execution
/// (0-based) of a section with frequency `f` performs detection.
///
/// Uses an error-diffusion accumulator so that over `N` executions exactly
/// `⌈f·N⌉`-ish detections happen, evenly spread (e.g. `f = 0.5` → every
/// other execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct FrequencyGate {
    acc: f64,
}

impl FrequencyGate {
    /// Advance one execution; returns true when detection should run.
    pub fn tick(&mut self, f: f64) -> bool {
        self.acc += f.clamp(0.0, 1.0);
        if self.acc >= 1.0 - 1e-12 {
            self.acc -= 1.0;
            true
        } else {
            false
        }
    }

    /// Would a gate driven at frequency `f` ever fire?
    ///
    /// Exactly `f > 0.0`: the accumulator adds `f` verbatim each tick, so
    /// any positive frequency crosses the firing threshold after at most
    /// `⌈1/f⌉` executions, while the `0.0` sentinel keeps the accumulator
    /// frozen forever. This is the documented counterpart of
    /// [`ProtectionConfig::is_off`]'s exact `== 0.0` comparisons.
    pub fn would_ever_fire(f: f64) -> bool {
        f > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_thresholds() {
        let c = AbftConfig::default();
        assert_eq!(c.near_inf_threshold, 1e10);
        assert_eq!(c.correct_threshold, 1e5);
    }

    #[test]
    fn detection_bound_scales_with_magnitude() {
        let c = AbftConfig::default();
        assert!(c.detection_bound(1000.0) > c.detection_bound(1.0));
        assert!(c.detection_bound(0.0) > 0.0);
    }

    #[test]
    fn full_and_off_configs() {
        assert!(!ProtectionConfig::full().is_off());
        assert!(ProtectionConfig::off().is_off());
        assert_eq!(
            ProtectionConfig::full_unoptimized().strategy,
            Strategy::Separate
        );
    }

    #[test]
    fn with_frequencies_clamps() {
        let c = ProtectionConfig::with_frequencies(1.5, -0.2, 0.3);
        assert_eq!(c.f_as, 1.0);
        assert_eq!(c.f_cl, 0.0);
        assert_eq!(c.f_o, 0.3);
        assert_eq!(c.f_ffn, 0.0);
        assert_eq!(c.ffn_frequency(2.0).f_ffn, 1.0);
    }

    #[test]
    fn attention_only_disables_ffn_section() {
        let c = ProtectionConfig::attention_only();
        assert_eq!(c.f_ffn, 0.0);
        assert!(!c.is_off(), "attention sections still fire");
        // A config that only protects the FFN is not "off" either.
        let ffn_only = ProtectionConfig::off().ffn_frequency(1.0);
        assert!(!ffn_only.is_off());
    }

    #[test]
    fn would_ever_fire_matches_tick_behaviour() {
        assert!(!FrequencyGate::would_ever_fire(0.0));
        for f in [1e-3, 0.5, 1.0] {
            assert!(FrequencyGate::would_ever_fire(f));
            let mut g = FrequencyGate::default();
            assert!(
                (0..2000).any(|_| g.tick(f)),
                "gate at f={f} must fire eventually"
            );
        }
    }

    #[test]
    fn gate_full_frequency_always_fires() {
        let mut g = FrequencyGate::default();
        assert!((0..100).all(|_| g.tick(1.0)));
    }

    #[test]
    fn gate_zero_never_fires() {
        let mut g = FrequencyGate::default();
        assert!((0..100).all(|_| !g.tick(0.0)));
    }

    #[test]
    fn gate_half_fires_every_other() {
        let mut g = FrequencyGate::default();
        let fired: Vec<bool> = (0..10).map(|_| g.tick(0.5)).collect();
        assert_eq!(fired.iter().filter(|&&b| b).count(), 5);
        // Evenly spread: no two consecutive detections.
        for w in fired.windows(2) {
            assert!(!(w[0] && w[1]));
        }
    }

    #[test]
    fn gate_fractional_rate_converges() {
        let mut g = FrequencyGate::default();
        let n = 1000;
        let fired = (0..n).filter(|_| g.tick(0.3)).count();
        assert!((fired as f64 - 300.0).abs() <= 1.0, "fired {fired}");
    }
}
