//! Configuration for ABFT detection, correction, and protection scheduling.

/// Thresholds governing EEC-ABFT detection and correction (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbftConfig {
    /// Finite values with magnitude above this count as near-INF.
    /// Paper: `T_near-INF = 1e10`.
    pub near_inf_threshold: f32,
    /// Corrupted values with magnitude above this are corrected by
    /// *reconstruction* from the checksum rather than by adding δ1, because
    /// round-off absorption would otherwise corrupt the recovery.
    /// Paper: `T_correct = 1e5`.
    pub correct_threshold: f32,
    /// Relative round-off tolerance `E` for checksum comparison: a checksum
    /// discrepancy counts as an error only when
    /// `|δ1| > detect_tol · (Σ|v| + 1)`.
    pub detect_tol: f32,
}

impl Default for AbftConfig {
    fn default() -> Self {
        Self {
            near_inf_threshold: 1e10,
            correct_threshold: 1e5,
            detect_tol: 5e-4,
        }
    }
}

impl AbftConfig {
    /// Round-off detection bound for a vector whose absolute sum is
    /// `sum_abs`.
    #[inline]
    pub fn detection_bound(&self, sum_abs: f32) -> f32 {
        self.detect_tol * (sum_abs + 1.0)
    }
}

/// Checksum update/encoding strategy — the Fig 8 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Paper §4.6 optimizations: checksums are packed into the operand so
    /// one GEMM updates data and checksums together; encodings are single
    /// fused passes; detection is one parallel divergence-free sweep.
    Fused,
    /// "Non-OPT" baseline: every checksum is produced by separate passes
    /// (distinct encode "kernels" with their own allocations and memory
    /// sweeps), mimicking a cuBLAS-composed implementation.
    Separate,
}

/// Which protection sections run, at what frequency, and how.
///
/// Frequencies follow paper §4.5: `f = 1.0` checks the section on every
/// execution, `f = 0.5` every other execution, `f = 0` never. Fractional
/// frequencies are realised deterministically by an execution counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtectionConfig {
    /// Detection frequency for the attention-score section
    /// `S_AS = {X·W_Q, X·W_K, Q·Kᵀ}`.
    pub f_as: f64,
    /// Detection frequency for the context-layer section
    /// `S_CL = {X·W_V, AP·V}`.
    pub f_cl: f64,
    /// Detection frequency for the output section `S_O = {CL·W_O}`.
    pub f_o: f64,
    /// Encoding/update strategy.
    pub strategy: Strategy,
    /// Detection/correction thresholds.
    pub abft: AbftConfig,
}

impl ProtectionConfig {
    /// Full protection: every section checked on every execution with the
    /// fused strategy (the configuration evaluated in paper §5.2–5.3).
    pub fn full() -> Self {
        Self {
            f_as: 1.0,
            f_cl: 1.0,
            f_o: 1.0,
            strategy: Strategy::Fused,
            abft: AbftConfig::default(),
        }
    }

    /// Protection disabled everywhere — the unprotected baseline.
    pub fn off() -> Self {
        Self {
            f_as: 0.0,
            f_cl: 0.0,
            f_o: 0.0,
            strategy: Strategy::Fused,
            abft: AbftConfig::default(),
        }
    }

    /// Full protection through the deliberately naive separate-pass
    /// strategy (paper Fig 8 "ATTNChecker(Non-OPT)").
    pub fn full_unoptimized() -> Self {
        Self {
            strategy: Strategy::Separate,
            ..Self::full()
        }
    }

    /// Full protection with custom per-section frequencies (the output of
    /// the adaptive optimizer, paper §4.5/§5.4).
    pub fn with_frequencies(f_as: f64, f_cl: f64, f_o: f64) -> Self {
        Self {
            f_as: f_as.clamp(0.0, 1.0),
            f_cl: f_cl.clamp(0.0, 1.0),
            f_o: f_o.clamp(0.0, 1.0),
            ..Self::full()
        }
    }

    /// True when no section is ever checked.
    pub fn is_off(&self) -> bool {
        self.f_as == 0.0 && self.f_cl == 0.0 && self.f_o == 0.0
    }
}

/// Deterministic frequency gate: decides whether the `n`-th execution
/// (0-based) of a section with frequency `f` performs detection.
///
/// Uses an error-diffusion accumulator so that over `N` executions exactly
/// `⌈f·N⌉`-ish detections happen, evenly spread (e.g. `f = 0.5` → every
/// other execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct FrequencyGate {
    acc: f64,
}

impl FrequencyGate {
    /// Advance one execution; returns true when detection should run.
    pub fn tick(&mut self, f: f64) -> bool {
        self.acc += f.clamp(0.0, 1.0);
        if self.acc >= 1.0 - 1e-12 {
            self.acc -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_thresholds() {
        let c = AbftConfig::default();
        assert_eq!(c.near_inf_threshold, 1e10);
        assert_eq!(c.correct_threshold, 1e5);
    }

    #[test]
    fn detection_bound_scales_with_magnitude() {
        let c = AbftConfig::default();
        assert!(c.detection_bound(1000.0) > c.detection_bound(1.0));
        assert!(c.detection_bound(0.0) > 0.0);
    }

    #[test]
    fn full_and_off_configs() {
        assert!(!ProtectionConfig::full().is_off());
        assert!(ProtectionConfig::off().is_off());
        assert_eq!(
            ProtectionConfig::full_unoptimized().strategy,
            Strategy::Separate
        );
    }

    #[test]
    fn with_frequencies_clamps() {
        let c = ProtectionConfig::with_frequencies(1.5, -0.2, 0.3);
        assert_eq!(c.f_as, 1.0);
        assert_eq!(c.f_cl, 0.0);
        assert_eq!(c.f_o, 0.3);
    }

    #[test]
    fn gate_full_frequency_always_fires() {
        let mut g = FrequencyGate::default();
        assert!((0..100).all(|_| g.tick(1.0)));
    }

    #[test]
    fn gate_zero_never_fires() {
        let mut g = FrequencyGate::default();
        assert!((0..100).all(|_| !g.tick(0.0)));
    }

    #[test]
    fn gate_half_fires_every_other() {
        let mut g = FrequencyGate::default();
        let fired: Vec<bool> = (0..10).map(|_| g.tick(0.5)).collect();
        assert_eq!(fired.iter().filter(|&&b| b).count(), 5);
        // Evenly spread: no two consecutive detections.
        for w in fired.windows(2) {
            assert!(!(w[0] && w[1]));
        }
    }

    #[test]
    fn gate_fractional_rate_converges() {
        let mut g = FrequencyGate::default();
        let n = 1000;
        let fired = (0..n).filter(|_| g.tick(0.3)).count();
        assert!((fired as f64 - 300.0).abs() <= 1.0, "fired {fired}");
    }
}
