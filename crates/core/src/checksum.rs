//! Dual-checksum encoding primitives (paper §2.3).
//!
//! A matrix `A` is protected by two weight vectors: the unweighted
//! `v1 = [1, 1, …, 1]ᵀ` and the weighted `v2 = [1, 2, …, n]ᵀ`. Column
//! checksums are the two row-vectors `v1ᵀA` and `v2ᵀA`; row checksums the
//! two column-vectors `A·v1` and `A·v2`. Together a (checksum, weighted
//! checksum) pair both *detects* an error (δ1 ≠ 0) and *locates* it
//! (δ2/δ1 = weighted index).
//!
//! Two encoder implementations coexist:
//!
//! * [`col_checksums`] / [`row_checksums`] — single fused pass over the
//!   data computing both weight projections at once (what the paper's
//!   custom GPU encoder achieves with shared-memory staging: one read of
//!   `A` produces both sums). This is the §4.6-optimized path.
//! * [`col_checksums_naive`] / [`row_checksums_naive`] — two *separate*
//!   GEMV-style passes with their own temporary allocations, mimicking the
//!   strided cuBLAS composition the paper benchmarks against in Fig 9
//!   (cuBLAS reads `A` twice and launches twice).
//!
//! **Accumulation-order contract.** The packed GEMM kernels can produce
//! the same projections *inside their packing pass*
//! (`attn_tensor::gemm::gemm_encode_cols_into` /
//! `gemm_encode_rows_into`), visiting rows in [`gemm::MC`]-sized blocks
//! (columns in [`gemm::NC`]-sized blocks for row checksums) with block
//! partials combined in block order. The standalone encoders here follow
//! the *same* blocked order, so a fused encoding is bit-identical to
//! encode-then-GEMM — the property `CheckedMatrix::matmul_encode_cols`
//! and the exact-replay machinery rely on.
//!
//! [`gemm::MC`]: attn_tensor::gemm::MC
//! [`gemm::NC`]: attn_tensor::gemm::NC
//!
//! attn-lint: hot-path

use attn_tensor::gemm::{MC, NC};
use attn_tensor::{workspace, Matrix};

/// Weighted index of row/column `i` (1-based weights, matching `v2`).
///
/// Delegates to the canonical definition next to the fused in-packing
/// encoder so the two can never drift apart.
#[inline]
pub fn weight(i: usize) -> f32 {
    attn_tensor::pack::checksum_weight(i)
}

/// Compute column checksums of `a`: a `2 × cols` matrix whose row 0 is
/// `v1ᵀA` (plain column sums) and row 1 is `v2ᵀA` (weighted column sums).
///
/// Single pass over `a`, both projections accumulating together, rows
/// visited in [`MC`]-blocks with per-block partials — bit-identical to
/// the fused in-packing encoder of the packed GEMM (see module docs).
pub fn col_checksums(a: &Matrix) -> Matrix {
    let (m, n) = (a.rows(), a.cols());
    let mut cs = Matrix::zeros(2, n);
    let mut part = workspace::take(2 * n);
    for r0 in (0..m).step_by(MC) {
        let rend = (r0 + MC).min(m);
        let (psum, pwsum) = part.split_at_mut(n);
        psum.fill(0.0);
        pwsum.fill(0.0);
        for r in r0..rend {
            let w = weight(r);
            let row = a.row(r);
            for c in 0..n {
                psum[c] += row[c];
                pwsum[c] += w * row[c];
            }
        }
        let (sum_row, wsum_row) = cs.data_mut().split_at_mut(n);
        for c in 0..n {
            sum_row[c] += psum[c];
            wsum_row[c] += pwsum[c];
        }
    }
    cs
}

/// Compute row checksums of `a`: an `rows × 2` matrix whose column 0 is
/// `A·v1` and column 1 is `A·v2`. Single pass over `a`, columns visited
/// in [`NC`]-blocks with per-block partials (the fused-encoder contract).
pub fn row_checksums(a: &Matrix) -> Matrix {
    let (m, n) = (a.rows(), a.cols());
    let mut cs = Matrix::zeros(m, 2);
    for r in 0..m {
        let row = a.row(r);
        let mut s = 0.0f32;
        let mut ws = 0.0f32;
        for c0 in (0..n).step_by(NC) {
            let cend = (c0 + NC).min(n);
            let mut ps = 0.0f32;
            let mut pws = 0.0f32;
            for (c, &v) in row[c0..cend].iter().enumerate() {
                ps += v;
                pws += weight(c0 + c) * v;
            }
            s += ps;
            ws += pws;
        }
        cs[(r, 0)] = s;
        cs[(r, 1)] = ws;
    }
    cs
}

/// Naive column-checksum encoder: two independent full passes (one per
/// weight vector), each with its own temporary — the memory-traffic pattern
/// of composing two cuBLAS GEMV calls.
#[allow(clippy::needless_range_loop)] // the two explicit passes are the point
pub fn col_checksums_naive(a: &Matrix) -> Matrix {
    let (m, n) = (a.rows(), a.cols());
    // Pass 1: unweighted.
    // attn-lint: allow(hot-path-alloc) — the Fig 8 Separate baseline deliberately pays per-call temporaries
    let mut sum = vec![0.0f32; n];
    for r in 0..m {
        for (acc, &v) in sum.iter_mut().zip(a.row(r)) {
            *acc += v;
        }
    }
    // Pass 2: weighted — reads A again from scratch.
    // attn-lint: allow(hot-path-alloc) — the Fig 8 Separate baseline deliberately pays per-call temporaries
    let mut wsum = vec![0.0f32; n];
    for r in 0..m {
        let w = weight(r);
        for (acc, &v) in wsum.iter_mut().zip(a.row(r)) {
            *acc += w * v;
        }
    }
    let mut cs = Matrix::zeros(2, n);
    cs.row_mut(0).copy_from_slice(&sum);
    cs.row_mut(1).copy_from_slice(&wsum);
    cs
}

/// Naive row-checksum encoder: two independent passes (see
/// [`col_checksums_naive`]).
#[allow(clippy::needless_range_loop)] // the two explicit passes are the point
pub fn row_checksums_naive(a: &Matrix) -> Matrix {
    let m = a.rows();
    // attn-lint: allow(hot-path-alloc) — the Fig 8 Separate baseline deliberately pays per-call temporaries
    let mut sum = vec![0.0f32; m];
    for r in 0..m {
        sum[r] = a.row(r).iter().sum();
    }
    // attn-lint: allow(hot-path-alloc) — the Fig 8 Separate baseline deliberately pays per-call temporaries
    let mut wsum = vec![0.0f32; m];
    for r in 0..m {
        wsum[r] = a
            .row(r)
            .iter()
            .enumerate()
            .map(|(c, &v)| weight(c) * v)
            .sum();
    }
    let mut cs = Matrix::zeros(m, 2);
    for r in 0..m {
        cs[(r, 0)] = sum[r];
        cs[(r, 1)] = wsum[r];
    }
    cs
}

/// Batched column-checksum encoding over a [`attn_tensor::Batch3`]: one `2 × cols`
/// checksum block per slot, computed with a single fused pass per slot and
/// the slots fanned out in parallel — the CPU analogue of the paper's
/// custom encoder that "parallelizes along the SMs by number of heads ×
/// number of batches" (§4.6).
pub fn col_checksums_batch(batch: &attn_tensor::Batch3) -> attn_tensor::Batch3 {
    use rayon::prelude::*;
    let (n, rows, cols) = (batch.n(), batch.rows(), batch.cols());
    let mut out = attn_tensor::Batch3::zeros(n, 2, cols);
    let src = batch.data();
    let slot_in = rows * cols;
    out.data_mut()
        .par_chunks_mut(2 * cols)
        .enumerate()
        .for_each(|(i, dst)| {
            let slot = &src[i * slot_in..(i + 1) * slot_in];
            let (sum_row, wsum_row) = dst.split_at_mut(cols);
            for r in 0..rows {
                let w = weight(r);
                let row = &slot[r * cols..(r + 1) * cols];
                for c in 0..cols {
                    // attn-lint: allow(nondet-reduce) — sequential loop over this slot's disjoint chunk; merge order is fixed
                    sum_row[c] += row[c];
                    // attn-lint: allow(nondet-reduce) — sequential loop over this slot's disjoint chunk; merge order is fixed
                    wsum_row[c] += w * row[c];
                }
            }
        });
    out
}

/// Naive batched encoder: two sequential passes per slot with a temporary
/// per pass (the cuBLAS-composition traffic pattern), no slot parallelism —
/// the Fig 9 baseline.
pub fn col_checksums_batch_naive(batch: &attn_tensor::Batch3) -> attn_tensor::Batch3 {
    let (n, _rows, cols) = (batch.n(), batch.rows(), batch.cols());
    let mut out = attn_tensor::Batch3::zeros(n, 2, cols);
    for i in 0..n {
        let m = batch.slot_matrix(i);
        let cs = col_checksums_naive(&m);
        out.set_slot(i, &cs);
    }
    out
}

/// Recompute the (unweighted, weighted, absolute) sums of a vector in one
/// pass. The absolute sum feeds the round-off detection bound.
#[inline]
pub fn vector_sums(v: &[f32]) -> (f32, f32, f32) {
    let mut s = 0.0f32;
    let mut ws = 0.0f32;
    let mut abs = 0.0f32;
    for (i, &x) in v.iter().enumerate() {
        s += x;
        ws += weight(i) * x;
        abs += x.abs();
    }
    (s, ws, abs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attn_tensor::gemm::matmul;
    use attn_tensor::rng::TensorRng;

    fn weights_matrix(m: usize) -> Matrix {
        // [v1ᵀ; v2ᵀ] as a 2×m matrix for reference computations.
        Matrix::from_fn(2, m, |r, c| if r == 0 { 1.0 } else { weight(c) })
    }

    #[test]
    fn col_checksums_equal_explicit_projection() {
        let mut rng = TensorRng::seed_from(1);
        let a = rng.normal_matrix(9, 6, 1.0);
        let cs = col_checksums(&a);
        let expect = matmul(&weights_matrix(9), &a);
        assert!(cs.approx_eq(&expect, 1e-5, 1e-5));
    }

    #[test]
    fn row_checksums_equal_explicit_projection() {
        let mut rng = TensorRng::seed_from(2);
        let a = rng.normal_matrix(7, 11, 1.0);
        let cs = row_checksums(&a);
        let expect = matmul(&a, &weights_matrix(11).transpose());
        assert!(cs.approx_eq(&expect, 1e-5, 1e-5));
    }

    #[test]
    fn naive_and_fused_encoders_agree() {
        let mut rng = TensorRng::seed_from(3);
        let a = rng.normal_matrix(13, 8, 2.0);
        assert!(col_checksums(&a).approx_eq(&col_checksums_naive(&a), 1e-5, 1e-5));
        assert!(row_checksums(&a).approx_eq(&row_checksums_naive(&a), 1e-5, 1e-5));
    }

    #[test]
    fn checksum_linearity_through_gemm() {
        // The ABFT invariant: colsum(A·B) == colsum-rows-of-A · B.
        let mut rng = TensorRng::seed_from(4);
        let a = rng.normal_matrix(6, 5, 1.0);
        let b = rng.normal_matrix(5, 7, 1.0);
        let c = matmul(&a, &b);
        let via_product = matmul(&col_checksums(&a), &b);
        assert!(col_checksums(&c).approx_eq(&via_product, 2e-4, 2e-4));

        let via_product_r = matmul(&a, &row_checksums(&b));
        assert!(row_checksums(&c).approx_eq(&via_product_r, 2e-4, 2e-4));
    }

    #[test]
    fn vector_sums_consistency() {
        let v = [1.0f32, -2.0, 3.0];
        let (s, ws, abs) = vector_sums(&v);
        assert_eq!(s, 2.0);
        assert_eq!(ws, 1.0 - 4.0 + 9.0);
        assert_eq!(abs, 6.0);
    }

    #[test]
    fn single_error_localisation_identity() {
        // δ2/δ1 equals the 1-based index of a single corrupted element.
        let mut rng = TensorRng::seed_from(5);
        let a = rng.normal_matrix(1, 16, 1.0);
        let (s0, ws0, _) = vector_sums(a.row(0));
        for idx in [0usize, 3, 15] {
            let mut v = a.row(0).to_vec();
            v[idx] += 7.5;
            let (s1, ws1, _) = vector_sums(&v);
            let d1 = s0 - s1;
            let d2 = ws0 - ws1;
            let located = (d2 / d1).round() as usize;
            assert_eq!(located, idx + 1);
        }
    }

    #[test]
    fn empty_matrix_checksums() {
        let a = Matrix::zeros(0, 4);
        let cs = col_checksums(&a);
        assert_eq!((cs.rows(), cs.cols()), (2, 4));
        assert!(attn_tensor::float::all_exactly_zero(cs.data()));
    }

    #[test]
    fn batched_encoders_match_per_slot_encoding() {
        use attn_tensor::Batch3;
        let mut rng = TensorRng::seed_from(8);
        let mats: Vec<Matrix> = (0..6).map(|_| rng.normal_matrix(16, 8, 1.0)).collect();
        let batch = Batch3::from_matrices(&mats);
        let fused = col_checksums_batch(&batch);
        let naive = col_checksums_batch_naive(&batch);
        for (i, m) in mats.iter().enumerate() {
            let expect = col_checksums(m);
            assert!(
                fused.slot_matrix(i).approx_eq(&expect, 1e-5, 1e-5),
                "fused slot {i}"
            );
            assert!(
                naive.slot_matrix(i).approx_eq(&expect, 1e-5, 1e-5),
                "naive slot {i}"
            );
        }
    }
}
