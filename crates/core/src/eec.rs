//! Extreme-Error-Correcting ABFT for a single vector (paper §4.2, Fig 3).
//!
//! Classic ABFT locates a single error at `round(δ2/δ1)` and corrects it by
//! adding `δ1`. Both steps break down for the extreme values this paper
//! targets:
//!
//! * an INF or NaN error poisons both recomputed checksums, so `δ2/δ1` is
//!   INF/NaN and the index is garbage;
//! * a near-INF error can overflow the *weighted* checksum (weights grow
//!   with the index) even when the plain checksum survives;
//! * a near-INF correction by `+δ1` absorbs the true value into round-off.
//!
//! EEC-ABFT therefore dispatches on the *state of δ1*:
//!
//! * **Case 1** — δ1 finite: count near-INF elements; locate via `δ2/δ1`
//!   when δ2 is finite, otherwise by magnitude scan; correct by `+δ1` for
//!   moderate values and by reconstruction above `T_correct`.
//! * **Case 2** — δ1 = ±INF: an INF in the data or a checksum-sum overflow;
//!   locate by scanning for INF / the largest magnitude; reconstruct.
//! * **Case 3** — δ1 = NaN: any of the three types (NaN arises from
//!   INF−INF and near-INF arithmetic too); locate by scanning for NaN, then
//!   INF, then magnitude; reconstruct.
//! * **Case 4** — more than one suspicious element: a 1D propagation; abort
//!   the vector-local correction and report upward (the section handler
//!   switches to the orthogonal checksums, §4.3).

use crate::checksum::{vector_sums, weight};
use crate::config::AbftConfig;

/// How a correction was performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionMethod {
    /// `v[i] += δ1` — safe for moderate magnitudes.
    DeltaAdd,
    /// `v[i] = csum − Σ_{j≠i} v[j]` — mandatory for extreme magnitudes
    /// where δ-addition would be absorbed by round-off.
    Reconstruct,
}

/// Which δ1 state drove the dispatch (for reporting / tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EecCase {
    /// δ1 finite and above the detection bound.
    FiniteDelta,
    /// δ1 = ±INF.
    InfDelta,
    /// δ1 = NaN.
    NanDelta,
}

/// Outcome of running EEC-ABFT on one vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VectorVerdict {
    /// Checksums hold — no error.
    Clean,
    /// Exactly one error found and corrected in place.
    Corrected {
        /// Index of the corrected element.
        index: usize,
        /// Corrupted value before correction.
        old_value: f32,
        /// Restored value.
        new_value: f32,
        /// Correction mechanism used.
        method: CorrectionMethod,
        /// Dispatch case that handled it.
        case: EecCase,
    },
    /// More than one suspicious element: 1D propagation (case 4). The
    /// vector is untouched; the caller must use the orthogonal checksums.
    Propagated {
        /// Number of suspicious elements counted.
        suspects: usize,
    },
    /// The data is consistent but a stored checksum is corrupt (the fault
    /// struck the checksum border). Caller should rebuild the checksums.
    ChecksumCorrupt,
    /// Both the data and the checksum needed for reconstruction are
    /// corrupt — beyond single-vector recovery.
    Unrecoverable,
}

impl VectorVerdict {
    /// True for the `Clean` verdict.
    pub fn is_clean(&self) -> bool {
        matches!(self, VectorVerdict::Clean)
    }

    /// True when a correction was applied.
    pub fn is_corrected(&self) -> bool {
        matches!(self, VectorVerdict::Corrected { .. })
    }
}

/// Count "suspicious" elements: NaN, ±INF, and finite values above the
/// near-INF threshold; return the count and the index of the strongest
/// suspect (NaN ≻ INF ≻ near-INF by scan priority).
fn census(v: &[f32], near_inf: f32) -> (usize, Option<usize>) {
    let mut count = 0;
    let mut first_nan = None;
    let mut first_inf = None;
    let mut max_near: Option<(usize, f32)> = None;
    for (i, &x) in v.iter().enumerate() {
        if x.is_nan() {
            count += 1;
            first_nan.get_or_insert(i);
        } else if x.is_infinite() {
            count += 1;
            first_inf.get_or_insert(i);
        } else if x.abs() > near_inf {
            count += 1;
            match max_near {
                Some((_, m)) if x.abs() <= m => {}
                _ => max_near = Some((i, x.abs())),
            }
        }
    }
    let strongest = first_nan.or(first_inf).or(max_near.map(|(i, _)| i));
    (count, strongest)
}

/// Reconstruct element `i` from the stored checksum:
/// `v[i] = csum − Σ_{j≠i} v[j]`. Returns `None` when the checksum or any
/// *other* element is non-finite (reconstruction impossible).
fn reconstruct(v: &[f32], i: usize, csum: f32) -> Option<f32> {
    if !csum.is_finite() {
        return None;
    }
    // f64 accumulation: the restored value should be limited by the stored
    // checksum's own round-off, not by re-summing in f32.
    let mut rest = 0.0f64;
    for (j, &x) in v.iter().enumerate() {
        if j == i {
            continue;
        }
        if !x.is_finite() {
            return None;
        }
        rest += x as f64;
    }
    let rec = (csum as f64 - rest) as f32;
    rec.is_finite().then_some(rec)
}

/// Run EEC-ABFT on one vector given its stored checksums.
///
/// `v` is the data vector (a logical row or column of a [`crate::CheckedMatrix`]);
/// `csum`/`wsum` the stored unweighted/weighted checksums. On a single
/// recoverable error the element is corrected **in place** and the verdict
/// reports the restored index; on propagation or double corruption `v` is
/// left untouched.
pub fn eec_correct_vector(v: &mut [f32], csum: f32, wsum: f32, cfg: &AbftConfig) -> VectorVerdict {
    let n = v.len();
    if n == 0 {
        return VectorVerdict::Clean;
    }
    let (c1, c2, sum_abs) = vector_sums(v);
    let d1 = csum - c1;
    let d2 = wsum - c2;
    let bound = cfg.detection_bound(sum_abs);
    // Weighted sums accumulate index-scaled magnitudes; scale the bound the
    // same way to keep false-positive rates symmetric.
    let bound_w = cfg.detection_bound(sum_abs * n as f32);

    if d1.is_nan() {
        // ---- Case 3: NaN δ — all three error types possible.
        let (suspects, strongest) = census(v, cfg.near_inf_threshold);
        return match suspects {
            0 => VectorVerdict::ChecksumCorrupt, // data clean, csum is NaN
            1 => {
                let i = strongest.expect("census found one suspect");
                match reconstruct(v, i, csum) {
                    Some(new) => {
                        let old = v[i];
                        v[i] = new;
                        VectorVerdict::Corrected {
                            index: i,
                            old_value: old,
                            new_value: new,
                            method: CorrectionMethod::Reconstruct,
                            case: EecCase::NanDelta,
                        }
                    }
                    None => VectorVerdict::Unrecoverable,
                }
            }
            s => VectorVerdict::Propagated { suspects: s },
        };
    }

    if d1.is_infinite() {
        // ---- Case 2: INF δ — an INF in the data, a near-INF overflow of
        // the recomputed sum, or a corrupted (±INF) stored checksum.
        let (suspects, strongest) = census(v, cfg.near_inf_threshold);
        return match suspects {
            0 => VectorVerdict::ChecksumCorrupt, // data clean, csum is ±INF
            1 => {
                let i = strongest.expect("census found one suspect");
                match reconstruct(v, i, csum) {
                    Some(new) => {
                        let old = v[i];
                        v[i] = new;
                        VectorVerdict::Corrected {
                            index: i,
                            old_value: old,
                            new_value: new,
                            method: CorrectionMethod::Reconstruct,
                            case: EecCase::InfDelta,
                        }
                    }
                    None => VectorVerdict::Unrecoverable,
                }
            }
            s => VectorVerdict::Propagated { suspects: s },
        };
    }

    // δ1 finite from here on.
    if d1.abs() <= bound {
        // Plain checksum consistent. Still guard the weighted checksum: a
        // fault that struck only the weighted border must be repaired or it
        // would mis-locate a future error.
        if d2.is_nan() || d2.is_infinite() || d2.abs() > bound_w {
            return VectorVerdict::ChecksumCorrupt;
        }
        return VectorVerdict::Clean;
    }

    // ---- Case 1: finite δ1 above the detection bound.
    let (near_count, strongest) = census(v, cfg.near_inf_threshold);
    match near_count {
        0 => {
            // Moderate single error: classic locate via δ2/δ1, but validate
            // the single-error hypothesis before touching anything.
            let ratio = d2 / d1;
            if !ratio.is_finite() {
                return VectorVerdict::ChecksumCorrupt;
            }
            let idx = ratio.round();
            if idx < 1.0 || idx > n as f32 {
                // Locator out of range: the discrepancy cannot come from a
                // single data error — a checksum cell took the hit.
                return VectorVerdict::ChecksumCorrupt;
            }
            let i = idx as usize - 1;
            // Consistency: a single error at i implies δ2 ≈ (i+1)·δ1.
            if (d2 - weight(i) * d1).abs() > bound_w.max(d1.abs() * 0.01) {
                return VectorVerdict::Propagated { suspects: 2 };
            }
            let old = v[i];
            let (new, method) = if old.abs() > cfg.correct_threshold {
                match reconstruct(v, i, csum) {
                    Some(r) => (r, CorrectionMethod::Reconstruct),
                    None => return VectorVerdict::Unrecoverable,
                }
            } else {
                (old + d1, CorrectionMethod::DeltaAdd)
            };
            v[i] = new;
            VectorVerdict::Corrected {
                index: i,
                old_value: old,
                new_value: new,
                method,
                case: EecCase::FiniteDelta,
            }
        }
        1 => {
            // Exactly one near-INF element. The weighted checksum may have
            // overflowed (δ2 INF) — prefer δ2/δ1 when finite, fall back to
            // the magnitude scan the paper describes.
            let i = if d2.is_finite() {
                let idx = (d2 / d1).round();
                if idx >= 1.0 && idx <= n as f32 {
                    idx as usize - 1
                } else {
                    strongest.expect("census found one suspect")
                }
            } else {
                strongest.expect("census found one suspect")
            };
            let old = v[i];
            // Near-INF magnitude ≫ T_correct: δ-addition would round away
            // the true value; reconstruct instead.
            match reconstruct(v, i, csum) {
                Some(new) => {
                    v[i] = new;
                    VectorVerdict::Corrected {
                        index: i,
                        old_value: old,
                        new_value: new,
                        method: CorrectionMethod::Reconstruct,
                        case: EecCase::FiniteDelta,
                    }
                }
                None => VectorVerdict::Unrecoverable,
            }
        }
        s => VectorVerdict::Propagated { suspects: s },
    }
}

/// Detection-only variant: recompute checksums and compare, touching
/// nothing. Used to measure pure detection overhead and by tests.
pub fn eec_detect_vector(v: &[f32], csum: f32, wsum: f32, cfg: &AbftConfig) -> bool {
    let n = v.len();
    if n == 0 {
        return false;
    }
    let (c1, c2, sum_abs) = vector_sums(v);
    let d1 = csum - c1;
    let d2 = wsum - c2;
    if d1.is_nan() || d1.is_infinite() {
        return true;
    }
    let bound = cfg.detection_bound(sum_abs);
    let bound_w = cfg.detection_bound(sum_abs * n as f32);
    d1.abs() > bound || d2.is_nan() || d2.is_infinite() || d2.abs() > bound_w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_vector(n: usize) -> (Vec<f32>, f32, f32) {
        let v: Vec<f32> = (0..n).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.37).collect();
        let (s, ws, _) = vector_sums(&v);
        (v, s, ws)
    }

    fn cfg() -> AbftConfig {
        AbftConfig::default()
    }

    #[test]
    fn clean_vector_passes() {
        let (mut v, s, ws) = make_vector(32);
        assert_eq!(
            eec_correct_vector(&mut v, s, ws, &cfg()),
            VectorVerdict::Clean
        );
    }

    #[test]
    fn corrects_inf_at_every_position() {
        for pos in 0..16 {
            let (mut v, s, ws) = make_vector(16);
            let truth = v.clone();
            v[pos] = f32::INFINITY;
            let verdict = eec_correct_vector(&mut v, s, ws, &cfg());
            match verdict {
                VectorVerdict::Corrected {
                    index,
                    case,
                    method,
                    ..
                } => {
                    assert_eq!(index, pos);
                    assert_eq!(case, EecCase::InfDelta);
                    assert_eq!(method, CorrectionMethod::Reconstruct);
                }
                other => panic!("pos {pos}: {other:?}"),
            }
            assert!((v[pos] - truth[pos]).abs() < 1e-3, "pos {pos}");
        }
    }

    #[test]
    fn corrects_neg_inf() {
        let (mut v, s, ws) = make_vector(8);
        let truth = v[3];
        v[3] = f32::NEG_INFINITY;
        assert!(eec_correct_vector(&mut v, s, ws, &cfg()).is_corrected());
        assert!((v[3] - truth).abs() < 1e-3);
    }

    #[test]
    fn corrects_nan_at_every_position() {
        for pos in [0usize, 1, 7, 15] {
            let (mut v, s, ws) = make_vector(16);
            let truth = v[pos];
            v[pos] = f32::NAN;
            let verdict = eec_correct_vector(&mut v, s, ws, &cfg());
            match verdict {
                VectorVerdict::Corrected { index, case, .. } => {
                    assert_eq!(index, pos);
                    assert_eq!(case, EecCase::NanDelta);
                }
                other => panic!("pos {pos}: {other:?}"),
            }
            assert!((v[pos] - truth).abs() < 1e-3);
        }
    }

    #[test]
    fn corrects_near_inf_by_reconstruction() {
        let (mut v, s, ws) = make_vector(24);
        let truth = v[10];
        v[10] = 3.7e12;
        let verdict = eec_correct_vector(&mut v, s, ws, &cfg());
        match verdict {
            VectorVerdict::Corrected { index, method, .. } => {
                assert_eq!(index, 10);
                assert_eq!(method, CorrectionMethod::Reconstruct);
            }
            other => panic!("{other:?}"),
        }
        assert!((v[10] - truth).abs() < 1e-3);
    }

    #[test]
    fn near_inf_with_weighted_overflow_still_located() {
        // Huge value near the end of a long vector: weight ~n pushes the
        // weighted sum past f32::MAX → δ2 = ±INF → magnitude-scan fallback.
        let n = 64;
        let (mut v, s, ws) = make_vector(n);
        let truth = v[60];
        v[60] = 3.0e38; // weight 61 × 3e38 overflows
        let (_, c2, _) = vector_sums(&v);
        assert!(c2.is_infinite(), "test premise: weighted sum overflows");
        let verdict = eec_correct_vector(&mut v, s, ws, &cfg());
        assert!(verdict.is_corrected(), "{verdict:?}");
        assert!((v[60] - truth).abs() < 1e-2);
    }

    #[test]
    fn corrects_moderate_error_by_delta_add() {
        let (mut v, s, ws) = make_vector(20);
        let truth = v[5];
        v[5] += 42.0;
        let verdict = eec_correct_vector(&mut v, s, ws, &cfg());
        match verdict {
            VectorVerdict::Corrected {
                index,
                method,
                new_value,
                ..
            } => {
                assert_eq!(index, 5);
                assert_eq!(method, CorrectionMethod::DeltaAdd);
                assert!((new_value - truth).abs() < 1e-3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn large_but_sub_threshold_error_reconstructs() {
        // Magnitude above T_correct (1e5) but below T_near-INF (1e10):
        // δ-addition would absorb the small true value; the threshold routes
        // to reconstruction.
        let (mut v, s, ws) = make_vector(12);
        let truth = v[4];
        v[4] = 2.0e7;
        let verdict = eec_correct_vector(&mut v, s, ws, &cfg());
        match verdict {
            VectorVerdict::Corrected { index, method, .. } => {
                assert_eq!(index, 4);
                assert_eq!(method, CorrectionMethod::Reconstruct);
            }
            other => panic!("{other:?}"),
        }
        assert!((v[4] - truth).abs() < 1.0);
    }

    #[test]
    fn two_infs_report_propagation() {
        let (mut v, s, ws) = make_vector(16);
        let before = v.clone();
        v[2] = f32::INFINITY;
        v[9] = f32::INFINITY;
        let verdict = eec_correct_vector(&mut v, s, ws, &cfg());
        assert_eq!(verdict, VectorVerdict::Propagated { suspects: 2 });
        // Untouched on abort.
        assert_eq!(v[0], before[0]);
    }

    #[test]
    fn full_vector_of_nans_reports_propagation() {
        let (mut v, s, ws) = make_vector(8);
        for x in v.iter_mut() {
            *x = f32::NAN;
        }
        assert_eq!(
            eec_correct_vector(&mut v, s, ws, &cfg()),
            VectorVerdict::Propagated { suspects: 8 }
        );
    }

    #[test]
    fn mixed_type_propagation_counts_all_kinds() {
        // The paper's mixed-type hazard: near-INF + INF + NaN in one vector.
        let (mut v, s, ws) = make_vector(12);
        v[1] = 5e11;
        v[4] = f32::NEG_INFINITY;
        v[8] = f32::NAN;
        match eec_correct_vector(&mut v, s, ws, &cfg()) {
            VectorVerdict::Propagated { suspects } => assert_eq!(suspects, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn two_moderate_errors_detected_as_propagation() {
        let (mut v, s, ws) = make_vector(16);
        v[3] += 10.0;
        v[11] += 25.0;
        // Finite deltas, no extreme census: the δ2-consistency cross-check
        // must reject the single-error hypothesis (paper case 4 gate).
        match eec_correct_vector(&mut v, s, ws, &cfg()) {
            VectorVerdict::Propagated { .. } => {}
            // A colliding pair can occasionally mimic a single error at a
            // legal index; accept correction only if it lands on neither.
            other => panic!("expected propagation, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_unweighted_checksum_detected() {
        let (mut v, s, ws) = make_vector(16);
        let data = v.clone();
        let verdict = eec_correct_vector(&mut v, s + 50.0, ws, &cfg());
        assert_eq!(verdict, VectorVerdict::ChecksumCorrupt);
        assert_eq!(v, data, "data must be untouched");
    }

    #[test]
    fn corrupted_weighted_checksum_detected() {
        let (mut v, s, ws) = make_vector(16);
        let verdict = eec_correct_vector(&mut v, s, ws + 1e4, &cfg());
        assert_eq!(verdict, VectorVerdict::ChecksumCorrupt);
    }

    #[test]
    fn nan_checksum_with_clean_data_is_checksum_corrupt() {
        let (mut v, _s, ws) = make_vector(16);
        let verdict = eec_correct_vector(&mut v, f32::NAN, ws, &cfg());
        assert_eq!(verdict, VectorVerdict::ChecksumCorrupt);
    }

    #[test]
    fn inf_checksum_with_clean_data_is_checksum_corrupt() {
        let (mut v, _s, ws) = make_vector(16);
        let verdict = eec_correct_vector(&mut v, f32::INFINITY, ws, &cfg());
        assert_eq!(verdict, VectorVerdict::ChecksumCorrupt);
    }

    #[test]
    fn nan_data_with_nan_checksum_is_unrecoverable() {
        let (mut v, _s, ws) = make_vector(16);
        v[5] = f32::NAN;
        let verdict = eec_correct_vector(&mut v, f32::NAN, ws, &cfg());
        assert_eq!(verdict, VectorVerdict::Unrecoverable);
    }

    #[test]
    fn roundoff_noise_not_flagged() {
        let (mut v, s, ws) = make_vector(64);
        // Perturb within round-off scale.
        v[10] += 1e-6;
        assert!(eec_correct_vector(&mut v, s, ws, &cfg()).is_clean());
    }

    #[test]
    fn detect_only_flags_without_mutating() {
        let (mut v, s, ws) = make_vector(16);
        v[7] = f32::INFINITY;
        let snapshot = v.clone();
        assert!(eec_detect_vector(&v, s, ws, &cfg()));
        assert_eq!(v, snapshot);
        let (v2, s2, ws2) = make_vector(16);
        assert!(!eec_detect_vector(&v2, s2, ws2, &cfg()));
    }

    #[test]
    fn empty_vector_is_clean() {
        let mut v: Vec<f32> = vec![];
        assert!(eec_correct_vector(&mut v, 0.0, 0.0, &cfg()).is_clean());
    }

    #[test]
    fn single_element_vector_corrects() {
        let mut v = vec![2.5f32];
        let verdict = eec_correct_vector(&mut v, 2.5, 2.5, &cfg());
        assert!(verdict.is_clean());
        v[0] = f32::NAN;
        let verdict = eec_correct_vector(&mut v, 2.5, 2.5, &cfg());
        assert!(verdict.is_corrected());
        assert!((v[0] - 2.5).abs() < 1e-6);
    }
}
