//! Adaptive ABFT detection frequencies (paper §4.5, Algorithm 1).
//!
//! Error arrivals per flop are modelled as independent Poisson processes per
//! error type (INF / NaN / near-INF). For a section `S = {OP_1 … OP_m}`:
//!
//! * `R_free(S)` — probability the whole section executes error-free;
//! * `R_e(S, j)` — probability of exactly one type-`e` error in `OP_j` and
//!   none elsewhere;
//! * `H_e_i = f + (1−f)·(1−φ_e_i)` — a type-`e` error in `OP_i` is survived
//!   either because ABFT ran (probability `f`) or because it was benign
//!   (probability `1−φ`, with `φ` the profiled non-trainable probability
//!   from Table 4). The paper's prose defines `H` this way; its formula
//!   prints `φ` where the complement is meant — we implement the coherent
//!   form and note the deviation here.
//! * `FC_S(f) = R_free + Σ_j Σ_e R_e(S,j)·H_e_j` — fault coverage;
//! * `FCE_S = ∂FC_S/∂t_S = Σ_j Σ_e R_e(S,j)·φ_e_j / T_S` — coverage gained
//!   per unit of ABFT time (again the coherent derivative of the paper's
//!   objective; the printed formula divides `FC_S(0)` by `T_S`).
//!
//! Algorithm 1 then greedily buys protection time for the most efficient
//! sections until the attention-level coverage target
//! `FC_att = Π_S FC_S ≥ FC_target` is met.

/// Per-flop arrival rates of the three extreme error types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRates {
    /// INF errors per flop.
    pub inf: f64,
    /// NaN errors per flop.
    pub nan: f64,
    /// near-INF errors per flop.
    pub near_inf: f64,
}

impl ErrorRates {
    /// Uniform rate across all three types — the Fig 10 sweep uses
    /// `errors_per_1e25_flops` from 13 to 20 for each type.
    pub fn uniform_per_1e25(errors_per_1e25_flops: f64) -> Self {
        let r = errors_per_1e25_flops / 1e25;
        Self {
            inf: r,
            nan: r,
            near_inf: r,
        }
    }

    fn get(&self, e: ErrorType) -> f64 {
        match e {
            ErrorType::Inf => self.inf,
            ErrorType::NaN => self.nan,
            ErrorType::NearInf => self.near_inf,
        }
    }
}

/// The three extreme error types of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorType {
    /// ±INF.
    Inf,
    /// NaN.
    NaN,
    /// Finite but huge.
    NearInf,
}

impl ErrorType {
    /// All three types.
    pub const ALL: [ErrorType; 3] = [ErrorType::Inf, ErrorType::NaN, ErrorType::NearInf];
}

/// One protected operation: its flop volume and profiled vulnerability per
/// error type (Table 4's `φ`).
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Display name, e.g. `"X·W_Q"`.
    pub name: String,
    /// Flops per execution of this op.
    pub flops: f64,
    /// P(non-trainable | INF error here).
    pub phi_inf: f64,
    /// P(non-trainable | NaN error here).
    pub phi_nan: f64,
    /// P(non-trainable | near-INF error here).
    pub phi_near_inf: f64,
}

impl OpProfile {
    fn phi(&self, e: ErrorType) -> f64 {
        match e {
            ErrorType::Inf => self.phi_inf,
            ErrorType::NaN => self.phi_nan,
            ErrorType::NearInf => self.phi_near_inf,
        }
    }
}

/// A protection section: its ops and the ABFT time cost of protecting one
/// execution of the section.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionProfile {
    /// Display name (`"S_AS"` etc.).
    pub name: String,
    /// Operations inside the section.
    pub ops: Vec<OpProfile>,
    /// ABFT overhead time (arbitrary consistent unit, e.g. ms) for one
    /// protected execution — the paper's `T_S`.
    pub abft_time: f64,
}

/// Poisson probability of `k` events given rate `lambda` and exposure
/// `flops`.
pub fn poisson_pmf(lambda: f64, flops: f64, k: u32) -> f64 {
    let mu = lambda * flops;
    if attn_tensor::float::exactly_zero_f64(mu) {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let mut log_p = -mu + k as f64 * mu.ln();
    for i in 1..=k {
        log_p -= (i as f64).ln();
    }
    log_p.exp()
}

/// Probability that every op in the section sees zero errors of any type.
pub fn r_free(section: &SectionProfile, rates: &ErrorRates) -> f64 {
    section
        .ops
        .iter()
        .map(|op| {
            ErrorType::ALL
                .iter()
                .map(|&e| poisson_pmf(rates.get(e), op.flops, 0))
                .product::<f64>()
        })
        .product()
}

/// Probability of exactly one type-`e` error in op `j` and zero errors
/// everywhere else in the section.
pub fn r_single(section: &SectionProfile, rates: &ErrorRates, j: usize, e: ErrorType) -> f64 {
    section
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            ErrorType::ALL
                .iter()
                .map(|&t| {
                    let k = if i == j && t == e { 1 } else { 0 };
                    poisson_pmf(rates.get(t), op.flops, k)
                })
                .product::<f64>()
        })
        .product()
}

/// Fault coverage of one section at detection frequency `f`.
pub fn fault_coverage(section: &SectionProfile, rates: &ErrorRates, f: f64) -> f64 {
    let f = f.clamp(0.0, 1.0);
    let mut fc = r_free(section, rates);
    for (j, op) in section.ops.iter().enumerate() {
        for &e in &ErrorType::ALL {
            let h = f + (1.0 - f) * (1.0 - op.phi(e));
            fc += r_single(section, rates, j, e) * h;
        }
    }
    fc
}

/// Attention-level fault coverage: the product over sections.
pub fn fault_coverage_attention(
    sections: &[SectionProfile],
    rates: &ErrorRates,
    freqs: &[f64],
) -> f64 {
    assert_eq!(sections.len(), freqs.len());
    sections
        .iter()
        .zip(freqs)
        .map(|(s, &f)| fault_coverage(s, rates, f))
        .product()
}

/// Fault-coverage efficiency: coverage gained per unit of ABFT time.
pub fn fce(section: &SectionProfile, rates: &ErrorRates) -> f64 {
    if section.abft_time <= 0.0 {
        return f64::INFINITY;
    }
    let mut gain = 0.0;
    for (j, op) in section.ops.iter().enumerate() {
        for &e in &ErrorType::ALL {
            gain += r_single(section, rates, j, e) * op.phi(e);
        }
    }
    gain / section.abft_time
}

/// Result of the frequency optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyPlan {
    /// Optimized per-section detection frequencies (same order as input).
    pub freqs: Vec<f64>,
    /// Expected ABFT time per execution, `Σ f_S·T_S`.
    pub expected_time: f64,
    /// Achieved attention-level fault coverage.
    pub achieved_fc: f64,
}

/// Uncovered-failure probability of one section at `f = 0`: the chance of a
/// single error somewhere in the section that leads to a non-trainable
/// state. This is the quantity Algorithm 1 spends ABFT time to remove.
pub fn section_deficit(section: &SectionProfile, rates: &ErrorRates) -> f64 {
    let mut d = 0.0;
    for (j, op) in section.ops.iter().enumerate() {
        for &e in &ErrorType::ALL {
            d += r_single(section, rates, j, e) * op.phi(e);
        }
    }
    d
}

/// Paper Algorithm 1: greedy allocation of ABFT time across sections.
///
/// Sections are sorted by FCE descending; protection time is bought from
/// the most efficient section first until the residual uncovered-failure
/// probability drops below `1 − fc_target` (or every section saturates at
/// `f = 1`). The marginal section gets a fractional frequency.
pub fn optimize_frequencies(
    sections: &[SectionProfile],
    rates: &ErrorRates,
    fc_target: f64,
) -> FrequencyPlan {
    let n = sections.len();
    let mut freqs = vec![0.0f64; n];
    let deficits: Vec<f64> = sections.iter().map(|s| section_deficit(s, rates)).collect();
    let target_residual = (1.0 - fc_target).max(0.0);
    let mut residual: f64 = deficits.iter().sum();

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = fce(&sections[a], rates);
        let fb = fce(&sections[b], rates);
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });

    for &i in &order {
        if residual <= target_residual {
            break;
        }
        let d = deficits[i];
        if d <= 0.0 {
            continue;
        }
        let need = residual - target_residual;
        if need >= d {
            // Fully protect this section.
            freqs[i] = 1.0;
            residual -= d;
        } else {
            // Fractional protection suffices.
            freqs[i] = need / d;
            residual -= need;
        }
    }

    let expected_time = freqs
        .iter()
        .zip(sections)
        .map(|(&f, s)| f * s.abft_time)
        .sum();
    let achieved_fc = fault_coverage_attention(sections, rates, &freqs);
    FrequencyPlan {
        freqs,
        expected_time,
        achieved_fc,
    }
}

/// Build the three attention sections from GEMM flop counts and a Table-4
/// style vulnerability profile. `gemm_flops` are the per-execution flops of
/// `[X·W_Q, X·W_K, Q·Kᵀ, X·W_V, AP·V, CL·W_O]`; `abft_times` the measured
/// `T_S` of `[S_AS, S_CL, S_O]`.
pub fn attention_sections(
    gemm_flops: [f64; 6],
    phi: &VulnerabilityProfile,
    abft_times: [f64; 3],
) -> Vec<SectionProfile> {
    let op = |name: &str, flops: f64, p: (f64, f64, f64)| OpProfile {
        name: name.to_string(),
        flops,
        phi_inf: p.0,
        phi_nan: p.1,
        phi_near_inf: p.2,
    };
    vec![
        SectionProfile {
            name: "S_AS".to_string(),
            ops: vec![
                op("X·W_Q", gemm_flops[0], phi.q),
                op("X·W_K", gemm_flops[1], phi.k),
                op("Q·Kᵀ", gemm_flops[2], phi.attn_score),
            ],
            abft_time: abft_times[0],
        },
        SectionProfile {
            name: "S_CL".to_string(),
            ops: vec![
                op("X·W_V", gemm_flops[3], phi.v),
                op("AP·V", gemm_flops[4], phi.cl),
            ],
            abft_time: abft_times[1],
        },
        SectionProfile {
            name: "S_O".to_string(),
            ops: vec![op("CL·W_O", gemm_flops[5], phi.cl)],
            abft_time: abft_times[2],
        },
    ]
}

/// Per-site `(φ_INF, φ_NaN, φ_near-INF)` non-trainable probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VulnerabilityProfile {
    /// Q-site vulnerability.
    pub q: (f64, f64, f64),
    /// K-site vulnerability.
    pub k: (f64, f64, f64),
    /// V-site vulnerability.
    pub v: (f64, f64, f64),
    /// AS-site vulnerability.
    pub attn_score: (f64, f64, f64),
    /// CL-site vulnerability.
    pub cl: (f64, f64, f64),
}

impl VulnerabilityProfile {
    /// The Bert row of the paper's Table 4 (the profile §5.4 optimizes
    /// against).
    pub fn bert_table4() -> Self {
        Self {
            q: (1.0, 1.0, 0.459),
            k: (1.0, 1.0, 0.434),
            v: (1.0, 1.0, 0.063),
            attn_score: (1.0, 1.0, 0.002),
            cl: (1.0, 1.0, 0.006),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sections() -> Vec<SectionProfile> {
        attention_sections(
            [1e9, 1e9, 5e8, 1e9, 5e8, 1e9],
            &VulnerabilityProfile::bert_table4(),
            [1.0, 0.8, 0.5],
        )
    }

    #[test]
    fn poisson_sums_to_one() {
        let total: f64 = (0..20).map(|k| poisson_pmf(1e-10, 1e10, k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((poisson_pmf(1e-10, 1e10, 0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn poisson_zero_rate() {
        assert_eq!(poisson_pmf(0.0, 1e12, 0), 1.0);
        assert_eq!(poisson_pmf(0.0, 1e12, 3), 0.0);
    }

    #[test]
    fn r_free_decreases_with_rate() {
        let s = &toy_sections()[0];
        let lo = r_free(s, &ErrorRates::uniform_per_1e25(13.0));
        let hi = r_free(s, &ErrorRates::uniform_per_1e25(20.0));
        assert!(lo > hi);
        assert!(lo < 1.0 && lo > 0.999_999);
    }

    #[test]
    fn r_single_is_small_and_positive() {
        let s = &toy_sections()[0];
        let rates = ErrorRates::uniform_per_1e25(15.0);
        let p = r_single(s, &rates, 0, ErrorType::Inf);
        assert!(p > 0.0 && p < 1e-10);
    }

    #[test]
    fn coverage_increases_with_frequency() {
        let s = &toy_sections()[0];
        let rates = ErrorRates::uniform_per_1e25(20.0);
        let f0 = fault_coverage(s, &rates, 0.0);
        let f5 = fault_coverage(s, &rates, 0.5);
        let f1 = fault_coverage(s, &rates, 1.0);
        assert!(f0 <= f5 && f5 <= f1);
        assert!(f1 <= 1.0);
    }

    #[test]
    fn full_frequency_coverage_is_nearly_one() {
        let s = &toy_sections()[0];
        let rates = ErrorRates::uniform_per_1e25(20.0);
        let fc = fault_coverage(s, &rates, 1.0);
        // Only ≥2-error events remain uncovered.
        assert!(1.0 - fc < 1e-20);
    }

    #[test]
    fn fce_prefers_cheap_effective_sections() {
        let sections = toy_sections();
        let rates = ErrorRates::uniform_per_1e25(15.0);
        // S_AS has the most flops and vulnerability but also the highest
        // cost; just check FCE is finite and positive for all.
        for s in &sections {
            let e = fce(s, &rates);
            assert!(e.is_finite() && e > 0.0, "{}: {e}", s.name);
        }
    }

    #[test]
    fn optimizer_zero_target_means_zero_protection() {
        let sections = toy_sections();
        let rates = ErrorRates::uniform_per_1e25(13.0);
        // A target met even unprotected → no time bought.
        let plan = optimize_frequencies(&sections, &rates, 0.5);
        assert!(plan
            .freqs
            .iter()
            .all(|&f| attn_tensor::float::exactly_zero_f64(f)));
        assert_eq!(plan.expected_time, 0.0);
    }

    #[test]
    fn optimizer_impossible_target_saturates() {
        let sections = toy_sections();
        let rates = ErrorRates::uniform_per_1e25(20.0);
        let plan = optimize_frequencies(&sections, &rates, 1.0);
        assert!(plan.freqs.iter().all(|&f| (f - 1.0).abs() < 1e-12));
        let t_total: f64 = sections.iter().map(|s| s.abft_time).sum();
        assert!((plan.expected_time - t_total).abs() < 1e-12);
    }

    #[test]
    fn optimizer_meets_target_with_minimum_time() {
        let sections = toy_sections();
        let rates = ErrorRates::uniform_per_1e25(18.0);
        // Pick a target between the unprotected and fully-protected FC.
        let fc0 = fault_coverage_attention(&sections, &rates, &[0.0, 0.0, 0.0]);
        let fc1 = fault_coverage_attention(&sections, &rates, &[1.0, 1.0, 1.0]);
        let target = fc0 + 0.6 * (fc1 - fc0);
        let plan = optimize_frequencies(&sections, &rates, target);
        assert!(
            plan.achieved_fc >= target - 1e-15,
            "achieved {} < target {target}",
            plan.achieved_fc
        );
        // Not everything should be fully protected for an intermediate
        // target.
        assert!(plan.freqs.iter().any(|&f| f < 1.0));
    }

    #[test]
    fn optimizer_monotone_in_error_rate() {
        let sections = toy_sections();
        let target = 1.0 - 1e-14;
        let mut last_time = -1.0;
        for rate in [13.0, 15.0, 17.0, 20.0] {
            let plan = optimize_frequencies(&sections, &ErrorRates::uniform_per_1e25(rate), target);
            assert!(
                plan.expected_time >= last_time - 1e-12,
                "time must not decrease with error rate"
            );
            last_time = plan.expected_time;
        }
    }

    #[test]
    fn attention_sections_shape() {
        let s = toy_sections();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].ops.len(), 3);
        assert_eq!(s[1].ops.len(), 2);
        assert_eq!(s[2].ops.len(), 1);
    }
}
