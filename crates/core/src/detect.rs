//! Matrix-level detection and correction passes (paper §4.3, Fig 4).
//!
//! A column pass runs EEC-ABFT on every logical column against the stored
//! column checksums; a row pass does the same per row. Deterministic
//! patterns need only the one matching pass (`1R` → columns, `1C` → rows,
//! `0D` → either). Nondeterministic patterns — where the fault's origin
//! decides which side's checksums were poisoned during the fused update —
//! use [`full_correct`]:
//!
//! 1. try the column checksums;
//! 2. recompute row checksums of rows healed in step 1 (their stored row
//!    checksums were derived from the corrupted operand and are now stale);
//! 3. run the row pass, which heals `1C` patterns whose column checksums
//!    were poisoned (the paper's false-negative / case-4 route);
//! 4. recompute the column checksums of any column the row pass healed.
//!
//! On the GPU the per-vector threads of a pass are divergence-free when no
//! fault occurred. The CPU analogue here is a **streaming prepass**: one
//! row-major sweep recomputes all per-column (sum, weighted sum, |·| sum)
//! accumulators at memory bandwidth with no per-column gathers or
//! allocations; only the (rare) flagged columns are extracted for the full
//! EEC-ABFT correction path. Fault-free detection therefore costs a single
//! pass over the matrix — the property behind the paper's "minimal overhead
//! to the attention mechanism" claim.

use crate::checked::CheckedMatrix;
use crate::config::AbftConfig;
use crate::eec::{eec_correct_vector, VectorVerdict};

/// One corrected element within a pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElementFix {
    /// Row of the corrected element (logical coordinates).
    pub row: usize,
    /// Column of the corrected element.
    pub col: usize,
    /// Corrupted value.
    pub old_value: f32,
    /// Restored value.
    pub new_value: f32,
}

/// Result of a one-sided pass over a matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PassOutcome {
    /// Elements corrected.
    pub fixes: Vec<ElementFix>,
    /// Vector indices (column index for a column pass, row index for a row
    /// pass) that reported 1D propagation.
    pub propagated: Vec<usize>,
    /// Vector indices whose checksums were corrupt and rebuilt from data.
    pub rebuilt: Vec<usize>,
    /// Vector indices that were unrecoverable from this side.
    pub unrecoverable: Vec<usize>,
}

impl PassOutcome {
    /// Anything flagged at all?
    pub fn any_detection(&self) -> bool {
        !self.fixes.is_empty()
            || !self.propagated.is_empty()
            || !self.rebuilt.is_empty()
            || !self.unrecoverable.is_empty()
    }
}

/// Does a (δ1, δ2) pair indicate a suspect vector, using the same bounds as
/// [`eec_correct_vector`]?
#[inline]
fn delta_suspicious(d1: f32, d2: f32, sum_abs: f32, n: usize, cfg: &AbftConfig) -> bool {
    if !d1.is_finite() {
        return true;
    }
    let bound = cfg.detection_bound(sum_abs);
    let bound_w = cfg.detection_bound(sum_abs * n as f32);
    d1.abs() > bound || !d2.is_finite() || d2.abs() > bound_w
}

/// Run EEC-ABFT over every logical column using stored column checksums.
///
/// Detection is one streaming row-major prepass recomputing all column
/// accumulators at once (no gathers); only flagged columns take the
/// correction slow path. Corrections are written back into the matrix, and
/// checksum-corrupt columns have their checksum borders rebuilt from data.
///
/// # Panics
/// Panics when the matrix has no column checksums.
pub fn correct_columns(m: &mut CheckedMatrix, cfg: &AbftConfig) -> PassOutcome {
    assert!(
        m.has_col_checksums(),
        "correct_columns: no column checksums"
    );
    let (rows, cols) = (m.rows(), m.cols());

    // Streaming prepass: per-column (Σv, Σw·v, Σ|v|) in one sweep.
    let mut sum = vec![0.0f32; cols]; // attn-lint: allow(hot-path-alloc-reach) — fault-repair path: runs only after a checksum mismatch, never in the clean steady state
    let mut wsum = vec![0.0f32; cols]; // attn-lint: allow(hot-path-alloc-reach) — fault-repair path (see above)
    let mut abs = vec![0.0f32; cols]; // attn-lint: allow(hot-path-alloc-reach) — fault-repair path (see above)
    for r in 0..rows {
        let w = crate::checksum::weight(r);
        let row = m.logical_row(r);
        for c in 0..cols {
            let v = row[c];
            sum[c] += v;
            wsum[c] += w * v;
            abs[c] += v.abs();
        }
    }

    let mut out = PassOutcome::default();
    for c in 0..cols {
        let (cs, wcs) = m.col_checksum(c);
        if !delta_suspicious(cs - sum[c], wcs - wsum[c], abs[c], rows, cfg) {
            continue;
        }
        // Slow path: gather the column and run the full EEC-ABFT dispatch.
        let mut v = m.logical_col(c);
        match eec_correct_vector(&mut v, cs, wcs, cfg) {
            VectorVerdict::Clean => {}
            VectorVerdict::Corrected {
                index,
                old_value,
                new_value,
                ..
            } => {
                m.set(index, c, v[index]);
                out.fixes.push(ElementFix {
                    row: index,
                    col: c,
                    old_value,
                    new_value,
                });
            }
            VectorVerdict::Propagated { .. } => out.propagated.push(c),
            VectorVerdict::ChecksumCorrupt => {
                m.recompute_col_checksum(c);
                out.rebuilt.push(c);
            }
            VectorVerdict::Unrecoverable => out.unrecoverable.push(c),
        }
    }
    out
}

/// Run EEC-ABFT over every logical row using stored row checksums.
///
/// Rows are contiguous in memory, so detection runs in place (one
/// `vector_sums` per row, no copies) and only flagged rows enter the
/// correction path.
///
/// # Panics
/// Panics when the matrix has no row checksums.
pub fn correct_rows(m: &mut CheckedMatrix, cfg: &AbftConfig) -> PassOutcome {
    assert!(m.has_row_checksums(), "correct_rows: no row checksums");
    let (rows, cols) = (m.rows(), m.cols());
    let mut out = PassOutcome::default();
    for r in 0..rows {
        let (cs, wcs) = m.row_checksum(r);
        let (s, ws, abs) = crate::checksum::vector_sums(m.logical_row(r));
        if !delta_suspicious(cs - s, wcs - ws, abs, cols, cfg) {
            continue;
        }
        let mut v = m.logical_row(r).to_vec(); // attn-lint: allow(hot-path-alloc-reach) — fault-repair path: row copy only when correcting a detected mismatch
        match eec_correct_vector(&mut v, cs, wcs, cfg) {
            VectorVerdict::Clean => {}
            VectorVerdict::Corrected {
                index,
                old_value,
                new_value,
                ..
            } => {
                m.set(r, index, v[index]);
                out.fixes.push(ElementFix {
                    row: r,
                    col: index,
                    old_value,
                    new_value,
                });
            }
            VectorVerdict::Propagated { .. } => out.propagated.push(r),
            VectorVerdict::ChecksumCorrupt => {
                m.recompute_row_checksum(r);
                out.rebuilt.push(r);
            }
            VectorVerdict::Unrecoverable => out.unrecoverable.push(r),
        }
    }
    out
}

/// Summary of a full (two-sided) correction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorrectionSummary {
    /// Column-pass outcome.
    pub col_pass: PassOutcome,
    /// Row-pass outcome (absent for matrices without row checksums).
    pub row_pass: Option<PassOutcome>,
    /// Checksum borders recomputed due to staleness after corrections.
    pub stale_rebuilds: usize,
    /// Vector indices that no pass could recover.
    pub unrecovered: usize,
}

impl CorrectionSummary {
    /// Total corrected elements across both passes.
    pub fn total_fixes(&self) -> usize {
        self.col_pass.fixes.len() + self.row_pass.as_ref().map(|p| p.fixes.len()).unwrap_or(0)
    }

    /// Total detections of any kind.
    pub fn total_detections(&self) -> usize {
        let one = |p: &PassOutcome| {
            p.fixes.len() + p.propagated.len() + p.rebuilt.len() + p.unrecoverable.len()
        };
        one(&self.col_pass) + self.row_pass.as_ref().map(one).unwrap_or(0)
    }

    /// 1D propagations that were recognised.
    pub fn total_propagations(&self) -> usize {
        self.col_pass.propagated.len()
            + self
                .row_pass
                .as_ref()
                .map(|p| p.propagated.len())
                .unwrap_or(0)
    }
}

/// Full correction protocol for a protected matrix (see module docs).
///
/// Handles deterministic one-sided matrices (column checksums only) and
/// two-sided matrices with nondeterministic patterns.
pub fn full_correct(m: &mut CheckedMatrix, cfg: &AbftConfig) -> CorrectionSummary {
    // Phase 1: column checksums (deterministic 1R / 0D route).
    let mut summary = CorrectionSummary {
        col_pass: correct_columns(m, cfg),
        ..CorrectionSummary::default()
    };

    if !m.has_row_checksums() {
        summary.unrecovered =
            summary.col_pass.propagated.len() + summary.col_pass.unrecoverable.len();
        return summary;
    }

    // Phase 2: the rows healed by phase 1 now disagree with their *stored*
    // row checksums (which were produced from the corrupted operand).
    // Rebuild them before the row pass or it would "correct" good data.
    let mut touched_rows: Vec<usize> = summary.col_pass.fixes.iter().map(|f| f.row).collect();
    touched_rows.sort_unstable();
    touched_rows.dedup();
    for &r in &touched_rows {
        m.recompute_row_checksum(r);
        summary.stale_rebuilds += 1;
    }

    // Phase 3: row checksums heal 1C patterns whose column checksums were
    // poisoned (nondeterministic route / column-pass false negatives).
    let row_pass = correct_rows(m, cfg);

    // Phase 4: columns healed by the row pass have stale column checksums.
    let mut touched_cols: Vec<usize> = row_pass.fixes.iter().map(|f| f.col).collect();
    // Columns that reported propagation in phase 1 were healed element-wise
    // by phase 3; their stored column checksums were poisoned by the
    // original operand corruption, so rebuild those too.
    touched_cols.extend(summary.col_pass.propagated.iter().copied());
    touched_cols.sort_unstable();
    touched_cols.dedup();
    for &c in &touched_cols {
        m.recompute_col_checksum(c);
        summary.stale_rebuilds += 1;
    }

    summary.unrecovered = row_pass.propagated.len() + row_pass.unrecoverable.len();
    summary.row_pass = Some(row_pass);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use attn_tensor::rng::TensorRng;
    use attn_tensor::Matrix;

    fn cfg() -> AbftConfig {
        AbftConfig::default()
    }

    fn checked_both(rng: &mut TensorRng, r: usize, c: usize) -> (Matrix, CheckedMatrix) {
        let a = rng.normal_matrix(r, c, 1.0);
        let ca = CheckedMatrix::encode_both(&a, Strategy::Fused);
        (a, ca)
    }

    #[test]
    fn zero_d_inf_corrected_by_column_pass() {
        let mut rng = TensorRng::seed_from(1);
        let (a, mut ca) = checked_both(&mut rng, 8, 6);
        ca.set(3, 2, f32::INFINITY);
        let outcome = correct_columns(&mut ca, &cfg());
        assert_eq!(outcome.fixes.len(), 1);
        assert_eq!((outcome.fixes[0].row, outcome.fixes[0].col), (3, 2));
        assert!(ca.logical().approx_eq(&a, 1e-3, 1e-3));
    }

    #[test]
    fn one_r_pattern_corrected_in_parallel_columns() {
        // Deterministic 1R: every column holds exactly one error at row 4.
        let mut rng = TensorRng::seed_from(2);
        let (a, mut ca) = checked_both(&mut rng, 10, 7);
        for c in 0..7 {
            ca.set(4, c, f32::NAN);
        }
        let outcome = correct_columns(&mut ca, &cfg());
        assert_eq!(outcome.fixes.len(), 7);
        assert!(outcome.fixes.iter().all(|f| f.row == 4));
        assert!(ca.logical().approx_eq(&a, 1e-3, 1e-3));
    }

    #[test]
    fn one_c_pattern_reported_as_propagation_by_columns() {
        let mut rng = TensorRng::seed_from(3);
        let (_, mut ca) = checked_both(&mut rng, 10, 7);
        for r in 0..10 {
            ca.set(r, 5, f32::INFINITY);
        }
        let outcome = correct_columns(&mut ca, &cfg());
        assert_eq!(outcome.propagated, vec![5]);
        assert!(outcome.fixes.is_empty());
    }

    #[test]
    fn full_correct_heals_one_c_via_rows() {
        // Nondeterministic route: 1C data corruption *and* poisoned column
        // checksums (as if the fault originated in K and propagated through
        // the fused update). Rows must heal it; column checksums must be
        // rebuilt.
        let mut rng = TensorRng::seed_from(4);
        let (a, mut ca) = checked_both(&mut rng, 9, 6);
        let rows = ca.rows();
        for r in 0..rows {
            ca.set(r, 4, f32::NEG_INFINITY);
        }
        // Poison the stored column checksum of column 4 the way a corrupted
        // operand would have.
        ca.buf_mut()[(rows, 4)] = f32::NEG_INFINITY;
        ca.buf_mut()[(rows + 1, 4)] = f32::NEG_INFINITY;

        let summary = full_correct(&mut ca, &cfg());
        assert!(ca.logical().approx_eq(&a, 1e-2, 1e-2));
        assert_eq!(summary.unrecovered, 0);
        let rp = summary.row_pass.as_ref().unwrap();
        assert_eq!(rp.fixes.len(), rows);
        // The healed matrix must be fully self-consistent again.
        assert!(
            ca.max_checksum_discrepancy() < 1e-2,
            "discrepancy {}",
            ca.max_checksum_discrepancy()
        );
    }

    #[test]
    fn full_correct_heals_one_r_and_rebuilds_stale_row_checksums() {
        // Mirror image: 1R data corruption with poisoned row checksums (as
        // if the fault originated in Q).
        let mut rng = TensorRng::seed_from(5);
        let (a, mut ca) = checked_both(&mut rng, 8, 6);
        let cols = ca.cols();
        for c in 0..cols {
            ca.set(2, c, f32::NAN);
        }
        ca.buf_mut()[(2, cols)] = f32::NAN;
        ca.buf_mut()[(2, cols + 1)] = f32::NAN;

        let summary = full_correct(&mut ca, &cfg());
        assert!(ca.logical().approx_eq(&a, 1e-2, 1e-2));
        assert_eq!(summary.col_pass.fixes.len(), cols);
        assert_eq!(summary.unrecovered, 0);
        assert!(ca.max_checksum_discrepancy() < 1e-2);
        // Row checksums of row 2 were stale and rebuilt before the row pass:
        // the row pass must not have "corrected" anything.
        assert!(summary.row_pass.as_ref().unwrap().fixes.is_empty());
    }

    #[test]
    fn full_correct_zero_d_near_inf() {
        let mut rng = TensorRng::seed_from(6);
        let (a, mut ca) = checked_both(&mut rng, 12, 12);
        ca.set(7, 7, 4.2e13);
        let summary = full_correct(&mut ca, &cfg());
        assert_eq!(summary.total_fixes(), 1);
        assert!(ca.logical().approx_eq(&a, 1e-2, 1e-2));
        assert!(ca.max_checksum_discrepancy() < 1e-2);
    }

    #[test]
    fn clean_matrix_full_correct_is_noop() {
        let mut rng = TensorRng::seed_from(7);
        let (a, mut ca) = checked_both(&mut rng, 8, 8);
        let summary = full_correct(&mut ca, &cfg());
        assert_eq!(summary.total_detections(), 0);
        assert_eq!(summary.stale_rebuilds, 0);
        assert!(ca.logical().approx_eq(&a, 0.0, 0.0));
    }

    #[test]
    fn column_only_matrix_reports_unrecovered_on_1c() {
        // Without row checksums a full-column corruption cannot be healed —
        // the section design prevents this from arising (Q/K errors are
        // caught at AS where both sides exist).
        let mut rng = TensorRng::seed_from(8);
        let a = rng.normal_matrix(6, 6, 1.0);
        let mut ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
        for r in 0..6 {
            ca.set(r, 1, f32::INFINITY);
        }
        let summary = full_correct(&mut ca, &cfg());
        assert!(summary.row_pass.is_none());
        assert_eq!(summary.unrecovered, 1);
    }

    #[test]
    fn checksum_region_fault_rebuilt_without_touching_data() {
        let mut rng = TensorRng::seed_from(9);
        let (a, mut ca) = checked_both(&mut rng, 8, 8);
        let rows = ca.rows();
        ca.buf_mut()[(rows, 3)] = f32::INFINITY; // unweighted col checksum hit
        let summary = full_correct(&mut ca, &cfg());
        assert!(summary.col_pass.rebuilt.contains(&3));
        assert!(ca.logical().approx_eq(&a, 0.0, 0.0));
        assert!(ca.max_checksum_discrepancy() < 1e-2);
    }

    #[test]
    fn wide_matrix_prepass_flags_only_faulty_columns() {
        let mut rng = TensorRng::seed_from(10);
        let a = rng.normal_matrix(16, 80, 1.0);
        let mut ca = CheckedMatrix::encode_cols(&a, Strategy::Fused);
        ca.set(5, 40, f32::INFINITY);
        ca.set(9, 70, f32::NAN);
        let outcome = correct_columns(&mut ca, &cfg());
        assert_eq!(outcome.fixes.len(), 2);
        assert!(ca.logical().approx_eq(&a, 1e-2, 1e-2));
    }

    #[test]
    fn mixed_faults_across_distinct_columns_all_corrected() {
        let mut rng = TensorRng::seed_from(11);
        let (a, mut ca) = checked_both(&mut rng, 10, 10);
        ca.set(1, 0, f32::INFINITY);
        ca.set(4, 3, f32::NAN);
        ca.set(8, 7, 9.9e11);
        let summary = full_correct(&mut ca, &cfg());
        assert_eq!(summary.total_fixes(), 3);
        assert!(ca.logical().approx_eq(&a, 1e-2, 1e-2));
        assert_eq!(summary.unrecovered, 0);
    }
}
