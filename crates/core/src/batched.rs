//! Batch-parallel protected attention.
//!
//! The paper parallelises ABFT work "along the streaming multiprocessors by
//! the number of heads × number of batches" (§4.6). The CPU analogue
//! applies the parallelism at the batch-item level: each sequence's
//! protected forward is independent, so a rayon fan-out keeps every core
//! busy with coarse tasks (the granularity lesson recorded in
//! `attn_tensor::gemm::PAR_FLOP_THRESHOLD` applies — fine-grained splits
//! lose to scheduling jitter, whole-sequence tasks win).

use crate::attention::{AttnForward, ForwardOptions, ProtectedAttention, SectionToggles};
use crate::report::AbftReport;
use attn_tensor::Matrix;
use rayon::prelude::*;

/// Result of a batched protected forward.
#[derive(Debug, Clone)]
pub struct BatchForward {
    /// Per-item outputs, in input order.
    pub items: Vec<AttnForward>,
    /// Merged ABFT activity across the batch.
    pub report: AbftReport,
}

impl ProtectedAttention {
    /// Run the protected forward over a batch of independent sequences in
    /// parallel. All items share the same mask and section toggles; fault
    /// hooks are not supported here (campaigns inject per-item via the
    /// sequential API).
    pub fn forward_batch(
        &self,
        xs: &[Matrix],
        mask: Option<&Matrix>,
        toggles: SectionToggles,
    ) -> BatchForward {
        let results: Vec<(AttnForward, AbftReport)> = xs
            .par_iter()
            .map(|x| {
                let mut report = AbftReport::default();
                let out = self.forward(
                    x,
                    ForwardOptions {
                        mask,
                        toggles,
                        hook: None,
                    },
                    &mut report,
                );
                (out, report)
            })
            .collect();
        let mut report = AbftReport::default();
        let mut items = Vec::with_capacity(results.len());
        for (out, r) in results {
            report.merge(&r);
            items.push(out);
        }
        BatchForward { items, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionWeights;
    use crate::config::ProtectionConfig;
    use attn_tensor::ops::causal_mask;
    use attn_tensor::rng::TensorRng;

    fn setup(batch: usize) -> (Vec<Matrix>, ProtectedAttention) {
        let mut rng = TensorRng::seed_from(99);
        let weights = AttentionWeights::random(32, 4, &mut rng);
        let xs = (0..batch).map(|_| rng.normal_matrix(12, 32, 0.5)).collect();
        (
            xs,
            ProtectedAttention::new(weights, ProtectionConfig::full()),
        )
    }

    #[test]
    fn batched_matches_sequential() {
        let (xs, attn) = setup(6);
        let batch = attn.forward_batch(&xs, None, SectionToggles::all());
        assert_eq!(batch.items.len(), 6);
        for (i, x) in xs.iter().enumerate() {
            let mut r = AbftReport::default();
            let solo = attn.forward_simple(x, &mut r);
            assert!(
                batch.items[i].output.approx_eq(&solo.output, 1e-5, 1e-5),
                "item {i} diverged"
            );
        }
        assert!(batch.report.is_quiet());
        assert_eq!(batch.report.sections_checked, 6 * 3);
    }

    #[test]
    fn batched_output_is_bitwise_equal_to_sequential() {
        // The fan-out must be pure parallelism: with a fixed seed, every
        // batch item's forward — output and every cached activation — is
        // bit-for-bit the result of the sequential per-item API.
        let (xs, attn) = setup(8);
        let batch = attn.forward_batch(&xs, None, SectionToggles::all());
        for (i, x) in xs.iter().enumerate() {
            let mut r = AbftReport::default();
            let solo = attn.forward_simple(x, &mut r);
            let b = &batch.items[i];
            assert_eq!(b.output, solo.output, "item {i}: output bits differ");
            assert_eq!(b.cache.q, solo.cache.q, "item {i}: Q cache differs");
            assert_eq!(b.cache.k, solo.cache.k, "item {i}: K cache differs");
            assert_eq!(b.cache.v, solo.cache.v, "item {i}: V cache differs");
            assert_eq!(b.cache.cl, solo.cache.cl, "item {i}: CL cache differs");
            assert_eq!(b.cache.scores, solo.cache.scores, "item {i}: scores differ");
            assert_eq!(b.cache.ap, solo.cache.ap, "item {i}: AP cache differs");
        }
    }

    #[test]
    fn batched_with_mask_matches_sequential() {
        let (xs, attn) = setup(3);
        let mask = causal_mask(12);
        let batch = attn.forward_batch(&xs, Some(&mask), SectionToggles::all());
        let mut r = AbftReport::default();
        let solo = attn.forward(
            &xs[1],
            ForwardOptions {
                mask: Some(&mask),
                toggles: SectionToggles::all(),
                hook: None,
            },
            &mut r,
        );
        assert!(batch.items[1].output.approx_eq(&solo.output, 1e-5, 1e-5));
    }

    #[test]
    fn batched_report_merges_section_counters() {
        let (xs, attn) = setup(4);
        let batch = attn.forward_batch(&xs, None, SectionToggles::none());
        assert_eq!(batch.report.sections_skipped, 4 * 3);
        assert_eq!(batch.report.sections_checked, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, attn) = setup(1);
        let batch = attn.forward_batch(&[], None, SectionToggles::all());
        assert!(batch.items.is_empty());
        assert!(batch.report.is_quiet());
    }
}
