//! Batch-parallel protected attention.
//!
//! The paper parallelises ABFT work "along the streaming multiprocessors by
//! the number of heads × number of batches" (§4.6). The CPU analogue
//! applies the parallelism at the batch-item level: each sequence's
//! protected forward is independent, so a rayon fan-out keeps every core
//! busy with coarse tasks (the granularity lesson recorded in
//! `attn_tensor::gemm::PAR_FLOP_THRESHOLD` applies — fine-grained splits
//! lose to scheduling jitter, whole-sequence tasks win).
//!
//! Every batch item runs under its own [`ForwardCtx`], so campaigns can
//! inject into a single item ([`BatchItemOptions::hook`]) or give items
//! different section toggles without perturbing their neighbours.

use crate::attention::{AttnForward, FaultSite, ProtectedAttention, SectionToggles};
use crate::checked::CheckedMatrix;
use crate::report::AbftReport;
use crate::section::ForwardCtx;
use attn_tensor::Matrix;
use rayon::prelude::*;
use std::sync::Mutex;

/// Result of a batched protected forward.
#[derive(Debug, Clone)]
pub struct BatchForward {
    /// Per-item outputs, in input order.
    pub items: Vec<AttnForward>,
    /// Merged ABFT activity across the batch.
    pub report: AbftReport,
}

/// Owned, thread-movable fault hook for one batch item (the batched
/// counterpart of the sequential path's borrowed
/// [`crate::attention::FaultHook`]).
pub type BatchFaultHook<'a> = Box<dyn FnMut(FaultSite, &mut CheckedMatrix) + Send + 'a>;

/// Per-item execution options for [`ProtectedAttention::forward_batch_with`].
///
/// The hook is boxed so each item's hook can be moved onto whichever
/// worker thread executes that item.
pub struct BatchItemOptions<'a> {
    /// Sections this item protects.
    pub toggles: SectionToggles,
    /// Optional fault-injection hook, fired only for this item.
    pub hook: Option<BatchFaultHook<'a>>,
}

impl BatchItemOptions<'_> {
    /// Hook-free options with the given toggles.
    pub fn with_toggles(toggles: SectionToggles) -> Self {
        Self {
            toggles,
            hook: None,
        }
    }
}

impl ProtectedAttention {
    /// Run the protected forward over a batch of independent sequences in
    /// parallel, all items sharing the same mask and section toggles and no
    /// fault hooks — the common training fast path. Per-item hooks/toggles
    /// go through [`Self::forward_batch_with`].
    pub fn forward_batch(
        &self,
        xs: &[Matrix],
        mask: Option<&Matrix>,
        toggles: SectionToggles,
    ) -> BatchForward {
        let items = xs
            .iter()
            .map(|_| BatchItemOptions::with_toggles(toggles))
            .collect();
        self.forward_batch_with(xs, mask, items)
    }

    /// Run the protected forward over a batch with *per-item* execution
    /// options: each item gets its own [`ForwardCtx`] (toggles, hook,
    /// report), so injecting into one item cannot disturb the others, and
    /// heterogeneous protection schedules across a batch are expressible.
    ///
    /// # Panics
    /// Panics when `items.len() != xs.len()`.
    pub fn forward_batch_with(
        &self,
        xs: &[Matrix],
        mask: Option<&Matrix>,
        items: Vec<BatchItemOptions<'_>>,
    ) -> BatchForward {
        assert_eq!(items.len(), xs.len(), "one BatchItemOptions per item");
        // Each worker takes exclusive ownership of its item's options via
        // the per-slot mutex (the shim has no par_iter_mut; independent
        // locks are contention-free since every index is visited once).
        let slots: Vec<Mutex<BatchItemOptions<'_>>> = items.into_iter().map(Mutex::new).collect();
        let results: Vec<(AttnForward, AbftReport)> = (0..xs.len())
            .into_par_iter()
            .map(|i| {
                let mut item = slots[i].lock().expect("batch item lock poisoned");
                let mut report = AbftReport::default();
                let mut ctx = ForwardCtx {
                    mask,
                    toggles: item.toggles,
                    hook: item
                        .hook
                        .as_mut()
                        .map(|h| h.as_mut() as &mut dyn FnMut(FaultSite, &mut CheckedMatrix)),
                    report: &mut report,
                };
                let out = self.forward_ctx(&xs[i], &mut ctx);
                (out, report)
            })
            .collect();
        let mut report = AbftReport::default();
        let mut items = Vec::with_capacity(results.len());
        for (out, r) in results {
            report.merge(&r);
            items.push(out);
        }
        BatchForward { items, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::{AttentionWeights, AttnOp, ForwardOptions};
    use crate::config::ProtectionConfig;
    use attn_tensor::ops::causal_mask;
    use attn_tensor::rng::TensorRng;

    fn setup(batch: usize) -> (Vec<Matrix>, ProtectedAttention) {
        let mut rng = TensorRng::seed_from(99);
        let weights = AttentionWeights::random(32, 4, &mut rng);
        let xs = (0..batch).map(|_| rng.normal_matrix(12, 32, 0.5)).collect();
        (
            xs,
            ProtectedAttention::new(weights, ProtectionConfig::full()),
        )
    }

    #[test]
    fn batched_matches_sequential() {
        let (xs, attn) = setup(6);
        let batch = attn.forward_batch(&xs, None, SectionToggles::all());
        assert_eq!(batch.items.len(), 6);
        for (i, x) in xs.iter().enumerate() {
            let mut r = AbftReport::default();
            let solo = attn.forward_simple(x, &mut r);
            assert!(
                batch.items[i].output.approx_eq(&solo.output, 1e-5, 1e-5),
                "item {i} diverged"
            );
        }
        assert!(batch.report.is_quiet());
        assert_eq!(batch.report.sections_checked, 6 * 3);
    }

    #[test]
    fn batched_output_is_bitwise_equal_to_sequential() {
        // The fan-out must be pure parallelism: with a fixed seed, every
        // batch item's forward — output and every cached activation — is
        // bit-for-bit the result of the sequential per-item API.
        let (xs, attn) = setup(8);
        let batch = attn.forward_batch(&xs, None, SectionToggles::all());
        for (i, x) in xs.iter().enumerate() {
            let mut r = AbftReport::default();
            let solo = attn.forward_simple(x, &mut r);
            let b = &batch.items[i];
            assert_eq!(b.output, solo.output, "item {i}: output bits differ");
            assert_eq!(b.cache.q, solo.cache.q, "item {i}: Q cache differs");
            assert_eq!(b.cache.k, solo.cache.k, "item {i}: K cache differs");
            assert_eq!(b.cache.v, solo.cache.v, "item {i}: V cache differs");
            assert_eq!(b.cache.cl, solo.cache.cl, "item {i}: CL cache differs");
            assert_eq!(b.cache.scores, solo.cache.scores, "item {i}: scores differ");
            assert_eq!(b.cache.ap, solo.cache.ap, "item {i}: AP cache differs");
        }
    }

    #[test]
    fn batched_with_mask_matches_sequential() {
        let (xs, attn) = setup(3);
        let mask = causal_mask(12);
        let batch = attn.forward_batch(&xs, Some(&mask), SectionToggles::all());
        let mut r = AbftReport::default();
        let solo = attn.forward(
            &xs[1],
            ForwardOptions {
                mask: Some(&mask),
                toggles: SectionToggles::all(),
                hook: None,
            },
            &mut r,
        );
        assert!(batch.items[1].output.approx_eq(&solo.output, 1e-5, 1e-5));
    }

    #[test]
    fn batched_report_merges_section_counters() {
        let (xs, attn) = setup(4);
        let batch = attn.forward_batch(&xs, None, SectionToggles::none());
        assert_eq!(batch.report.sections_skipped, 4 * 3);
        assert_eq!(batch.report.sections_checked, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, attn) = setup(1);
        let batch = attn.forward_batch(&[], None, SectionToggles::all());
        assert!(batch.items.is_empty());
        assert!(batch.report.is_quiet());
    }

    #[test]
    fn per_item_hook_strikes_only_its_item() {
        // Regression for the old API that silently dropped hooks: inject a
        // fault into exactly one batch item and require (a) the victim is
        // corrected, (b) every other item is bit-for-bit untouched.
        let (xs, attn) = setup(5);
        let victim = 2usize;
        let items: Vec<BatchItemOptions<'_>> = (0..xs.len())
            .map(|i| {
                let mut opts = BatchItemOptions::with_toggles(SectionToggles::all());
                if i == victim {
                    let mut fired = false;
                    opts.hook = Some(Box::new(move |site: FaultSite, m: &mut CheckedMatrix| {
                        if site.op == AttnOp::AS && site.head == Some(1) && !fired {
                            fired = true;
                            m.set(3, 4, f32::INFINITY);
                        }
                    }));
                }
                opts
            })
            .collect();
        let batch = attn.forward_batch_with(&xs, None, items);

        assert!(batch.report.correction_count() > 0, "{}", batch.report);
        assert_eq!(batch.report.unrecovered, 0);
        for (i, x) in xs.iter().enumerate() {
            let mut r = AbftReport::default();
            let solo = attn.forward_simple(x, &mut r);
            if i == victim {
                // Corrected in place: finite and equal to the clean run up
                // to exact-replay refinement (which restores exact bits).
                assert!(batch.items[i].output.all_finite());
                assert!(
                    batch.items[i].output.approx_eq(&solo.output, 1e-4, 1e-4),
                    "victim item must be healed"
                );
            } else {
                assert_eq!(
                    batch.items[i].output, solo.output,
                    "item {i}: bystander perturbed by another item's fault"
                );
                assert_eq!(batch.items[i].cache.q, solo.cache.q, "item {i}: Q differs");
            }
        }
    }

    #[test]
    fn per_item_toggles_are_independent() {
        let (xs, attn) = setup(3);
        let items = vec![
            BatchItemOptions::with_toggles(SectionToggles::all()),
            BatchItemOptions::with_toggles(SectionToggles::none()),
            BatchItemOptions::with_toggles(SectionToggles {
                s_as: true,
                ..SectionToggles::none()
            }),
        ];
        let batch = attn.forward_batch_with(&xs, None, items);
        // 3 + 0 + 1 sections checked; 0 + 3 + 2 skipped.
        assert_eq!(batch.report.sections_checked, 4);
        assert_eq!(batch.report.sections_skipped, 5);
    }
}
